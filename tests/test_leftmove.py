"""Tests for the deterministic toy domain (repro.games.leftmove)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.games.leftmove import LeftMoveState


class TestRules:
    def test_initial_moves(self):
        state = LeftMoveState(depth=3, branching=4)
        assert state.legal_moves() == [0, 1, 2, 3]
        assert not state.is_terminal()

    def test_game_ends_after_depth_moves(self):
        state = LeftMoveState(depth=2, branching=2)
        state.apply(0)
        state.apply(1)
        assert state.is_terminal()
        assert state.legal_moves() == []

    def test_score_counts_target_moves(self):
        state = LeftMoveState(depth=4, branching=3, target=1)
        for move in (1, 0, 1, 2):
            state.apply(move)
        assert state.score() == 2.0

    def test_weighted_score(self):
        state = LeftMoveState(depth=3, branching=2, target=0, weighted=True)
        for move in (0, 1, 0):
            state.apply(move)
        assert state.score() == 1.0 + 3.0

    def test_apply_after_end_raises(self):
        state = LeftMoveState(depth=1)
        state.apply(0)
        with pytest.raises(ValueError):
            state.apply(0)

    def test_illegal_move_raises(self):
        state = LeftMoveState(depth=3, branching=2)
        with pytest.raises(ValueError):
            state.apply(5)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            LeftMoveState(depth=-1)
        with pytest.raises(ValueError):
            LeftMoveState(branching=0)
        with pytest.raises(ValueError):
            LeftMoveState(branching=2, target=5)


class TestHelpers:
    def test_optimal_scores(self):
        assert LeftMoveState(depth=6).optimal_score() == 6.0
        assert LeftMoveState(depth=3, weighted=True).optimal_score() == 6.0

    def test_remaining_optimal_score(self):
        state = LeftMoveState(depth=5)
        state.apply(1)
        assert state.remaining_optimal_score() == 4.0
        weighted = LeftMoveState(depth=3, weighted=True)
        weighted.apply(0)
        assert weighted.remaining_optimal_score() == 2.0 + 3.0

    def test_copy_is_independent(self):
        state = LeftMoveState(depth=4)
        clone = state.copy()
        clone.apply(0)
        assert state.moves_played() == 0
        assert clone.moves_played() == 1

    def test_moves_played(self):
        state = LeftMoveState(depth=4)
        state.apply(0)
        state.apply(1)
        assert state.moves_played() == 2


@given(depth=st.integers(0, 12), branching=st.integers(1, 4), data=st.data())
def test_property_score_never_exceeds_depth(depth, branching, data):
    state = LeftMoveState(depth=depth, branching=branching)
    while not state.is_terminal():
        moves = state.legal_moves()
        state.apply(data.draw(st.sampled_from(moves)))
    assert 0.0 <= state.score() <= depth
    assert state.moves_played() == depth
