"""Tests for the event queue and the network model."""

from __future__ import annotations

import pytest

from repro.cluster.events import Event, EventQueue
from repro.cluster.network import NetworkModel


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, fired.append, "b")
        queue.push(1.0, fired.append, "a")
        queue.push(3.0, fired.append, "c")
        while queue:
            queue.pop().fire()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        queue = EventQueue()
        fired = []
        for name in "abcd":
            queue.push(1.0, fired.append, name)
        while queue:
            queue.pop().fire()
        assert fired == list("abcd")

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        fired = []
        event = queue.push(1.0, fired.append, "x")
        queue.push(2.0, fired.append, "y")
        event.cancel()
        while queue:
            popped = queue.pop()
            if popped is None:
                break
            popped.fire()
        assert fired == ["y"]

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(5.0, lambda: None)
        first.cancel()
        assert queue.peek_time() == 5.0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, lambda: None)

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue
        queue.push(0.0, lambda: None)
        assert len(queue) == 1 and queue

    def test_len_and_bool_exclude_cancelled(self):
        queue = EventQueue()
        live = queue.push(1.0, lambda: None)
        for _ in range(5):
            queue.push(2.0, lambda: None).cancel()
        assert len(queue) == 1
        assert queue
        live.cancel()
        assert len(queue) == 0
        assert not queue
        assert queue.pop() is None

    def test_double_cancel_counted_once(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert len(queue) == 1

    def test_cancel_after_pop_does_not_corrupt_len(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert queue.pop() is event
        event.cancel()  # no longer in the heap: must not count as garbage
        assert len(queue) == 1

    def test_compaction_reclaims_cancelled_entries(self):
        queue = EventQueue()
        keep = [queue.push(float(i), lambda: None) for i in range(10)]
        doomed = [queue.push(100.0 + i, lambda: None) for i in range(500)]
        for event in doomed:
            event.cancel()
        assert queue.compactions >= 1
        assert len(queue) == 10
        # Garbage below the compaction floor (64 entries) may linger, but the
        # bulk of the 500 cancelled events must have been reclaimed.
        assert len(queue._heap) < 128
        # Compaction must not perturb pop order.
        times = []
        while queue:
            times.append(queue.pop().time)
        assert times == [float(i) for i in range(10)]
        assert keep[0].time == 0.0

    def test_diagnostic_counters(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(4)]
        events[0].cancel()
        assert queue.pushed == 4
        assert queue.cancelled_total == 1
        assert queue.peak_size == 4

    def test_fire_ignores_cancelled(self):
        fired = []
        event = Event(time=0.0, seq=0, callback=fired.append, args=("x",))
        event.cancel()
        event.fire()
        assert fired == []


class TestNetworkModel:
    def test_transfer_delay(self):
        net = NetworkModel(latency_s=1e-3, bandwidth_bytes_per_s=1000.0)
        assert net.transfer_delay(500) == pytest.approx(1e-3 + 0.5)

    def test_zero_size_is_latency_only(self):
        net = NetworkModel(latency_s=2e-3)
        assert net.transfer_delay(0) == pytest.approx(2e-3)

    def test_instantaneous(self):
        net = NetworkModel.instantaneous()
        assert net.transfer_delay(10_000_000) == 0.0
        assert net.send_overhead_s == 0.0

    def test_slow_factory(self):
        assert NetworkModel.slow(latency_ms=2.0).latency_s == pytest.approx(2e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(latency_s=-1.0)
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_bytes_per_s=0.0)
        with pytest.raises(ValueError):
            NetworkModel().transfer_delay(-5)
