"""Tests for the sequential search algorithms (sample, NMCS, flat, reflexive, iterated, NRPA)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.counters import WorkCounter
from repro.core.flat import Aggregation, flat_monte_carlo
from repro.core.iterated import iterated_search
from repro.core.nested import candidate_evaluations, evaluate_move, nested_search, nmcs
from repro.core.nrpa import nrpa_search
from repro.core.reflexive import reflexive_search
from repro.core.sample import best_of_samples, sample
from repro.games.leftmove import LeftMoveState
from repro.games.weakschur import WeakSchurState
from repro.prng import SeedSequence


class TestSample:
    def test_sample_deterministic_with_seeds(self):
        state = LeftMoveState(depth=10, branching=3)
        a = sample(state, seeds=SeedSequence(1))
        b = sample(state, seeds=SeedSequence(1))
        assert a.score == b.score and a.sequence == b.sequence

    def test_sample_rejects_both_rng_and_seeds(self):
        import random

        with pytest.raises(ValueError):
            sample(LeftMoveState(), rng=random.Random(0), seeds=SeedSequence(0))

    def test_sample_counts_work(self):
        counter = WorkCounter()
        result = sample(LeftMoveState(depth=6), seeds=SeedSequence(0), counter=counter)
        assert counter.moves == 6
        assert len(result.sequence) == 6

    def test_best_of_samples_improves_with_budget(self):
        state = LeftMoveState(depth=8, branching=3)
        few = best_of_samples(state, 1, SeedSequence(2))
        many = best_of_samples(state, 30, SeedSequence(2))
        assert many.score >= few.score

    def test_best_of_samples_validation(self):
        with pytest.raises(ValueError):
            best_of_samples(LeftMoveState(), 0, SeedSequence(0))


class TestNested:
    def test_level0_is_a_playout(self):
        state = LeftMoveState(depth=5, branching=2)
        result = nested_search(state, 0, SeedSequence(0))
        assert len(result.sequence) == 5

    def test_negative_level_rejected(self):
        with pytest.raises(ValueError):
            nested_search(LeftMoveState(), -1, SeedSequence(0))

    def test_deterministic(self):
        state = WeakSchurState(k=3, limit=12)
        a = nmcs(state, 1, seed=5)
        b = nmcs(state, 1, seed=5)
        assert a.score == b.score and a.sequence == b.sequence

    def test_different_seeds_can_differ(self):
        state = LeftMoveState(depth=12, branching=3)
        results = {nmcs(state, 1, seed=s).sequence for s in range(6)}
        assert len(results) > 1

    def test_result_replays(self):
        for level in (1, 2):
            state = WeakSchurState(k=3, limit=10)
            result = nmcs(state, level, seed=3)
            assert result.verify(state)

    def test_terminal_start(self):
        state = LeftMoveState(depth=0)
        result = nested_search(state, 2, SeedSequence(0))
        assert result.score == 0.0
        assert result.sequence == ()

    def test_max_steps_limits_committed_moves(self):
        state = LeftMoveState(depth=10, branching=2)
        result = nested_search(state, 1, SeedSequence(1), max_steps=1)
        # The returned best sequence still reaches a terminal position.
        assert len(result.sequence) == 10

    def test_first_move_work_smaller_than_full_rollout(self):
        state = WeakSchurState(k=3, limit=12)
        first = nested_search(state, 2, SeedSequence(0), max_steps=1)
        full = nested_search(state, 2, SeedSequence(0))
        assert first.work.moves < full.work.moves

    def test_level1_beats_random_sampling_on_average(self):
        state = LeftMoveState(depth=12, branching=3, weighted=True)
        random_scores = [sample(state, seeds=SeedSequence(s, "r")).score for s in range(20)]
        nested_scores = [nmcs(state, 1, seed=s).score for s in range(20)]
        assert sum(nested_scores) / 20 > sum(random_scores) / 20

    def test_level2_beats_level1_on_average(self):
        state = WeakSchurState(k=3, limit=20)
        level1 = [nmcs(state, 1, seed=s).score for s in range(8)]
        level2 = [nmcs(state, 2, seed=s).score for s in range(8)]
        assert sum(level2) >= sum(level1)

    def test_nested_call_counter(self):
        counter = WorkCounter()
        nested_search(LeftMoveState(depth=3, branching=2), 2, SeedSequence(0), counter=counter)
        assert counter.nested_calls > 1


class TestEvaluateMove:
    def test_sequence_includes_the_move(self):
        state = LeftMoveState(depth=4, branching=2)
        result = evaluate_move(state, 1, 0, SeedSequence(0))
        assert result.sequence[0] == 1
        assert len(result.sequence) == 4

    def test_candidate_evaluations_enumerate_all_moves(self):
        state = LeftMoveState(depth=4, branching=3)
        evals = candidate_evaluations(state, 2, 0, SeedSequence(0))
        assert [move for _, move, _ in evals] == [0, 1, 2]
        # distinct candidates get distinct seeds
        seeds = {child.seed() for _, _, child in evals}
        assert len(seeds) == 3


class TestFlat:
    def test_flat_deterministic_and_replayable(self):
        state = WeakSchurState(k=3, limit=12)
        a = flat_monte_carlo(state, 2, SeedSequence(4))
        b = flat_monte_carlo(state, 2, SeedSequence(4))
        assert a.sequence == b.sequence
        assert a.verify(state)

    def test_flat_mean_aggregation(self):
        state = LeftMoveState(depth=6, branching=2)
        result = flat_monte_carlo(state, 3, SeedSequence(1), aggregation="mean")
        assert result.verify(state)

    def test_flat_validation(self):
        with pytest.raises(ValueError):
            flat_monte_carlo(LeftMoveState(), 0, SeedSequence(0))

    def test_flat_max_steps(self):
        state = LeftMoveState(depth=8, branching=2)
        result = flat_monte_carlo(state, 1, SeedSequence(0), max_steps=2)
        assert len(result.sequence) == 2


class TestReflexive:
    def test_reflexive_replayable(self):
        state = WeakSchurState(k=3, limit=12)
        result = reflexive_search(state, 1, SeedSequence(2))
        assert result.verify(state)

    def test_reflexive_level0_is_playout(self):
        result = reflexive_search(LeftMoveState(depth=4), 0, SeedSequence(0))
        assert len(result.sequence) == 4

    def test_reflexive_validation(self):
        with pytest.raises(ValueError):
            reflexive_search(LeftMoveState(), -1, SeedSequence(0))

    def test_nested_at_least_as_good_as_reflexive_on_average(self):
        # Best-sequence memorisation can only help on these score structures.
        state = LeftMoveState(depth=10, branching=3, weighted=True)
        nested_scores = [nmcs(state, 1, seed=s).score for s in range(10)]
        reflexive_scores = [reflexive_search(state, 1, SeedSequence(s, "reflexive-cmp")).score for s in range(10)]
        assert sum(nested_scores) >= sum(reflexive_scores)


class TestIterated:
    def test_iterated_keeps_best_over_restarts(self):
        state = WeakSchurState(k=3, limit=15)
        single = nested_search(state, 1, SeedSequence(0, "restart", 0))
        multi = iterated_search(state, 1, SeedSequence(0), restarts=5)
        assert multi.score >= single.score
        assert multi.verify(state)

    def test_iterated_respects_work_budget(self):
        state = LeftMoveState(depth=8, branching=3)
        counter = WorkCounter()
        iterated_search(state, 1, SeedSequence(0), restarts=50, work_budget=200, counter=counter)
        # At least one restart always runs; the budget stops the loop soon after.
        assert counter.moves < 5000

    def test_improvement_callback_called(self):
        improvements = []
        iterated_search(
            LeftMoveState(depth=6, branching=2),
            1,
            SeedSequence(3),
            restarts=4,
            on_improvement=lambda i, r: improvements.append((i, r.score)),
        )
        assert improvements
        assert improvements[0][0] == 0

    def test_iterated_validation(self):
        with pytest.raises(ValueError):
            iterated_search(LeftMoveState(), 1, SeedSequence(0), restarts=0)


class TestNRPA:
    def test_nrpa_deterministic_and_replayable(self):
        state = WeakSchurState(k=3, limit=12)
        a = nrpa_search(state, 1, SeedSequence(1), iterations=4)
        b = nrpa_search(state, 1, SeedSequence(1), iterations=4)
        assert a.sequence == b.sequence
        assert a.verify(state)

    def test_nrpa_level2_runs(self):
        state = LeftMoveState(depth=6, branching=2, weighted=True)
        result = nrpa_search(state, 2, SeedSequence(0), iterations=3)
        assert result.verify(state)

    def test_nrpa_improves_with_iterations_on_average(self):
        state = LeftMoveState(depth=10, branching=3, weighted=True)
        few = [nrpa_search(state, 1, SeedSequence(s, "few"), iterations=2).score for s in range(6)]
        many = [nrpa_search(state, 1, SeedSequence(s, "many"), iterations=12).score for s in range(6)]
        assert sum(many) >= sum(few)

    def test_nrpa_validation(self):
        with pytest.raises(ValueError):
            nrpa_search(LeftMoveState(), -1, SeedSequence(0))
        with pytest.raises(ValueError):
            nrpa_search(LeftMoveState(), 1, SeedSequence(0), iterations=0)
