"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.games.morpion.geometry import cross_points
from repro.games.morpion.state import MorpionState
from repro.games.weakschur import WeakSchurState


@pytest.fixture
def tiny_morpion() -> MorpionState:
    """A very small Morpion position (line length 4, compact cross, 6-move cap)."""
    return MorpionState(line_length=4, initial_points=cross_points(3), max_moves=6)


@pytest.fixture
def small_morpion() -> MorpionState:
    """A small but uncapped Morpion position (line length 4, compact cross)."""
    return MorpionState(line_length=4, initial_points=cross_points(3), max_moves=14)


@pytest.fixture
def tiny_weakschur() -> WeakSchurState:
    """A weak-Schur instance small enough for level-2/3 searches in tests."""
    return WeakSchurState(k=3, limit=15)
