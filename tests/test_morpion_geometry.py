"""Tests for Morpion grid geometry (repro.games.morpion.geometry)."""

from __future__ import annotations

import pytest

from repro.games.morpion.geometry import (
    DIRECTIONS,
    bounding_box,
    cross_points,
    line_cells,
    neighbours,
    segment_starts,
)


class TestLines:
    def test_line_cells_horizontal(self):
        assert line_cells((2, 3), (1, 0), 5) == ((2, 3), (3, 3), (4, 3), (5, 3), (6, 3))

    def test_line_cells_diagonal(self):
        assert line_cells((0, 0), (1, -1), 3) == ((0, 0), (1, -1), (2, -2))

    def test_segment_starts(self):
        assert segment_starts((2, 3), (1, 0), 5) == ((2, 3), (3, 3), (4, 3), (5, 3))
        assert len(segment_starts((0, 0), (1, 1), 4)) == 3

    def test_directions_are_canonical(self):
        assert len(DIRECTIONS) == 4
        assert len(set(DIRECTIONS)) == 4
        # no direction is the reverse of another
        assert not any((-dx, -dy) in DIRECTIONS for dx, dy in DIRECTIONS)

    def test_neighbours(self):
        n = neighbours((0, 0))
        assert len(n) == 8
        assert (0, 0) not in n
        assert (1, 1) in n and (-1, -1) in n


class TestCross:
    def test_standard_cross_has_36_points(self):
        assert len(cross_points(5)) == 36

    def test_line4_cross_has_24_points(self):
        assert len(cross_points(4)) == 24

    def test_cross_fits_its_bounding_box(self):
        for length in (4, 5, 6):
            s = length - 2
            min_x, min_y, max_x, max_y = bounding_box(cross_points(length))
            assert (min_x, min_y) == (0, 0)
            assert (max_x, max_y) == (3 * s, 3 * s)

    def test_cross_is_symmetric(self):
        for length in (4, 5):
            pts = cross_points(length)
            s = length - 2
            size = 3 * s
            assert pts == {(size - x, y) for x, y in pts}  # horizontal mirror
            assert pts == {(x, size - y) for x, y in pts}  # vertical mirror
            assert pts == {(y, x) for x, y in pts}  # diagonal mirror

    def test_cross_requires_reasonable_length(self):
        with pytest.raises(ValueError):
            cross_points(2)


class TestBoundingBox:
    def test_bounding_box(self):
        assert bounding_box([(1, 2), (-3, 5), (0, 0)]) == (-3, 0, 1, 5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])
