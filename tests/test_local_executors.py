"""Tests for the real (non-simulated) local executors: multiprocessing and threads."""

from __future__ import annotations

import pytest

from repro.core.nested import nested_search
from repro.games.weakschur import WeakSchurState
from repro.parallel.multiproc import multiprocessing_nmcs
from repro.parallel.threads import threaded_nmcs
from repro.prng import SeedSequence


def small_state() -> WeakSchurState:
    return WeakSchurState(k=3, limit=12)


class TestMultiprocessing:
    def test_matches_sequential_result(self):
        state = small_state()
        sequential = nested_search(state, 1, SeedSequence(5, "nmcs"))
        parallel = multiprocessing_nmcs(state, 1, master_seed=5, n_workers=2)
        assert parallel.result.score == sequential.score
        assert parallel.result.sequence == sequential.sequence
        assert parallel.n_workers == 2
        assert parallel.n_evaluations > 0
        assert parallel.wall_seconds > 0

    def test_max_steps(self):
        state = small_state()
        sequential = nested_search(state, 1, SeedSequence(5, "nmcs"), max_steps=1)
        parallel = multiprocessing_nmcs(state, 1, master_seed=5, n_workers=2, max_steps=1)
        assert parallel.result.sequence == sequential.sequence

    def test_result_replays(self):
        state = small_state()
        parallel = multiprocessing_nmcs(state, 1, master_seed=9, n_workers=2)
        assert parallel.result.verify(state)

    def test_level_validation(self):
        with pytest.raises(ValueError):
            multiprocessing_nmcs(small_state(), 0)


class TestThreads:
    def test_matches_sequential_result(self):
        state = small_state()
        sequential = nested_search(state, 1, SeedSequence(6, "nmcs"))
        threaded = threaded_nmcs(state, 1, master_seed=6, n_workers=3)
        assert threaded.result.score == sequential.score
        assert threaded.result.sequence == sequential.sequence

    def test_terminal_start(self):
        state = WeakSchurState(k=1, limit=1)
        state.apply(0)
        result = threaded_nmcs(state, 1, master_seed=0)
        assert result.result.sequence == ()

    def test_validation(self):
        with pytest.raises(ValueError):
            threaded_nmcs(small_state(), 0)
        with pytest.raises(ValueError):
            threaded_nmcs(small_state(), 1, n_workers=0)
