"""Tests for deterministic seed derivation (repro.prng)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, strategies as st

from repro.prng import SeedSequence, derive_seed, interleave, spawn_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_master_seed_changes_result(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_labels_change_result(self):
        assert derive_seed(0, "job", 1) != derive_seed(0, "job", 2)

    def test_label_order_matters(self):
        assert derive_seed(0, 1, 2) != derive_seed(0, 2, 1)

    def test_string_vs_int_labels_distinct(self):
        assert derive_seed(0, "1") != derive_seed(0, 1)

    def test_bool_vs_int_labels_distinct(self):
        assert derive_seed(0, True) != derive_seed(0, 1)

    def test_negative_labels_supported(self):
        assert derive_seed(0, -5) != derive_seed(0, 5)

    def test_bytes_labels_supported(self):
        assert derive_seed(0, b"abc") == derive_seed(0, b"abc")
        assert derive_seed(0, b"abc") != derive_seed(0, "abc")

    def test_returns_64_bit_value(self):
        for i in range(50):
            value = derive_seed(i, "check")
            assert 0 <= value < 2 ** 64

    def test_unsupported_label_type_raises(self):
        with pytest.raises(TypeError):
            derive_seed(0, 1.5)  # type: ignore[arg-type]

    @given(st.integers(), st.lists(st.one_of(st.integers(), st.text()), max_size=5))
    def test_property_repeatable(self, master, labels):
        assert derive_seed(master, *labels) == derive_seed(master, *labels)

    @given(st.integers(min_value=0, max_value=2 ** 32), st.text(min_size=1), st.text(min_size=1))
    def test_property_concatenation_not_ambiguous(self, master, a, b):
        # Splitting a label differently must not collide (length-prefixed encoding).
        if a + b != b + a:
            assert derive_seed(master, a, b) != derive_seed(master, b, a)


class TestSpawnRng:
    def test_same_seed_same_stream(self):
        r1 = spawn_rng(7, "client", 3)
        r2 = spawn_rng(7, "client", 3)
        assert [r1.random() for _ in range(5)] == [r2.random() for _ in range(5)]

    def test_different_labels_different_stream(self):
        r1 = spawn_rng(7, "client", 3)
        r2 = spawn_rng(7, "client", 4)
        assert [r1.random() for _ in range(5)] != [r2.random() for _ in range(5)]


class TestSeedSequence:
    def test_child_extends_path(self):
        seq = SeedSequence(3, "root")
        child = seq.child("job", 2)
        assert child.path == ("root", "job", 2)
        assert child.master_seed == 3

    def test_child_does_not_mutate_parent(self):
        seq = SeedSequence(3, "root")
        seq.child("x")
        assert seq.path == ("root",)

    def test_equality_and_hash(self):
        assert SeedSequence(1, "a") == SeedSequence(1, "a")
        assert SeedSequence(1, "a") != SeedSequence(1, "b")
        assert hash(SeedSequence(1, "a")) == hash(SeedSequence(1, "a"))
        assert SeedSequence(1, "a") != "not a seed sequence"

    def test_seed_matches_derive_seed(self):
        seq = SeedSequence(9, "x", 4)
        assert seq.seed() == derive_seed(9, "x", 4)

    def test_rng_deterministic(self):
        a = SeedSequence(5, "p").rng().random()
        b = SeedSequence(5, "p").rng().random()
        assert a == b


class TestInterleave:
    def test_deterministic(self):
        assert interleave([1, 2, 3]) == interleave([1, 2, 3])

    def test_order_sensitive(self):
        assert interleave([1, 2]) != interleave([2, 1])
