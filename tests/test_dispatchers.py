"""Unit tests for the Round-Robin and Last-Minute dispatcher processes.

The dispatchers are exercised inside a minimal simulated kernel with scripted
median / client stand-ins, so their assignment policies can be observed
directly without running a whole parallel search.
"""

from __future__ import annotations

import pytest

from repro.cluster.network import NetworkModel
from repro.cluster.node import NodeSpec
from repro.cluster.simulator import Kernel
from repro.parallel.dispatchers import last_minute_dispatcher, round_robin_dispatcher
from repro.parallel.messages import (
    TAG_DISPATCH,
    ClientFree,
    DispatchReply,
    DispatchRequest,
    Shutdown,
)
from repro.timemodel.cost import CostModel


def make_kernel() -> Kernel:
    kernel = Kernel(
        cost_model=CostModel(units_per_ghz_per_second=1.0),
        network=NetworkModel.instantaneous(),
    )
    kernel.add_node(NodeSpec(name="n0", freq_ghz=1.0, cores=8))
    return kernel


class TestRoundRobinDispatcher:
    def test_cycles_through_clients(self):
        kernel = make_kernel()
        assignments = []

        def median(ctx):
            for _ in range(5):
                yield ctx.send("dispatcher", DispatchRequest(median=ctx.name, moves_played=0), tag=TAG_DISPATCH)
                reply = yield ctx.recv(source="dispatcher", tag=TAG_DISPATCH)
                assignments.append(reply.payload.client)
            yield ctx.send("dispatcher", Shutdown(), tag=TAG_DISPATCH)

        kernel.spawn("dispatcher", "n0", round_robin_dispatcher, ["c0", "c1", "c2"])
        kernel.spawn("median-0", "n0", median)
        kernel.run()
        assert assignments == ["c0", "c1", "c2", "c0", "c1"]
        assert kernel.process("dispatcher").return_value == 5

    def test_requires_clients(self):
        kernel = make_kernel()
        kernel.spawn("dispatcher", "n0", round_robin_dispatcher, [])
        with pytest.raises(Exception):
            kernel.run()

    def test_ignores_stray_client_free(self):
        kernel = make_kernel()
        replies = []

        def median(ctx):
            yield ctx.send("dispatcher", ClientFree(client="c0"), tag=TAG_DISPATCH)
            yield ctx.send("dispatcher", DispatchRequest(median=ctx.name, moves_played=0), tag=TAG_DISPATCH)
            reply = yield ctx.recv(source="dispatcher", tag=TAG_DISPATCH)
            replies.append(reply.payload.client)
            yield ctx.send("dispatcher", Shutdown(), tag=TAG_DISPATCH)

        kernel.spawn("dispatcher", "n0", round_robin_dispatcher, ["c0", "c1"])
        kernel.spawn("median-0", "n0", median)
        kernel.run()
        assert replies == ["c0"]


class TestLastMinuteDispatcher:
    def test_serves_free_clients_first_come(self):
        kernel = make_kernel()
        assignments = []

        def median(ctx):
            for _ in range(3):
                yield ctx.send("dispatcher", DispatchRequest(median=ctx.name, moves_played=0), tag=TAG_DISPATCH)
                reply = yield ctx.recv(source="dispatcher", tag=TAG_DISPATCH)
                assignments.append(reply.payload.client)
            yield ctx.send("dispatcher", Shutdown(), tag=TAG_DISPATCH)

        kernel.spawn("dispatcher", "n0", last_minute_dispatcher, ["c0", "c1", "c2"])
        kernel.spawn("median-0", "n0", median)
        kernel.run()
        assert assignments == ["c0", "c1", "c2"]

    def test_queues_jobs_and_serves_longest_expected_first(self):
        """With no free client, the pending job with the *fewest* moves played
        (= the longest expected computation) gets the next freed client."""
        kernel = make_kernel()
        log = []

        def median(ctx, moves_played, delay):
            # Wait until the consumer has taken every initially-free client,
            # so this request has to be queued at the dispatcher.
            yield ctx.sleep(delay)
            yield ctx.send(
                "dispatcher", DispatchRequest(median=ctx.name, moves_played=moves_played), tag=TAG_DISPATCH
            )
            reply = yield ctx.recv(source="dispatcher", tag=TAG_DISPATCH)
            log.append((ctx.name, reply.payload.client, ctx.now))

        def client(ctx):
            # Frees itself twice, after the medians have queued their jobs.
            yield ctx.sleep(1.0)
            yield ctx.send("dispatcher", ClientFree(client="c0"), tag=TAG_DISPATCH)
            yield ctx.sleep(1.0)
            yield ctx.send("dispatcher", ClientFree(client="c1"), tag=TAG_DISPATCH)

        kernel.spawn("dispatcher", "n0", last_minute_dispatcher, ["c0", "c1"])

        def consumer(ctx):
            # Take both initially-free clients so later requests must queue.
            for _ in range(2):
                yield ctx.send("dispatcher", DispatchRequest(median=ctx.name, moves_played=99), tag=TAG_DISPATCH)
                yield ctx.recv(source="dispatcher", tag=TAG_DISPATCH)

        kernel.spawn("median-consumer", "n0", consumer)
        kernel.spawn("median-short", "n0", lambda ctx: median(ctx, moves_played=30, delay=0.2))
        kernel.spawn("median-long", "n0", lambda ctx: median(ctx, moves_played=5, delay=0.3))
        kernel.spawn("client-stub", "n0", client)
        kernel.run()
        # The job with 5 moves played (longest expected) is served before the one
        # with 30 moves played, even though it was queued *after* it.
        served_order = [name for name, _, _ in log]
        assert served_order == ["median-long", "median-short"]

    def test_equal_moves_played_ties_break_by_arrival(self):
        """Jobs with the same moves_played are served in arrival order (the
        heap key (moves_played, arrival) must preserve the old min() scan)."""
        kernel = make_kernel()
        log = []

        def median(ctx, delay):
            yield ctx.sleep(delay)
            yield ctx.send(
                "dispatcher", DispatchRequest(median=ctx.name, moves_played=7), tag=TAG_DISPATCH
            )
            yield ctx.recv(source="dispatcher", tag=TAG_DISPATCH)
            log.append(ctx.name)

        def consumer(ctx):
            yield ctx.send("dispatcher", DispatchRequest(median=ctx.name, moves_played=99), tag=TAG_DISPATCH)
            yield ctx.recv(source="dispatcher", tag=TAG_DISPATCH)

        def client(ctx):
            for _ in range(3):
                yield ctx.sleep(1.0)
                yield ctx.send("dispatcher", ClientFree(client="c0"), tag=TAG_DISPATCH)

        kernel.spawn("dispatcher", "n0", last_minute_dispatcher, ["c0"])
        kernel.spawn("median-consumer", "n0", consumer)
        kernel.spawn("median-first", "n0", lambda ctx: median(ctx, delay=0.1))
        kernel.spawn("median-second", "n0", lambda ctx: median(ctx, delay=0.2))
        kernel.spawn("median-third", "n0", lambda ctx: median(ctx, delay=0.3))
        kernel.spawn("client-stub", "n0", client)
        kernel.run()
        assert log == ["median-first", "median-second", "median-third"]

    def test_fifo_ablation_serves_in_arrival_order(self):
        kernel = make_kernel()
        log = []

        def median(ctx, moves_played, delay):
            yield ctx.sleep(delay)
            yield ctx.send(
                "dispatcher", DispatchRequest(median=ctx.name, moves_played=moves_played), tag=TAG_DISPATCH
            )
            yield ctx.recv(source="dispatcher", tag=TAG_DISPATCH)
            log.append(ctx.name)

        def consumer(ctx):
            yield ctx.send("dispatcher", DispatchRequest(median=ctx.name, moves_played=99), tag=TAG_DISPATCH)
            yield ctx.recv(source="dispatcher", tag=TAG_DISPATCH)

        def client(ctx):
            yield ctx.sleep(1.0)
            yield ctx.send("dispatcher", ClientFree(client="c0"), tag=TAG_DISPATCH)
            yield ctx.sleep(1.0)
            yield ctx.send("dispatcher", ClientFree(client="c0"), tag=TAG_DISPATCH)

        kernel.spawn("dispatcher", "n0", last_minute_dispatcher, ["c0"], True)  # fifo_jobs=True
        kernel.spawn("median-consumer", "n0", consumer)
        kernel.spawn("median-a", "n0", lambda ctx: median(ctx, moves_played=30, delay=0.2))
        kernel.spawn("median-b", "n0", lambda ctx: median(ctx, moves_played=5, delay=0.3))
        kernel.spawn("client-stub", "n0", client)
        kernel.run()
        # FIFO: median-a asked first, so it is served first even though
        # median-b's job is longer.
        assert log == ["median-a", "median-b"]

    def test_parks_freed_clients_until_a_job_arrives(self):
        kernel = make_kernel()
        assignments = []

        def consumer(ctx):
            # Take the only initially-free client.
            yield ctx.send("dispatcher", DispatchRequest(median=ctx.name, moves_played=99), tag=TAG_DISPATCH)
            yield ctx.recv(source="dispatcher", tag=TAG_DISPATCH)

        def client(ctx):
            # Announce a freed client while no job is pending.
            yield ctx.sleep(0.5)
            yield ctx.send("dispatcher", ClientFree(client="c9"), tag=TAG_DISPATCH)

        def median(ctx):
            yield ctx.sleep(1.0)
            yield ctx.send("dispatcher", DispatchRequest(median=ctx.name, moves_played=0), tag=TAG_DISPATCH)
            reply = yield ctx.recv(source="dispatcher", tag=TAG_DISPATCH)
            assignments.append(reply.payload.client)

        kernel.spawn("dispatcher", "n0", last_minute_dispatcher, ["c0"])
        kernel.spawn("median-consumer", "n0", consumer)
        kernel.spawn("client-stub", "n0", client)
        kernel.spawn("median-0", "n0", median)
        kernel.run()
        # The parked client (c9) serves the later request.
        assert assignments == ["c9"]

    def test_requires_clients(self):
        kernel = make_kernel()
        kernel.spawn("dispatcher", "n0", last_minute_dispatcher, [])
        with pytest.raises(Exception):
            kernel.run()
