"""Tests for the SameGame domain (repro.games.samegame)."""

from __future__ import annotations

import random

import pytest

from repro.games.samegame import SameGameState, random_board


def columns_state(columns):
    """Build a state directly from bottom-first columns."""
    return SameGameState(columns)


class TestConstruction:
    def test_random_board_shape(self):
        board = random_board(width=5, height=7, colors=3, seed=1)
        assert len(board) == 5
        assert all(len(col) == 7 for col in board)
        assert all(1 <= v <= 3 for col in board for v in col)

    def test_random_board_reproducible(self):
        assert random_board(seed=9) == random_board(seed=9)
        assert random_board(seed=9) != random_board(seed=10)

    def test_invalid_board_dimensions(self):
        with pytest.raises(ValueError):
            random_board(width=0)
        with pytest.raises(ValueError):
            random_board(colors=0)

    def test_invalid_colour_rejected(self):
        with pytest.raises(ValueError):
            SameGameState([[0, 1]])

    def test_column_taller_than_height_rejected(self):
        with pytest.raises(ValueError):
            SameGameState([[1, 1, 1]], height=2)


class TestRules:
    def test_single_cells_are_not_moves(self):
        state = columns_state([[1], [2], [1]])
        assert state.legal_moves() == []
        assert state.is_terminal()

    def test_horizontal_group_detected(self):
        state = columns_state([[1], [1], [2]])
        moves = state.legal_moves()
        assert moves == [(0, 0)]

    def test_vertical_group_detected(self):
        state = columns_state([[1, 1, 2]])
        assert state.legal_moves() == [(0, 0)]

    def test_apply_scores_group(self):
        state = columns_state([[1, 1, 1], [2]])
        state.apply((0, 0))
        assert state.score() == (3 - 2) ** 2
        assert state.moves_played() == 1
        # the column of three 1s is gone, the 2 column shifts left
        assert state.columns() == [[2]]

    def test_gravity_within_column(self):
        # column: bottom 1, 1, top 2 -> removing the 1s leaves the 2 at the bottom
        state = columns_state([[1, 1, 2], [3, 3]])
        state.apply((0, 0))
        assert state.columns()[0] == [2]

    def test_empty_column_compaction(self):
        state = columns_state([[1, 1], [2], [3, 3]])
        state.apply((0, 0))
        assert state.columns() == [[2], [3, 3]]

    def test_full_clear_bonus(self):
        state = columns_state([[1, 1]])
        state.apply((0, 0))
        assert state.cleared()
        assert state.score() == 0 + SameGameState.FULL_CLEAR_BONUS

    def test_illegal_move_raises(self):
        state = columns_state([[1], [2]])
        with pytest.raises(ValueError):
            state.apply((0, 0))

    def test_group_spanning_columns_and_rows(self):
        # L-shaped group of colour 1
        state = columns_state([[1, 1], [1, 2], [3]])
        moves = state.legal_moves()
        assert (0, 0) in moves
        state.apply((0, 0))
        assert state.remaining_cells() == 2
        assert state.score() == (3 - 2) ** 2


class TestHelpers:
    def test_copy_independent(self):
        state = columns_state([[1, 1], [2, 2]])
        clone = state.copy()
        clone.apply((0, 0))
        assert state.remaining_cells() == 4
        assert clone.remaining_cells() == 2

    def test_render_contains_all_cells(self):
        state = SameGameState.random(4, 4, 3, seed=2)
        text = state.render()
        assert len(text.splitlines()) == 4

    def test_random_playout_terminates(self):
        state = SameGameState.random(5, 5, 3, seed=3)
        rng = random.Random(0)
        while not state.is_terminal():
            state.apply(rng.choice(state.legal_moves()))
        assert state.score() >= 0
        # terminal means no group of size >= 2 remains
        assert state.legal_moves() == []
