"""Tests for the unified SearchSpec / Engine API (repro.api)."""

from __future__ import annotations

import itertools
import json

import pytest

from repro.api import (
    ALGORITHMS,
    BACKENDS,
    Engine,
    RunEvent,
    RunReport,
    SearchSpec,
    build_cluster,
    list_algorithms,
    list_backends,
    register_algorithm,
    register_backend,
    to_jsonable,
)
from repro.core.nested import nmcs
from repro.cluster.topology import homogeneous_cluster
from repro.parallel.driver import (
    first_move_experiment,
    rollout_experiment,
    sequential_reference,
)
from repro.parallel.round_robin import run_round_robin
from repro.parallel.last_minute import run_last_minute
from repro.workloads import get_workload


REPORT_KEYS = {
    "spec",
    "algorithm",
    "backend",
    "level",
    "score",
    "sequence",
    "sequence_length",
    "work_units",
    "simulated_seconds",
    "wall_seconds",
    "n_jobs",
    "n_workers",
    "comm",
    "client_utilisation",
    "kernel_stats",
    "telemetry",
}


class TestSearchSpec:
    def test_dict_round_trip(self):
        spec = SearchSpec(
            workload="tsp",
            algorithm="nrpa",
            backend="sequential",
            level=2,
            seed=7,
            max_steps=3,
            dispatcher="lm",
            cluster="heterogeneous:2x4+2x2",
            n_clients=16,
            params={"iterations": 5, "alpha": 0.5},
        )
        assert SearchSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = SearchSpec(workload="morpion-small", backend="sim-cluster", dispatcher="rr")
        text = spec.to_json(indent=2)
        assert SearchSpec.from_json(text) == spec
        json.loads(text)  # genuinely valid JSON

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown SearchSpec fields: bogus"):
            SearchSpec.from_dict({"workload": "tsp", "bogus": 1})

    def test_replace_returns_modified_copy(self):
        spec = SearchSpec(workload="tsp")
        other = spec.replace(backend="threads", n_workers=2)
        assert other.backend == "threads" and other.n_workers == 2
        assert spec.backend == "sequential"

    def test_specs_are_hashable_and_params_read_only(self):
        spec = SearchSpec(workload="tsp", params={"iterations": 3})
        assert spec == spec.replace()
        assert len({spec, spec.replace(), spec.replace(seed=1)}) == 2
        with pytest.raises(TypeError):
            spec.params["iterations"] = 99

    def test_dict_round_trip_preserves_param_types(self):
        spec = SearchSpec(params={"pair": (1, 2)})
        assert SearchSpec.from_dict(spec.to_dict()) == spec
        assert spec.to_dict()["params"]["pair"] == (1, 2)  # verbatim, not coerced

    def test_to_json_rejects_non_serialisable_params(self):
        spec = SearchSpec(params={"fn": object()})
        with pytest.raises(TypeError):
            spec.to_json()

    def test_validation(self):
        with pytest.raises(ValueError):
            SearchSpec(level=-1)
        with pytest.raises(ValueError):
            SearchSpec(max_steps=0)
        with pytest.raises(ValueError):
            SearchSpec(n_clients=0)
        with pytest.raises(ValueError):
            SearchSpec(dispatcher="bogus")
        with pytest.raises(ValueError):
            SearchSpec(freq_ghz=0.0)


class TestWireForms:
    """to_dict/from_dict of RunReport and RunEvent — the service wire encoding."""

    def test_run_report_round_trip(self):
        report = Engine().run(SearchSpec(workload="leftmove", level=1, max_steps=1))
        data = report.to_dict()
        json.dumps(data)  # genuinely serialisable
        restored = RunReport.from_dict(data, raw={"origin": "test"})
        assert restored.spec == report.spec
        assert restored.score == report.score
        assert restored.work_units == report.work_units
        assert restored.simulated_seconds == report.simulated_seconds
        assert restored.raw == {"origin": "test"}
        # Sequences come back as the rendered strings, and re-serialising is
        # idempotent — no double-quoting on a second trip through the wire.
        assert restored.to_dict() == data

    def test_run_event_round_trip(self):
        spec = SearchSpec(workload="leftmove", level=1, max_steps=1)
        report = Engine().run(spec)
        event = RunEvent("completed", 3, 8, spec, report=report, done=4)
        data = event.to_dict()
        json.dumps(data)
        restored = RunEvent.from_dict(data)
        assert (restored.kind, restored.index, restored.total, restored.done) == (
            "completed", 3, 8, 4,
        )
        assert restored.spec == spec
        assert restored.report.score == report.score
        assert restored.error is None
        assert restored.to_dict() == data

    def test_failed_event_error_survives_as_message(self):
        spec = SearchSpec(workload="leftmove")
        event = RunEvent("failed", 0, 1, spec, error=ValueError("bad level"), done=1)
        data = event.to_dict()
        assert data["error"] == "ValueError: bad level"
        restored = RunEvent.from_dict(data)
        assert isinstance(restored.error, RuntimeError)
        assert str(restored.error) == "ValueError: bad level"
        assert restored.report is None

    def test_started_event_round_trips_without_payload(self):
        spec = SearchSpec(workload="leftmove")
        event = RunEvent("started", 0, 2, spec)
        restored = RunEvent.from_dict(event.to_dict())
        assert restored.report is None and restored.error is None
        assert not restored.terminal


class TestRegistries:
    def test_builtins_registered(self):
        assert {"sample", "flat", "nmcs", "reflexive", "iterated", "nrpa"} <= set(
            list_algorithms()
        )
        assert {"sequential", "sim-cluster", "multiprocessing", "threads"} <= set(
            list_backends()
        )

    def test_duplicate_algorithm_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_algorithm("nmcs")(lambda *a: None)

    def test_duplicate_backend_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("sequential")(lambda *a: None)

    def test_custom_registration_round_trips(self):
        @register_algorithm("test-greedy", description="for this test only")
        def _greedy(state, level, seeds, counter, budget, params):
            from repro.core.sample import sample

            return sample(state, seeds=seeds, counter=counter)

        try:
            report = Engine().run(
                SearchSpec(workload="leftmove", algorithm="test-greedy", level=0)
            )
            assert report.algorithm == "test-greedy"
            assert report.score > 0
        finally:
            del ALGORITHMS["test-greedy"]

    def test_unknown_names_raise_helpfully(self):
        with pytest.raises(ValueError, match="registered algorithms"):
            Engine().run(SearchSpec(algorithm="bogus"))
        with pytest.raises(ValueError, match="registered backends"):
            Engine().run(SearchSpec(backend="bogus"))


class TestClusterDescriptors:
    def test_homogeneous(self):
        cluster = build_cluster(SearchSpec(cluster="homogeneous", n_clients=6))
        assert cluster.n_clients == 6

    def test_paper_mix_switches_at_32(self):
        small = build_cluster(SearchSpec(cluster="paper-mix", n_clients=8))
        large = build_cluster(SearchSpec(cluster="paper-mix", n_clients=64))
        assert all(node.freq_ghz in (1.86, 2.33) for node in small.nodes)
        assert any("fast" in node.name for node in large.nodes)

    def test_heterogeneous_descriptor(self):
        cluster = build_cluster(SearchSpec(cluster="heterogeneous:2x4+3x2"))
        assert cluster.n_clients == 2 * 4 + 3 * 2

    def test_bad_descriptors(self):
        with pytest.raises(ValueError, match="known kinds"):
            build_cluster(SearchSpec(cluster="bogus"))
        with pytest.raises(ValueError, match="heterogeneous"):
            build_cluster(SearchSpec(cluster="heterogeneous:nope"))


@pytest.fixture(scope="module")
def engine():
    """One engine for the whole module: job caching is shared across tests."""
    return Engine()


class TestEngine:
    def test_sequential_nmcs_matches_legacy_entry_point(self, engine):
        workload = get_workload("morpion-small")
        report = engine.run(SearchSpec(workload="morpion-small", level=2, seed=3, max_steps=1))
        legacy = nmcs(workload.state(), 2, seed=3, max_steps=1)
        assert report.score == legacy.score
        assert report.sequence == legacy.sequence

    def test_backends_agree_on_the_search_result(self, engine):
        base = SearchSpec(workload="morpion-small", level=2, seed=0, max_steps=1)
        reports = [
            engine.run(base),
            engine.run(base.replace(backend="sim-cluster", dispatcher="rr", n_clients=4)),
            engine.run(base.replace(backend="sim-cluster", dispatcher="lm", n_clients=4)),
            engine.run(base.replace(backend="threads", n_workers=2)),
        ]
        scores = {report.score for report in reports}
        assert len(scores) == 1

    def test_every_algorithm_backend_pair(self, engine):
        """Every registered algorithm × backend pair either runs or refuses clearly."""
        algorithm_params = {
            "flat": {"playouts_per_move": 1},
            "iterated": {"restarts": 2},
            "nrpa": {"iterations": 2},
        }
        for algorithm, backend in itertools.product(ALGORITHMS, BACKENDS):
            entry = BACKENDS[backend]
            level = 2 if backend == "sim-cluster" else 1
            spec = SearchSpec(
                workload="morpion-small",
                algorithm=algorithm,
                backend=backend,
                level=level,
                seed=0,
                max_steps=1 if ALGORITHMS[algorithm].supports_budget else None,
                n_clients=2,
                n_workers=2,
                params=algorithm_params.get(algorithm, {}),
            )
            if entry.supports(algorithm):
                report = engine.run(spec)
                assert isinstance(report, RunReport), (algorithm, backend)
                assert set(report.to_dict()) == REPORT_KEYS, (algorithm, backend)
                assert report.score >= 0.0, (algorithm, backend)
                json.dumps(report.to_dict())  # serialisable for every pair
            else:
                with pytest.raises(ValueError, match=f"backend {backend!r}"):
                    engine.run(spec)

    def test_multiprocessing_backend_smoke(self, engine):
        report = engine.run(
            SearchSpec(
                workload="morpion-small",
                backend="multiprocessing",
                level=1,
                max_steps=1,
                n_workers=2,
            )
        )
        legacy = nmcs(get_workload("morpion-small").state(), 1, seed=0, max_steps=1)
        assert report.score == legacy.score
        assert report.n_workers == 2

    def test_run_accepts_a_plain_dict(self, engine):
        report = engine.run({"workload": "leftmove", "level": 1, "max_steps": 1})
        assert report.backend == "sequential"

    def test_run_many(self, engine):
        specs = [
            SearchSpec(workload="leftmove", level=1, seed=seed, max_steps=1)
            for seed in (0, 1)
        ]
        reports = engine.run_many(specs)
        assert [r.spec.seed for r in reports] == [0, 1]

    def test_sim_cluster_report_carries_comm_and_trace(self, engine):
        report = engine.run(
            SearchSpec(
                workload="morpion-small",
                backend="sim-cluster",
                dispatcher="lm",
                level=2,
                max_steps=1,
                n_clients=4,
            )
        )
        assert report.comm  # message counts present
        assert report.raw.trace is not None  # substrate-native result available
        assert 0.0 < report.client_utilisation <= 1.0
        assert report.n_jobs == report.raw.n_jobs

    def test_mixed_workloads_on_one_engine_do_not_alias_caches(self, engine):
        """Job caches are partitioned per workload (seed paths repeat across games)."""
        base = SearchSpec(backend="sim-cluster", level=2, seed=0, max_steps=1, n_clients=2)
        morpion = engine.run(base.replace(workload="morpion-small"))
        left = engine.run(base.replace(workload="leftmove"))
        assert morpion.score == 12.0
        assert left.score > 0
        assert morpion.sequence != left.sequence

    def test_unknown_params_rejected_loudly(self, engine):
        """A typo like 'playout_per_move' fails instead of being silently ignored."""
        with pytest.raises(ValueError, match="playout_per_move.*accepted params"):
            engine.run(
                SearchSpec(
                    workload="leftmove",
                    algorithm="flat",
                    level=1,
                    params={"playout_per_move": 4},
                )
            )
        # Algorithms accepting no params say so.
        with pytest.raises(ValueError, match=r"accepted params: \(none\)"):
            engine.run(SearchSpec(workload="leftmove", level=1, params={"bogus": 1}))

    def test_backend_params_accepted_alongside_algorithm_params(self, engine):
        """Substrate-level params (lm_fifo_jobs, ...) pass validation on their backend."""
        report = engine.run(
            SearchSpec(
                workload="leftmove",
                backend="sim-cluster",
                dispatcher="lm",
                level=2,
                max_steps=1,
                n_clients=2,
                params={"lm_fifo_jobs": True},
            )
        )
        assert report.score > 0
        # ... but not on a backend that does not read them.
        with pytest.raises(ValueError, match="lm_fifo_jobs"):
            engine.run(
                SearchSpec(workload="leftmove", level=1, params={"lm_fifo_jobs": True})
            )

    def test_algorithm_can_opt_out_of_param_validation(self):
        @register_algorithm("test-anyparams", params=None)
        def _any(state, level, seeds, counter, budget, params):
            from repro.core.sample import sample

            return sample(state, seeds=seeds, counter=counter)

        try:
            report = Engine().run(
                SearchSpec(
                    workload="leftmove",
                    algorithm="test-anyparams",
                    level=0,
                    params={"anything": "goes"},
                )
            )
            assert report.score > 0
        finally:
            del ALGORITHMS["test-anyparams"]

    def test_budgetless_algorithms_reject_max_steps(self, engine):
        for algorithm in ("nrpa", "iterated", "sample"):
            with pytest.raises(ValueError, match="no root-move budget"):
                engine.run(
                    SearchSpec(workload="leftmove", algorithm=algorithm, level=1, max_steps=1)
                )

    def test_spec_units_per_ghz_overrides_cost_model(self, engine):
        fast = engine.run(
            SearchSpec(workload="leftmove", level=1, max_steps=1, units_per_ghz=1e9)
        )
        slow = engine.run(
            SearchSpec(workload="leftmove", level=1, max_steps=1, units_per_ghz=1e3)
        )
        assert fast.simulated_seconds < slow.simulated_seconds


class TestDeprecatedShims:
    """The pre-API entry points still work and delegate through the Engine."""

    def test_first_move_experiment_delegates(self):
        workload = get_workload("morpion-small")
        cluster = homogeneous_cluster(4)
        with pytest.warns(DeprecationWarning):
            legacy = first_move_experiment(workload.state(), 2, "rr", cluster, master_seed=0)
        report = Engine().run(
            SearchSpec(
                workload="morpion-small",
                backend="sim-cluster",
                dispatcher="rr",
                level=2,
                max_steps=1,
                n_clients=4,
            )
        )
        assert legacy.result.score == report.score
        assert legacy.result.sequence == report.sequence

    def test_rollout_experiment_still_runs(self):
        workload = get_workload("leftmove")
        with pytest.warns(DeprecationWarning):
            run = rollout_experiment(workload.state(), 2, "lm", homogeneous_cluster(2))
        assert run.result.score > 0

    def test_sequential_reference_matches_engine(self):
        workload = get_workload("morpion-small")
        with pytest.warns(DeprecationWarning):
            ref = sequential_reference(workload.state(), 2, master_seed=1, max_steps=1)
        report = Engine().run(
            SearchSpec(workload="morpion-small", level=2, seed=1, max_steps=1)
        )
        assert ref.result.score == report.score
        assert ref.work_units == report.work_units
        assert ref.simulated_seconds == pytest.approx(report.simulated_seconds)

    def test_rr_and_lm_front_ends(self):
        workload = get_workload("leftmove")
        with pytest.warns(DeprecationWarning):
            rr = run_round_robin(workload.state(), 2, homogeneous_cluster(2), max_root_steps=1)
        with pytest.warns(DeprecationWarning):
            lm = run_last_minute(workload.state(), 2, homogeneous_cluster(2), max_root_steps=1)
        assert rr.result.score == lm.result.score


class TestToJsonable:
    def test_handles_library_payloads(self):
        from repro.analysis.commpattern import CommunicationSummary

        payload = {
            "summary": CommunicationSummary(counts={"task": 3}),
            "nested": {"tuple": (1, 2), "set": {3}},
            "enum": __import__("repro.parallel.config", fromlist=["DispatcherKind"]).DispatcherKind.ROUND_ROBIN,
        }
        encoded = to_jsonable(payload)
        json.dumps(encoded)
        assert encoded["summary"]["counts"]["task"] == 3
        assert encoded["enum"] == "round_robin"
