"""Integration tests: the parallel search returns the sequential search's result.

The parallel algorithms distribute exactly the candidate evaluations the
sequential ``nested`` function would perform, with the same derived seeds, so
(with best-sequence memorisation on) the score *and* the move sequence must be
identical whatever the dispatcher, the cluster topology or the number of
clients.  This is the strongest correctness property of the reproduction and
the reason the benchmark tables compare like with like.
"""

from __future__ import annotations

import pytest

from repro.cluster.topology import heterogeneous_cluster, homogeneous_cluster, single_machine
from repro.core.nested import nested_search
from repro.games.weakschur import WeakSchurState
from repro.parallel.config import DispatcherKind, ParallelConfig
from repro.parallel.driver import run_parallel_nmcs
from repro.parallel.jobs import CachingJobExecutor
from repro.prng import SeedSequence


@pytest.fixture(scope="module")
def workload_state():
    return WeakSchurState(k=3, limit=14)


@pytest.fixture(scope="module")
def sequential_result(workload_state):
    return nested_search(workload_state, 2, SeedSequence(11, "nmcs"))


@pytest.fixture(scope="module")
def shared_executor():
    return CachingJobExecutor()


class TestEquivalenceWithSequential:
    @pytest.mark.parametrize("dispatcher", [DispatcherKind.ROUND_ROBIN, DispatcherKind.LAST_MINUTE])
    @pytest.mark.parametrize("n_clients", [1, 3, 8])
    def test_parallel_matches_sequential(
        self, workload_state, sequential_result, shared_executor, dispatcher, n_clients
    ):
        config = ParallelConfig(level=2, dispatcher=dispatcher, n_medians=5, master_seed=11)
        run = run_parallel_nmcs(
            workload_state, config, homogeneous_cluster(n_clients), executor=shared_executor
        )
        assert run.result.score == sequential_result.score
        assert run.result.sequence == sequential_result.sequence

    def test_parallel_matches_on_heterogeneous_cluster(
        self, workload_state, sequential_result, shared_executor
    ):
        config = ParallelConfig(
            level=2, dispatcher=DispatcherKind.LAST_MINUTE, n_medians=4, master_seed=11
        )
        run = run_parallel_nmcs(
            workload_state, config, heterogeneous_cluster(2, 2), executor=shared_executor
        )
        assert run.result.sequence == sequential_result.sequence

    def test_fewer_medians_than_moves_still_correct(
        self, workload_state, sequential_result, shared_executor
    ):
        config = ParallelConfig(level=2, n_medians=1, master_seed=11)
        run = run_parallel_nmcs(
            workload_state, config, homogeneous_cluster(2), executor=shared_executor
        )
        assert run.result.sequence == sequential_result.sequence

    def test_result_replays_on_the_original_position(
        self, workload_state, shared_executor
    ):
        config = ParallelConfig(level=2, master_seed=11)
        run = run_parallel_nmcs(
            workload_state, config, homogeneous_cluster(4), executor=shared_executor
        )
        assert run.result.verify(workload_state)

    def test_first_move_matches_sequential_first_move(self, workload_state, shared_executor):
        sequential = nested_search(workload_state, 2, SeedSequence(11, "nmcs"), max_steps=1)
        config = ParallelConfig(level=2, master_seed=11, max_root_steps=1)
        run = run_parallel_nmcs(
            workload_state, config, homogeneous_cluster(4), executor=shared_executor
        )
        assert run.result.score == sequential.score
        assert run.result.sequence == sequential.sequence


class TestSchedulerIndependence:
    def test_rr_and_lm_return_identical_results(self, workload_state, shared_executor):
        results = []
        for dispatcher in (DispatcherKind.ROUND_ROBIN, DispatcherKind.LAST_MINUTE):
            config = ParallelConfig(level=2, dispatcher=dispatcher, master_seed=23, n_medians=6)
            run = run_parallel_nmcs(
                workload_state, config, homogeneous_cluster(5), executor=shared_executor
            )
            results.append(run.result)
        assert results[0].score == results[1].score
        assert results[0].sequence == results[1].sequence

    def test_topology_does_not_change_results(self, workload_state, shared_executor):
        sequences = set()
        for cluster in (single_machine(2), homogeneous_cluster(6), heterogeneous_cluster(1, 2)):
            config = ParallelConfig(level=2, master_seed=31, n_medians=3)
            run = run_parallel_nmcs(workload_state, config, cluster, executor=shared_executor)
            sequences.add(run.result.sequence)
        assert len(sequences) == 1

    def test_memorisation_off_is_the_papers_literal_pseudocode(self, workload_state):
        """Without memorisation the run still completes and replays correctly
        (it may differ from the sequential NMCS result)."""
        config = ParallelConfig(level=2, master_seed=11, memorize_best_sequence=False)
        run = run_parallel_nmcs(workload_state, config, homogeneous_cluster(3))
        final = run.result.final_state(workload_state)
        assert final.score() == run.result.score


class TestLevel3:
    def test_level3_parallel_matches_sequential(self, shared_executor):
        state = WeakSchurState(k=3, limit=8)
        sequential = nested_search(state, 3, SeedSequence(7, "nmcs"))
        config = ParallelConfig(level=3, master_seed=7, n_medians=3)
        run = run_parallel_nmcs(state, config, homogeneous_cluster(4), executor=CachingJobExecutor())
        assert run.result.score == sequential.score
        assert run.result.sequence == sequential.sequence
