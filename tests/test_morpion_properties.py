"""Property-based tests for Morpion Solitaire rule invariants."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.games.morpion.geometry import cross_points
from repro.games.morpion.state import MorpionState, MorpionVariant


def _play_random_game(state: MorpionState, seed: int, max_plies: int) -> MorpionState:
    rng = random.Random(seed)
    for _ in range(max_plies):
        moves = state.legal_moves()
        if not moves:
            break
        state.apply(moves[rng.randrange(len(moves))])
    return state


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    variant=st.sampled_from([MorpionVariant.DISJOINT, MorpionVariant.TOUCHING]),
    plies=st.integers(0, 12),
)
def test_invariants_hold_along_random_games(seed, variant, plies):
    """Occupancy, usage marks and the incremental legal-move cache stay consistent."""
    state = MorpionState(line_length=4, variant=variant, initial_points=cross_points(3))
    _play_random_game(state, seed, plies)
    state.check_invariants()


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), plies=st.integers(1, 10))
def test_incremental_legal_moves_match_full_rescan(seed, plies):
    state = MorpionState(line_length=4, initial_points=cross_points(3))
    _play_random_game(state, seed, plies)
    assert state.legal_moves() == state.recompute_legal_moves()


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_score_equals_history_length(seed):
    state = MorpionState(line_length=4, initial_points=cross_points(3), max_moves=10)
    _play_random_game(state, seed, 20)
    assert state.score() == len(state.history())
    assert len(state.occupied()) == len(state.initial_points()) + len(state.history())


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), plies=st.integers(0, 8))
def test_copy_then_replay_reaches_identical_position(seed, plies):
    original = MorpionState(line_length=4, initial_points=cross_points(3))
    played = _play_random_game(original.copy(), seed, plies)
    replayed = original.copy()
    for move in played.history():
        replayed.apply(move)
    assert replayed.occupied() == played.occupied()
    assert replayed.legal_moves() == played.legal_moves()
    assert replayed.used_marks() == played.used_marks()


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_touching_variant_is_a_relaxation_of_disjoint(seed):
    """Every legal disjoint move is also legal under touching rules on the same history."""
    disjoint = MorpionState(line_length=4, initial_points=cross_points(3))
    touching = MorpionState(
        line_length=4, variant=MorpionVariant.TOUCHING, initial_points=cross_points(3)
    )
    rng = random.Random(seed)
    for _ in range(8):
        moves = disjoint.legal_moves()
        if not moves:
            break
        move = moves[rng.randrange(len(moves))]
        assert move in touching.legal_moves()
        disjoint.apply(move)
        touching.apply(move)
    assert set(disjoint.legal_moves()) <= set(touching.legal_moves())
