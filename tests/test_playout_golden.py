"""Seeded playout goldens: the fast kernels must not change what playouts do.

``tests/data/playout_golden.json`` was captured from the pre-refactor
(copy-light, pure-Python-dict) game kernels with
``tests/data/capture_playout_golden.py``.  Every workload of the profiling
roster must reproduce the exact initial legal-move list, move sequence, score
and work-unit count of each seeded playout — bit-identical, no tolerance.
This is the contract that makes the bytearray/incremental kernel rewrites
safe: any divergence in move ordering, rng consumption or scoring trips here
before it can silently skew a search result.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.counters import WorkCounter
from repro.games.base import playout_from, random_playout
from repro.prng import SeedSequence
from repro.workloads import get_workload

GOLDEN_PATH = Path(__file__).parent / "data" / "playout_golden.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))

CASES = [
    (name, i, playout)
    for name, playouts in GOLDEN["games"].items()
    for i, playout in enumerate(playouts)
]


@pytest.mark.parametrize(
    "name,index,golden",
    CASES,
    ids=[f"{name}-p{i}" for name, i, _ in CASES],
)
def test_seeded_playout_matches_golden(name, index, golden):
    workload = get_workload(name)
    state = workload.state()
    assert [repr(m) for m in state.legal_moves()] == golden["initial_legal_moves"]

    seeds = SeedSequence(GOLDEN["master_seed"], "golden", name)
    counter = WorkCounter()
    score, moves = playout_from(state, seeds.child("playout", index).rng(), counter)

    assert [repr(m) for m in moves] == golden["moves"]
    assert score == golden["score"]  # bit-identical, no tolerance
    assert counter.moves == golden["work_units"]
    assert state.moves_played() == golden["final_moves_played"]


def test_playout_and_random_playout_agree():
    """The non-destructive wrapper plays the same game as the in-place hook."""
    for name in GOLDEN["games"]:
        workload = get_workload(name)
        rng_seed = SeedSequence(7, "golden-agree", name).seed()
        import random as _random

        destructive = workload.state()
        s1, m1 = destructive.playout(_random.Random(rng_seed))
        s2, m2 = random_playout(workload.state(), _random.Random(rng_seed))
        assert (s1, m1) == (s2, m2)
