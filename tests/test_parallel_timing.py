"""Integration tests for the *timing* behaviour of the simulated parallel runs.

These tests assert the qualitative properties the paper's evaluation section
reports: more clients make the simulated search faster, the Last-Minute
algorithm is at least as good as Round-Robin on oversubscribed heterogeneous
clusters, client computations really overlap, and the communication pattern
matches Figures 2–5.
"""

from __future__ import annotations

import pytest

from repro.analysis.commpattern import analyze_communications, verify_pattern
from repro.cluster.network import NetworkModel
from repro.cluster.topology import heterogeneous_cluster, homogeneous_cluster
from repro.games.morpion.geometry import cross_points
from repro.games.morpion.state import MorpionState
from repro.parallel.config import DispatcherKind, ParallelConfig
from repro.parallel.driver import run_parallel_nmcs, sequential_reference
from repro.parallel.jobs import CachingJobExecutor
from repro.timemodel.cost import CostModel

#: A cost model that makes the scaled workload's client jobs last ~0.1-1 s of
#: simulated time, i.e. orders of magnitude above the network latency — the
#: regime of the paper's cluster.
SLOW_COST_MODEL = CostModel(units_per_ghz_per_second=50.0)


def bench_state() -> MorpionState:
    return MorpionState(line_length=4, initial_points=cross_points(3), max_moves=10)


@pytest.fixture(scope="module")
def shared_executor():
    return CachingJobExecutor()


def run_first_move(dispatcher, cluster, executor, level=2, seed=3, **kwargs):
    config = ParallelConfig(
        level=level,
        dispatcher=DispatcherKind.parse(dispatcher),
        n_medians=20,
        max_root_steps=1,
        master_seed=seed,
        **kwargs,
    )
    return run_parallel_nmcs(
        bench_state(), config, cluster, executor=executor, cost_model=SLOW_COST_MODEL
    )


class TestSpeedup:
    def test_more_clients_is_faster(self, shared_executor):
        t1 = run_first_move("rr", homogeneous_cluster(1), shared_executor).simulated_seconds
        t4 = run_first_move("rr", homogeneous_cluster(4), shared_executor).simulated_seconds
        t16 = run_first_move("rr", homogeneous_cluster(16), shared_executor).simulated_seconds
        assert t4 < t1
        assert t16 < t4
        assert t1 / t16 > 4.0  # clearly super-unitary speedup at 16 clients

    def test_single_client_close_to_sequential(self, shared_executor):
        sequential = sequential_reference(
            bench_state(), 2, master_seed=3, max_steps=1, cost_model=SLOW_COST_MODEL
        )
        parallel = run_first_move("rr", homogeneous_cluster(1), shared_executor)
        # One client does all the client work sequentially, so the simulated
        # time stays in the ballpark of the sequential reference.  It is not
        # identical: the root/median bookkeeping runs on the (faster) server
        # node and overlaps with the client, while the sequential reference
        # charges every move application to the single 1.86 GHz core.
        assert parallel.simulated_seconds >= 0.6 * sequential.simulated_seconds
        assert parallel.simulated_seconds < 1.3 * sequential.simulated_seconds

    def test_clients_really_overlap(self, shared_executor):
        run = run_first_move("rr", homogeneous_cluster(16), shared_executor)
        assert run.trace.max_concurrency("client") > 4
        assert run.n_jobs > 50

    def test_total_client_work_independent_of_topology(self, shared_executor):
        a = run_first_move("rr", homogeneous_cluster(2), shared_executor)
        b = run_first_move("rr", homogeneous_cluster(16), shared_executor)
        assert a.total_client_work == pytest.approx(b.total_client_work)

    def test_faster_nodes_run_faster(self, shared_executor):
        slow = run_parallel_nmcs(
            bench_state(),
            ParallelConfig(level=2, max_root_steps=1, master_seed=3, n_medians=20),
            homogeneous_cluster(4, freq_ghz=1.86),
            executor=shared_executor,
            cost_model=SLOW_COST_MODEL,
        )
        fast = run_parallel_nmcs(
            bench_state(),
            ParallelConfig(level=2, max_root_steps=1, master_seed=3, n_medians=20),
            homogeneous_cluster(4, freq_ghz=2.33),
            executor=shared_executor,
            cost_model=SLOW_COST_MODEL,
        )
        assert fast.simulated_seconds < slow.simulated_seconds


class TestLastMinuteAdvantage:
    def test_lm_at_least_as_fast_as_rr_when_oversubscribed(self, shared_executor):
        """On the Table VI style topology (fewer clients than outstanding jobs,
        half of them on oversubscribed PCs) Last-Minute must not lose to
        Round-Robin."""
        cluster = heterogeneous_cluster(2, 2)  # 2x4 + 2x2 = 12 clients, 8 cores
        rr = run_first_move("rr", cluster, shared_executor)
        lm = run_first_move("lm", cluster, shared_executor)
        assert lm.simulated_seconds <= rr.simulated_seconds * 1.02

    def test_lm_notifications_present_only_for_lm(self, shared_executor):
        cluster = homogeneous_cluster(4)
        rr = run_first_move("rr", cluster, shared_executor)
        lm = run_first_move("lm", cluster, shared_executor)
        rr_summary = analyze_communications(rr.trace)
        lm_summary = analyze_communications(lm.trace)
        assert rr_summary.count("c': client->dispatcher free") == 0
        # Every shipped client job triggers exactly one free notification.
        assert lm_summary.count("c': client->dispatcher free") == lm_summary.count(
            "b3: median->client job"
        )

    def test_communication_pattern_matches_figures(self, shared_executor):
        for dispatcher in (DispatcherKind.ROUND_ROBIN, DispatcherKind.LAST_MINUTE):
            run = run_first_move(dispatcher, homogeneous_cluster(6), shared_executor)
            summary = analyze_communications(run.trace)
            assert verify_pattern(summary, dispatcher) == []


class TestNetworkSensitivity:
    def test_slower_network_slows_the_run(self, shared_executor):
        cluster = homogeneous_cluster(8)
        config = ParallelConfig(level=2, max_root_steps=1, master_seed=3, n_medians=20)
        fast_net = run_parallel_nmcs(
            bench_state(), config, cluster, executor=shared_executor,
            cost_model=SLOW_COST_MODEL, network=NetworkModel.instantaneous(),
        )
        slow_net = run_parallel_nmcs(
            bench_state(), config, cluster, executor=shared_executor,
            cost_model=SLOW_COST_MODEL, network=NetworkModel.slow(latency_ms=5.0),
        )
        assert slow_net.simulated_seconds > fast_net.simulated_seconds

    def test_client_utilisation_reported(self, shared_executor):
        run = run_first_move("rr", homogeneous_cluster(8), shared_executor)
        assert 0.0 < run.client_utilisation() <= 1.0
