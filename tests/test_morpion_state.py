"""Tests for the Morpion Solitaire game state (repro.games.morpion.state)."""

from __future__ import annotations

import random

import pytest

from repro.games.morpion.geometry import DIRECTIONS, cross_points
from repro.games.morpion.records import RECORD_SCORES, best_known_score, is_new_record, reference_records
from repro.games.morpion.render import render_grid, render_sequence, render_state
from repro.games.morpion.state import MorpionMove, MorpionState, MorpionVariant


class TestVariantParsing:
    def test_aliases(self):
        assert MorpionVariant.parse("5D") is MorpionVariant.DISJOINT
        assert MorpionVariant.parse("5t") is MorpionVariant.TOUCHING
        assert MorpionVariant.parse(MorpionVariant.DISJOINT) is MorpionVariant.DISJOINT

    def test_unknown(self):
        with pytest.raises(ValueError):
            MorpionVariant.parse("5x")


class TestInitialPosition:
    def test_standard_5d_has_28_initial_moves(self):
        # The classical Morpion Solitaire starting cross admits exactly 28 moves.
        assert len(MorpionState().legal_moves()) == 28

    def test_standard_5t_has_28_initial_moves(self):
        assert len(MorpionState(variant="touching").legal_moves()) == 28

    def test_initial_score_is_zero(self):
        state = MorpionState()
        assert state.score() == 0.0
        assert state.moves_played() == 0
        assert not state.is_terminal()

    def test_initial_points_match_cross(self):
        state = MorpionState(line_length=4)
        assert state.initial_points() == frozenset(cross_points(4))

    def test_validation(self):
        with pytest.raises(ValueError):
            MorpionState(line_length=2)
        with pytest.raises(ValueError):
            MorpionState(initial_points=[])
        with pytest.raises(ValueError):
            MorpionState(max_moves=-1)


class TestMoves:
    def test_apply_first_legal_move(self):
        state = MorpionState()
        move = state.legal_moves()[0]
        state.apply(move)
        assert state.score() == 1.0
        assert move.point in state.occupied()
        assert state.history() == (move,)

    def test_apply_illegal_move_raises(self):
        state = MorpionState()
        bogus = MorpionMove((100, 100), 0, (100, 100))
        with pytest.raises(ValueError):
            state.apply(bogus)

    def test_apply_accepts_plain_tuple(self):
        state = MorpionState()
        move = state.legal_moves()[0]
        state.apply(tuple(move))
        assert state.moves_played() == 1

    def test_same_point_cannot_be_played_twice(self):
        state = MorpionState()
        move = state.legal_moves()[0]
        state.apply(move)
        assert all(m.point != move.point for m in state.legal_moves())

    def test_disjoint_forbids_reusing_line_points(self):
        state = MorpionState(variant="disjoint")
        move = state.legal_moves()[0]
        state.apply(move)
        used = set(move.cells(state.line_length))
        for m in state.legal_moves():
            if m.direction == move.direction:
                assert not (set(m.cells(state.line_length)) & used)

    def test_touching_allows_sharing_an_endpoint(self):
        # The touching variant must allow at least as many moves as disjoint
        # after the same opening, and strictly more somewhere along a game.
        d_state = MorpionState(variant="disjoint")
        t_state = MorpionState(variant="touching")
        rng = random.Random(3)
        for _ in range(10):
            moves = d_state.legal_moves()
            move = moves[rng.randrange(len(moves))]
            d_state.apply(move)
            t_state.apply(move)
        assert len(t_state.legal_moves()) >= len(d_state.legal_moves())

    def test_max_moves_cap(self):
        state = MorpionState(line_length=4, max_moves=2)
        state.apply(state.legal_moves()[0])
        state.apply(state.legal_moves()[0])
        assert state.is_terminal()
        assert state.legal_moves() == []
        with pytest.raises(ValueError):
            state.apply(MorpionMove((0, 0), 0, (0, 0)))

    def test_copy_independent(self):
        state = MorpionState(line_length=4)
        clone = state.copy()
        clone.apply(clone.legal_moves()[0])
        assert state.moves_played() == 0
        assert clone.moves_played() == 1
        state.check_invariants()
        clone.check_invariants()

    def test_lines_drawn_and_history_lengths_match(self):
        state = MorpionState(line_length=4, max_moves=5)
        rng = random.Random(1)
        while not state.is_terminal():
            state.apply(rng.choice(state.legal_moves()))
        assert len(state.lines_drawn()) == len(state.history())
        for line in state.lines_drawn():
            assert len(line) == 4

    def test_random_game_lengths_exceed_human_intuition_floor(self):
        # A uniformly random 5D game reliably plays at least 20 moves.
        state = MorpionState()
        rng = random.Random(0)
        while not state.is_terminal():
            state.apply(rng.choice(state.legal_moves()))
        assert state.moves_played() >= 20


class TestRecords:
    def test_reference_scores(self):
        records = reference_records()
        assert records["human"] == 68
        assert records["simulated_annealing"] == 79
        assert records["parallel_nmcs_paper"] == 80
        assert RECORD_SCORES["parallel_nmcs_paper"] == 80

    def test_best_known_and_new_record(self):
        assert best_known_score() == 80
        assert is_new_record(81)
        assert not is_new_record(80)
        assert best_known_score("touching") == 0


class TestRender:
    def test_render_contains_initial_circles_and_move_numbers(self):
        state = MorpionState(line_length=4, max_moves=3)
        rng = random.Random(2)
        while not state.is_terminal():
            state.apply(rng.choice(state.legal_moves()))
        text = render_state(state)
        assert "o" in text
        assert "1" in text and "3" in text

    def test_render_empty(self):
        assert render_grid([]) == "(empty grid)"

    def test_render_sequence_validates_moves(self):
        state = MorpionState(line_length=4)
        move = state.legal_moves()[0]
        text = render_sequence(state, [move])
        assert "1" in text
        with pytest.raises(ValueError):
            render_sequence(state, [MorpionMove((99, 99), 0, (99, 99))])
