"""Regression tests for the virtual-work-time kernel rewrite.

Two contracts are pinned here:

* **Determinism / seed equivalence** — the Table II-VI scenario shapes in
  ``tests/data/kernel_golden.json`` (captured from the pre-rewrite seed
  kernel; regenerate with ``tests/data/capture_golden.py``) must come back
  with bit-identical scores and move sequences, identical work totals and
  message counts, and matching simulated times.
* **No completion-reschedule storm** — the pathological regime
  (``latency_s`` ≫ job duration, heavily oversubscribed node) completes
  under a bounded event count, and total events grow ~linearly with the
  client count instead of quadratically.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api import Engine, SearchSpec
from repro.cluster.network import NetworkModel

GOLDEN_PATH = Path(__file__).parent / "data" / "kernel_golden.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


class TestSeedEquivalence:
    """The rewrite must not change what the standard workloads compute."""

    @pytest.mark.parametrize(
        "record", GOLDEN, ids=[
            f"{r['spec'].get('workload')}-{r['spec'].get('dispatcher')}-"
            f"{r['spec'].get('cluster', 'homogeneous')}-c{r['spec'].get('n_clients')}"
            for r in GOLDEN
        ],
    )
    def test_golden_scenario(self, record):
        report = Engine().run(SearchSpec(**record["spec"]))
        assert report.score == record["score"]  # bit-identical, no tolerance
        assert [repr(move) for move in report.sequence] == record["sequence"]
        assert report.work_units == record["work_units"]
        assert len(report.raw.trace.messages) == record["n_messages"]
        # Completion instants are solved once from exact work targets instead
        # of accumulated by repeated subtraction, so timings may differ from
        # the seed kernel in the last float digits — and only there.
        assert report.simulated_seconds == pytest.approx(
            record["simulated_seconds"], rel=1e-9
        )

    def test_runs_are_bit_identical(self):
        """Two runs of one scenario produce exactly equal traces."""
        spec = SearchSpec(
            workload="leftmove", backend="sim-cluster", dispatcher="lm",
            n_clients=4, n_medians=4,
        )
        first = Engine().run(spec).raw
        second = Engine().run(spec).raw
        assert first.trace.messages == second.trace.messages
        assert first.trace.computes == second.trace.computes
        assert first.simulated_seconds == second.simulated_seconds


class TestPathologicalRegime:
    """latency_s=0.5 with a 64-client oversubscribed node must stay cheap."""

    @staticmethod
    def run_stress(n_clients: int):
        engine = Engine(network=NetworkModel(latency_s=0.5))
        spec = SearchSpec(
            workload="leftmove", backend="sim-cluster", dispatcher="lm",
            cluster="single", n_clients=n_clients, n_medians=8, max_steps=1,
        )
        return engine.run(spec)

    def test_bounded_event_count(self):
        report = self.run_stress(64)
        stats = report.kernel_stats
        assert stats is not None
        # The seed kernel did not finish this scenario within 10 minutes of
        # wall time; the virtual-work-time kernel needs a few thousand events.
        assert stats["events_fired"] < 20_000
        assert stats["events_cancelled"] < stats["events_fired"]
        assert report.score > 0.0

    def test_events_grow_linearly_with_clients(self):
        small = self.run_stress(8).kernel_stats["events_fired"]
        large = self.run_stress(64).kernel_stats["events_fired"]
        # 8x the clients: linear growth allows 8x the events; quadratic would
        # be 64x.  The observed ratio is ~1.1 (the fixed protocol dominates).
        assert large <= 8 * small

    def test_stats_surface_everywhere(self):
        report = self.run_stress(8)
        run = report.raw
        assert run.kernel_stats is not None
        assert run.trace.kernel_stats is not None
        assert run.kernel_stats.events_fired == report.kernel_stats["events_fired"]
        assert report.to_dict()["kernel_stats"]["events_fired"] > 0
        assert report.kernel_stats["wall_seconds"] >= 0.0
        assert report.kernel_stats["wall_seconds_per_simulated_second"] is not None
