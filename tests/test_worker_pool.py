"""Tests for the compact wire protocol and the persistent worker pool."""

from __future__ import annotations

import random

import pytest

from repro.core.nested import candidate_evaluations, evaluate_move
from repro.games.base import decode_state, wire_kinds
from repro.games.morpion.state import MorpionState
from repro.games.samegame import SameGameState
from repro.games.tsp import TSPInstance, TSPState
from repro.games.weakschur import WeakSchurState
from repro.parallel.jobs import DirectJobExecutor, PooledJobExecutor
from repro.parallel.pool import PersistentWorkerPool, close_shared_pool, shared_pool
from repro.prng import SeedSequence
from repro.workloads import get_workload


def play_some(state, n, seed=3):
    rng = random.Random(seed)
    for _ in range(n):
        legal = state.legal_moves()
        if not legal:
            break
        state.apply(legal[rng.randrange(len(legal))])
    return state


class TestWireProtocol:
    def test_registered_kinds(self):
        assert {"samegame", "morpion", "tsp"} <= set(wire_kinds())

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: SameGameState.random(6, 6, 3, seed=5),
            lambda: MorpionState(line_length=4),
            lambda: TSPState(TSPInstance.random(10, seed=2), neighbourhood=4),
        ],
        ids=["samegame", "morpion", "tsp"],
    )
    def test_round_trip_mid_game(self, factory):
        state = play_some(factory(), 4)
        decoded = decode_state(state.encode())
        assert type(decoded) is type(state)
        assert decoded.legal_moves() == state.legal_moves()
        assert decoded.score() == state.score()
        assert decoded.moves_played() == state.moves_played()

    def test_compact_frames_beat_pickle(self):
        import pickle

        state = TSPState(TSPInstance.random(24, seed=11), neighbourhood=8)
        assert len(state.encode()) < len(pickle.dumps(state.instance.distances))

    def test_pickle_fallback_for_unregistered_games(self):
        state = play_some(WeakSchurState(k=3, limit=12), 3)
        blob = state.encode()
        assert blob.startswith(b"pickle\x00")
        decoded = decode_state(blob)
        assert decoded.legal_moves() == state.legal_moves()
        assert decoded.score() == state.score()

    def test_decode_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            decode_state(b"no-such-kind\x00payload")


class TestPersistentWorkerPool:
    @pytest.fixture(scope="class")
    def pool(self):
        with PersistentWorkerPool(n_workers=2) as pool:
            yield pool

    def test_matches_in_process_evaluations(self, pool):
        state = get_workload("morpion-bench").state()
        seeds = SeedSequence(11, "nmcs")
        evaluations = candidate_evaluations(state, 1, 0, seeds)[:6]
        outcomes = pool.evaluate_candidates(state, evaluations, 0)
        assert [o[0] for o in outcomes] == [i for i, _, _ in evaluations]
        for (index, move, child_seeds), (_, score, sequence, work) in zip(
            evaluations, outcomes
        ):
            reference = evaluate_move(state, move, 0, child_seeds)
            assert score == reference.score
            assert sequence == tuple(reference.sequence)
            assert work == float(reference.work.moves)

    def test_pool_survives_multiple_batches_and_games(self, pool):
        for name in ("samegame", "tsp", "morpion-small"):
            state = get_workload(name).state()
            seeds = SeedSequence(7, "nmcs")
            evaluations = candidate_evaluations(state, 1, 0, seeds)[:3]
            outcomes = pool.evaluate_candidates(state, evaluations, 0)
            assert len(outcomes) == len(evaluations)
        assert pool.alive
        assert pool.jobs_executed >= 9

    def test_pickle_fallback_games_work_on_the_pool(self, pool):
        state = WeakSchurState(k=3, limit=12)
        seeds = SeedSequence(5, "nmcs")
        evaluations = candidate_evaluations(state, 1, 0, seeds)
        outcomes = pool.evaluate_candidates(state, evaluations, 0)
        for (index, move, child_seeds), (_, score, sequence, _) in zip(
            evaluations, outcomes
        ):
            reference = evaluate_move(state, move, 0, child_seeds)
            assert (score, sequence) == (reference.score, tuple(reference.sequence))

    def test_run_search_matches_direct_executor(self, pool):
        state = get_workload("morpion-small").state()
        seeds = SeedSequence(13, "job", 4)
        direct = DirectJobExecutor().execute(state, 1, seeds)
        pooled = PooledJobExecutor(pool=pool).execute(state, 1, seeds)
        assert pooled.score == direct.score
        assert tuple(pooled.sequence) == tuple(direct.sequence)
        assert pooled.work_units == direct.work_units

    def test_closed_pool_rejects_work(self):
        pool = PersistentWorkerPool(n_workers=1)
        pool.close()
        with pytest.raises(RuntimeError):
            pool.evaluate_candidates(
                get_workload("samegame").state(),
                [(0, (0, 0), SeedSequence(0))],
                0,
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            PersistentWorkerPool(n_workers=0)


class TestSharedPool:
    def test_singleton_reuse_and_resize(self):
        try:
            a = shared_pool(2)
            b = shared_pool(2)
            assert a is b
            c = shared_pool(1)
            assert c is not a
            assert not a.alive
            assert c.n_workers == 1
        finally:
            close_shared_pool()
