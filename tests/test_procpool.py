"""Tests for the process-parallel sweep substrate (repro.lab.procpool).

The contract under test: ``Engine.stream(..., executor="process")`` behaves
*exactly* like the inline/thread paths — same started/cached/completed/failed
event stream, same done/total progress, same error policies, same
cooperative cancellation, same store records — while the cells actually
execute in worker processes.

Worker processes are forked when a pool is created, so tests that register
test-only algorithms call ``close_shared_sweep_pool()`` first: the pool the
engine then creates forks *after* the registration and inherits it.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path

import pytest

from repro import obs
from repro.api import ALGORITHMS, Engine, SearchSpec, register_algorithm
from repro.cluster.network import NetworkModel
from repro.core.sample import sample
from repro.lab import ResultStore, SweepSpec
from repro.lab.procpool import (
    RemoteCellError,
    SweepWorkerPool,
    auto_chunk_size,
    close_shared_sweep_pool,
    shared_sweep_pool,
)
from repro.obs.metrics import MetricsRegistry


GRID = SweepSpec(
    base=SearchSpec(workload="leftmove", backend="sim-cluster", level=2, max_steps=1),
    axes={"workload": ("leftmove", "sop"), "dispatcher": ("rr", "lm")},
    name="procpool-grid",
)


def _events(stream):
    return list(stream)


def _kinds(events):
    return [event.kind for event in events]


class TestAutoChunkSize:
    def test_small_batches_get_single_cell_chunks(self):
        assert auto_chunk_size(1, 4) == 1
        assert auto_chunk_size(8, 4) == 1  # fewer cells than 4 chunks/worker

    def test_large_batches_amortise_but_stay_bounded(self):
        assert auto_chunk_size(80, 4) == 5
        assert auto_chunk_size(100_000, 4) == 16  # capped

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            auto_chunk_size(0, 4)
        with pytest.raises(ValueError):
            auto_chunk_size(4, 0)


class TestValidation:
    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            _events(Engine().stream([GRID.base], executor="fibers"))

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError, match="chunk_size"):
            _events(Engine().stream([GRID.base], executor="process", chunk_size=0))

    def test_custom_job_executor_cannot_cross_processes(self):
        from repro.parallel.jobs import CachingJobExecutor

        engine = Engine(executor=CachingJobExecutor())
        with pytest.raises(ValueError, match="JobExecutor"):
            _events(engine.stream([GRID.base], executor="process"))

    def test_pool_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError, match="n_workers"):
            SweepWorkerPool(n_workers=0)


class TestDeterminism:
    def test_process_sweep_matches_serial_store_records(self, tmp_path):
        """Same seeded grid, serial vs process workers: identical keys, scores,
        sequences, work and simulated time per key."""
        serial_store = ResultStore(tmp_path / "serial")
        proc_store = ResultStore(tmp_path / "proc")
        Engine().run_many(GRID, store=serial_store)
        Engine().run_many(
            GRID, store=proc_store, executor="process", max_workers=2, chunk_size=1
        )
        assert sorted(serial_store.keys()) == sorted(proc_store.keys())
        serial_records = {r["key"]: r for r in serial_store.records()}
        for record in proc_store.records():
            twin = serial_records[record["key"]]["report"]
            report = record["report"]
            assert report["score"] == twin["score"]
            assert report["sequence"] == twin["sequence"]
            assert report["work_units"] == twin["work_units"]
            assert report["simulated_seconds"] == twin["simulated_seconds"]

    def test_engine_network_model_ships_to_workers(self, tmp_path):
        network = NetworkModel(latency_s=0.01)
        spec = GRID.base.replace(n_clients=2)
        serial = Engine(network=network).run(spec)
        (proc,) = Engine(network=network).run_many(
            [spec], executor="process", max_workers=2
        )
        assert proc.score == serial.score
        assert proc.simulated_seconds == serial.simulated_seconds


class TestEventContract:
    def test_started_precedes_terminal_and_progress_counts(self):
        specs = [GRID.base.replace(seed=s, backend="sequential") for s in range(5)]
        events = _events(
            Engine().stream(specs, executor="process", max_workers=2, chunk_size=2)
        )
        assert all(event.total == 5 for event in events)
        started = [event.index for event in events if event.kind == "started"]
        terminal = [event for event in events if event.terminal]
        assert sorted(started) == list(range(5))
        assert sorted(event.index for event in terminal) == list(range(5))
        assert [event.done for event in terminal] == [1, 2, 3, 4, 5]
        for event in terminal:
            assert event.kind == "completed"
            assert event.report is not None
            # started always arrives before the cell's terminal event
            assert started.index(event.index) < len(events)
            assert events.index(event) > events.index(
                next(e for e in events if e.kind == "started" and e.index == event.index)
            )

    def test_cache_hits_short_circuit_in_parent(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        engine = Engine()
        engine.run_many(GRID, store=store, executor="process", max_workers=2)
        pool = shared_sweep_pool(2)
        dispatched_before = pool.cells_dispatched
        events = _events(
            engine.stream(GRID, store=store, executor="process", max_workers=2)
        )
        assert _kinds(events) == ["cached"] * len(GRID)
        assert [event.done for event in events] == [1, 2, 3, 4]
        # Nothing crossed the process boundary: all hits resolved in the parent.
        assert shared_sweep_pool(2).cells_dispatched == dispatched_before

    def test_refresh_forces_reexecution(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        engine = Engine()
        engine.run_many(GRID, store=store, executor="process", max_workers=2)
        events = _events(
            engine.stream(
                GRID, store=store, executor="process", max_workers=2, refresh=True
            )
        )
        assert sorted(_kinds(events)) == ["completed"] * 4 + ["started"] * 4


class TestChunking:
    def test_explicit_chunk_size_controls_ipc_rounds(self):
        specs = [GRID.base.replace(seed=s, backend="sequential") for s in range(8)]
        pool = shared_sweep_pool(2)
        chunks_before, cells_before = pool.chunks_dispatched, pool.cells_dispatched
        events = _events(
            Engine().stream(specs, executor="process", max_workers=2, chunk_size=3)
        )
        pool = shared_sweep_pool(2)
        assert pool.chunks_dispatched - chunks_before == 3  # ceil(8 / 3)
        assert pool.cells_dispatched - cells_before == 8
        # Chunked dispatch never batches *events*: one frame per cell.
        assert sorted(_kinds(events)) == ["completed"] * 8 + ["started"] * 8

    def test_auto_chunk_size_is_used_by_default(self):
        specs = [GRID.base.replace(seed=s, backend="sequential") for s in range(8)]
        pool = shared_sweep_pool(2)
        chunks_before = pool.chunks_dispatched
        Engine().run_many(specs, executor="process", max_workers=2)
        expected = auto_chunk_size(8, 2)
        assert shared_sweep_pool(2).chunks_dispatched - chunks_before == (
            (8 + expected - 1) // expected
        )


class TestErrorPolicy:
    def _specs(self):
        good = GRID.base.replace(backend="sequential")
        bad = good.replace(workload="no-such-workload")
        return [good.replace(seed=1), bad, good.replace(seed=2)]

    def test_skip_keeps_sweeping_past_a_failing_cell(self):
        events = _events(
            Engine().stream(
                self._specs(), executor="process", max_workers=2, error_policy="skip"
            )
        )
        kinds = _kinds(events)
        assert kinds.count("failed") == 1
        assert kinds.count("completed") == 2
        failed = next(event for event in events if event.kind == "failed")
        assert failed.index == 1
        assert isinstance(failed.error, RemoteCellError)
        assert "no-such-workload" in str(failed.error)
        assert max(event.done for event in events) == 3

    def test_raise_emits_failed_event_then_raises_after_draining(self):
        events = []
        with pytest.raises(RemoteCellError, match="no-such-workload"):
            for event in Engine().stream(
                self._specs(), executor="process", max_workers=2, error_policy="raise"
            ):
                events.append(event)
        assert _kinds(events).count("failed") == 1
        # The pool drained cleanly and stays usable for the next batch.
        pool = shared_sweep_pool(2)
        assert pool.alive
        reports = Engine().run_many(
            [GRID.base.replace(backend="sequential")], executor="process", max_workers=2
        )
        assert len(reports) == 1


def _register_gated_algorithm():
    @register_algorithm(
        "gated-sample",
        description="test-only: waits for a gate file before playing out",
        params=("gate_file", "start_file"),
    )
    def _gated(state, level, seeds, counter, budget, params):
        Path(params["start_file"]).touch()
        while not os.path.exists(params["gate_file"]):
            time.sleep(0.005)
        return sample(state, seeds=seeds, counter=counter)


class TestCancellationAndResume:
    def test_cancel_mid_sweep_drains_cleanly_then_store_resumes(self, tmp_path):
        """Two in-flight cells finish, the rest skip without terminal events;
        re-running the batch re-executes only the never-completed cells."""
        close_shared_sweep_pool()  # next pool forks after the registration below
        _register_gated_algorithm()
        try:
            gate = tmp_path / "gate"
            store = ResultStore(tmp_path / "store")
            specs = [
                SearchSpec(
                    workload="leftmove",
                    algorithm="gated-sample",
                    seed=s,
                    params={
                        "gate_file": str(gate),
                        "start_file": str(tmp_path / f"start-{s}"),
                    },
                )
                for s in range(6)
            ]
            # Cancel once (a) every chunk has been submitted — otherwise a
            # fast worker could trip the cancel mid-submission and legally
            # truncate the started events — and (b) two cells are provably
            # executing in workers.
            all_submitted = threading.Event()

            def cancelled():
                return all_submitted.is_set() and (
                    len(list(tmp_path.glob("start-*"))) >= 2
                )

            engine = Engine()
            pool = shared_sweep_pool(2)
            opener = threading.Thread(
                # Open the gate only after the parent propagated the cancel to
                # the pool, so no third cell can ever slip in between.
                target=lambda: (pool._cancel.wait(), gate.touch()),
                daemon=True,
            )
            opener.start()
            events = []
            for event in engine.stream(
                specs,
                store=store,
                executor="process",
                max_workers=2,
                chunk_size=1,
                cancel=cancelled,
                error_policy="skip",
            ):
                events.append(event)
                if sum(e.kind == "started" for e in events) == len(specs):
                    all_submitted.set()
            opener.join(timeout=10.0)
            assert not opener.is_alive()  # the cancel really reached the pool
            kinds = _kinds(events)
            assert kinds.count("started") == 6
            assert kinds.count("completed") == 2
            assert kinds.count("failed") == 0
            assert max(event.done for event in events) == 2  # done < total
            pool = shared_sweep_pool(2)
            assert pool.alive  # drained, not wedged

            # Resume: the two completed cells come back cached, zero re-runs.
            resumed = _events(
                engine.stream(
                    specs, store=store, executor="process", max_workers=2, chunk_size=1
                )
            )
            resumed_kinds = _kinds(resumed)
            assert resumed_kinds.count("cached") == 2
            assert resumed_kinds.count("started") == 4
            assert resumed_kinds.count("completed") == 4
            assert len(store) == 6
        finally:
            del ALGORITHMS["gated-sample"]
            close_shared_sweep_pool()  # drop workers carrying the registration


class TestObsMerge:
    def test_child_engine_runs_surface_in_parent_registry(self):
        close_shared_sweep_pool()  # fresh workers: inherited counters are zeroed
        obs.enable()
        try:
            obs.metrics.reset()
            specs = [
                GRID.base.replace(seed=s, backend="sequential") for s in range(3)
            ]
            Engine().run_many(specs, executor="process", max_workers=2)
            snapshot = obs.metrics.snapshot()
            runs = snapshot["repro_engine_runs_total"]["values"]
            # The parent never called Engine.run for these cells; the counts
            # can only have arrived through the merged child snapshots.
            assert sum(entry["value"] for entry in runs) == 3.0
            assert {entry["labels"]["backend"] for entry in runs} == {"sequential"}
            seconds = snapshot["repro_engine_run_seconds"]["values"]
            assert sum(entry["count"] for entry in seconds) == 3.0
            cells = {
                entry["labels"]["kind"]: entry["value"]
                for entry in snapshot["repro_engine_cells_total"]["values"]
            }
            assert cells["started"] == 3.0 and cells["completed"] == 3.0
        finally:
            obs.disable()
            obs.metrics.reset()
            close_shared_sweep_pool()


class TestMergeSnapshot:
    def _recording(self):
        obs.enable()
        return MetricsRegistry()

    def test_counters_add_and_unknown_families_register(self):
        try:
            child = self._recording()
            child.counter("t_jobs_total", "jobs", ("kind",)).labels(kind="a").inc(2)
            snap = child.snapshot()
        finally:
            obs.disable()
        parent = MetricsRegistry()
        parent.merge_snapshot(snap)
        parent.merge_snapshot(snap)  # deltas accumulate
        assert parent.counter("t_jobs_total", labelnames=("kind",)).value(kind="a") == 4.0

    def test_gauges_take_the_incoming_level(self):
        try:
            child = self._recording()
            child.gauge("t_depth").set(3)
            snap = child.snapshot()
            parent = MetricsRegistry()
            parent.gauge("t_depth").set(7)
        finally:
            obs.disable()
        parent.merge_snapshot(snap)
        assert parent.gauge("t_depth").value() == 3.0

    def test_histograms_merge_buckets_sum_and_count(self):
        try:
            child = self._recording()
            hist = child.histogram("t_seconds", buckets=(1.0, 5.0))
            for value in (0.5, 2.0, 9.0):
                hist.observe(value)
            snap = child.snapshot()
        finally:
            obs.disable()
        parent = MetricsRegistry()
        parent.merge_snapshot(snap)
        parent.merge_snapshot(snap)
        stats = parent.histogram("t_seconds", buckets=(1.0, 5.0)).stats()
        assert stats["count"] == 6.0
        assert stats["sum"] == pytest.approx(23.0)
        assert stats["buckets"] == {"1": 2.0, "5": 4.0, "+Inf": 6.0}

    def test_merge_lands_even_while_disabled(self):
        try:
            child = self._recording()
            child.counter("t_hits_total").inc(5)
            snap = child.snapshot()
        finally:
            obs.disable()
        parent = MetricsRegistry()
        parent.merge_snapshot(snap)  # recording is off; merge still lands
        assert parent.counter("t_hits_total").value() == 5.0

    def test_conflicting_shape_raises(self):
        try:
            child = self._recording()
            child.histogram("t_clash_seconds", buckets=(1.0,)).observe(0.5)
            snap = child.snapshot()
        finally:
            obs.disable()
        parent = MetricsRegistry()
        parent.histogram("t_clash_seconds", buckets=(2.0,))
        with pytest.raises(ValueError, match="different shape"):
            parent.merge_snapshot(snap)

    def test_unknown_type_raises(self):
        with pytest.raises(ValueError, match="unknown type"):
            MetricsRegistry().merge_snapshot({"t_bogus": {"type": "summary"}})


class TestPoolLifecycle:
    def test_shared_pool_recreated_on_size_change_and_death(self):
        first = shared_sweep_pool(2)
        assert shared_sweep_pool(2) is first
        second = shared_sweep_pool(1)
        assert second is not first and second.n_workers == 1
        assert not first.alive
        close_shared_sweep_pool()
        assert not second.alive

    def test_closed_pool_rejects_batches(self):
        pool = SweepWorkerPool(n_workers=1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.begin_batch()
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit_chunk(1, [], False, None)

    def test_context_manager_runs_one_batch(self):
        spec = GRID.base.replace(backend="sequential")
        with SweepWorkerPool(n_workers=1) as pool:
            batch = pool.begin_batch()
            try:
                pool.submit_chunk(batch, [(0, spec.to_dict())], False, None)
                frames = []
                while len(frames) < 2:  # one cell frame + one chunk frame
                    frame = pool.next_frame(batch)
                    if frame is not None:
                        frames.append(frame)
            finally:
                pool.end_batch()
        cell = next(frame for frame in frames if frame[0] == "cell")
        assert cell[3] == "ok"
        assert cell[4]["spec"]["workload"] == spec.workload
