"""Capture seeded playout goldens for the game-kernel fast-path rewrite.

Run from the repository root (``PYTHONPATH=src python tests/data/capture_playout_golden.py``)
against a **known-good** implementation of the game kernels; the output
``tests/data/playout_golden.json`` pins, for every workload of the default
profiling roster, the exact move sequence and score of a handful of seeded
random playouts.  ``tests/test_playout_golden.py`` replays these and demands
bit-identical behaviour, which is what allows the kernels to be rewritten for
speed (flat bytearray boards, incremental caches, specialised playout loops)
without any risk of silently changing what the searches compute.

The seed derivation matches the profiler's per-playout scheme: playout ``i``
of game ``g`` draws from ``SeedSequence(master, "golden", g).child("playout", i)``,
so the goldens are placement- and order-independent.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.counters import WorkCounter
from repro.games.base import playout_from
from repro.prng import SeedSequence

MASTER_SEED = 0
PLAYOUTS_PER_GAME = 6

#: The profiler's default roster (kept literal so the capture is stable even
#: if the roster changes later).
GAMES = (
    "morpion-bench",
    "morpion-small",
    "morpion-5d",
    "samegame",
    "tsp",
    "sop",
    "weakschur",
    "leftmove",
)


def capture() -> dict:
    from repro.workloads import get_workload

    games = {}
    for name in GAMES:
        workload = get_workload(name)
        seeds = SeedSequence(MASTER_SEED, "golden", name)
        playouts = []
        for i in range(PLAYOUTS_PER_GAME):
            state = workload.state()
            initial_legal = [repr(m) for m in state.legal_moves()]
            counter = WorkCounter()
            score, moves = playout_from(state, seeds.child("playout", i).rng(), counter)
            playouts.append(
                {
                    "seed_path": ["golden", name, "playout", i],
                    "initial_legal_moves": initial_legal,
                    "moves": [repr(m) for m in moves],
                    "score": score,
                    "work_units": counter.moves,
                    "final_moves_played": state.moves_played(),
                }
            )
        games[name] = playouts
    return {
        "schema": "repro.tests.playout_golden.v1",
        "master_seed": MASTER_SEED,
        "playouts_per_game": PLAYOUTS_PER_GAME,
        "games": games,
    }


if __name__ == "__main__":
    out = Path(__file__).parent / "playout_golden.json"
    document = capture()
    out.write_text(json.dumps(document, indent=1) + "\n", encoding="utf-8")
    total = sum(len(v) for v in document["games"].values())
    print(f"captured {total} playouts over {len(document['games'])} games -> {out}")
