"""Capture golden kernel results for the virtual-work-time regression test.

Run once against a kernel revision considered correct::

    PYTHONPATH=src python tests/data/capture_golden.py

and commit the resulting ``kernel_golden.json``.  The scenarios cover the
Table II-VI shapes (RR/LM x first-move/rollout x homogeneous/heterogeneous)
at test scale; ``tests/test_kernel_regression.py`` replays them and requires
bit-identical scores/sequences and matching work totals.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.api import Engine, SearchSpec

SCENARIOS = [
    # Table II: RR first move, client sweep.
    {"workload": "morpion-small", "backend": "sim-cluster", "dispatcher": "rr",
     "max_steps": 1, "n_clients": 4, "n_medians": 8},
    {"workload": "morpion-small", "backend": "sim-cluster", "dispatcher": "rr",
     "max_steps": 1, "n_clients": 8, "n_medians": 8},
    # Table III: RR rollout.
    {"workload": "leftmove", "backend": "sim-cluster", "dispatcher": "rr",
     "n_clients": 4, "n_medians": 4},
    # Table IV: LM first move.
    {"workload": "morpion-small", "backend": "sim-cluster", "dispatcher": "lm",
     "max_steps": 1, "n_clients": 8, "n_medians": 8},
    # Table V: LM rollout.
    {"workload": "leftmove", "backend": "sim-cluster", "dispatcher": "lm",
     "n_clients": 4, "n_medians": 4},
    # Table VI: heterogeneous oversubscribed clusters, both dispatchers.
    {"workload": "morpion-small", "backend": "sim-cluster", "dispatcher": "rr",
     "max_steps": 1, "cluster": "heterogeneous:2x4+2x2", "n_clients": 12, "n_medians": 8},
    {"workload": "morpion-small", "backend": "sim-cluster", "dispatcher": "lm",
     "max_steps": 1, "cluster": "heterogeneous:2x4+2x2", "n_clients": 12, "n_medians": 8},
]


def main() -> None:
    engine = Engine()
    records = []
    for overrides in SCENARIOS:
        spec = SearchSpec(**overrides)
        report = engine.run(spec)
        records.append(
            {
                "spec": overrides,
                "score": report.score,
                "sequence": [repr(move) for move in report.sequence],
                "work_units": report.work_units,
                "simulated_seconds": report.simulated_seconds,
                "n_messages": len(report.raw.trace.messages),
            }
        )
        print(f"{overrides}: score={report.score} sim={report.simulated_seconds:.6f}")
    out = Path(__file__).parent / "kernel_golden.json"
    out.write_text(json.dumps(records, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out} ({len(records)} scenarios)")


if __name__ == "__main__":
    main()
