"""Tests of :mod:`repro.obs`: metrics registry, spans, profiler, exposition.

The obs switch is process-global, so every test that records goes through
the ``recording`` fixture, which restores the previous state afterwards —
the rest of the suite keeps running with observability off, exactly like
production defaults.
"""

import json
import threading

import pytest

from repro import obs
from repro.api import Engine, RunReport, SearchSpec
from repro.cluster.simulator import KernelStats
from repro.lab import ResultStore
from repro.obs import metrics as registry
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import (
    SCHEMA,
    append_trajectory_entry,
    format_cost_table,
    profile_games,
)
from repro.obs.tracing import current_span, export_spans_to, span, stop_export


@pytest.fixture
def recording():
    """Observability on for the test, restored (and reset) afterwards."""
    was_enabled = obs.enabled()
    obs.enable()
    try:
        yield
    finally:
        if not was_enabled:
            obs.disable()
        stop_export()


class TestMetricsRegistry:
    def test_counter_counts(self, recording):
        reg = MetricsRegistry()
        hits = reg.counter("t_hits_total", "help text")
        hits.inc()
        hits.inc(2.5)
        assert hits.value() == 3.5

    def test_counter_rejects_negative(self, recording):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="only go up"):
            reg.counter("t_neg_total").inc(-1)

    def test_labelled_series_are_independent(self, recording):
        reg = MetricsRegistry()
        cells = reg.counter("t_cells_total", labelnames=("kind",))
        cells.labels(kind="cached").inc()
        cells.labels(kind="completed").inc(4)
        assert cells.value(kind="cached") == 1
        assert cells.value(kind="completed") == 4
        with pytest.raises(ValueError, match="declares labels"):
            cells.inc()
        with pytest.raises(ValueError, match="declares labels"):
            cells.labels(wrong="x")

    def test_reregistration_is_idempotent_but_shape_conflicts_raise(self):
        reg = MetricsRegistry()
        first = reg.counter("t_dup_total", "help")
        assert reg.counter("t_dup_total") is first
        with pytest.raises(ValueError, match="different shape"):
            reg.gauge("t_dup_total")
        with pytest.raises(ValueError, match="different shape"):
            reg.counter("t_dup_total", labelnames=("extra",))

    def test_gauge_goes_both_ways(self, recording):
        reg = MetricsRegistry()
        depth = reg.gauge("t_depth")
        depth.set(5)
        depth.inc()
        depth.dec(2)
        assert depth.value() == 4

    def test_histogram_bucket_edges_are_upper_inclusive(self, recording):
        reg = MetricsRegistry()
        lat = reg.histogram("t_lat_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.1, 0.5, 1.0, 10.0, 11.0):
            lat.observe(value)
        stats = lat.stats()
        # Cumulative `le` counts: a value equal to a boundary lands in it.
        assert stats["buckets"] == {"0.1": 2, "1": 4, "10": 5, "+Inf": 6}
        assert stats["count"] == 6
        assert stats["sum"] == pytest.approx(22.65)

    def test_histogram_rejects_bad_buckets(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="at least one"):
            reg.histogram("t_empty_seconds", buckets=())
        with pytest.raises(ValueError, match="strictly increasing"):
            reg.histogram("t_bad_seconds", buckets=(1.0, 1.0, 2.0))

    def test_concurrent_counter_increments_are_exact(self, recording):
        reg = MetricsRegistry()
        total = reg.counter("t_race_total")
        n_threads, per_thread = 8, 10_000

        def hammer():
            for _ in range(per_thread):
                total.inc()

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert total.value() == n_threads * per_thread

    def test_snapshot_is_json_ready(self, recording):
        reg = MetricsRegistry()
        reg.counter("t_a_total", "a help", labelnames=("k",)).labels(k="x").inc()
        reg.histogram("t_b_seconds", buckets=(1.0,)).observe(0.5)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["t_a_total"]["type"] == "counter"
        assert snap["t_a_total"]["values"] == [{"labels": {"k": "x"}, "value": 1.0}]
        assert snap["t_b_seconds"]["buckets"] == [1.0]
        assert snap["t_b_seconds"]["values"][0]["buckets"] == {"1": 1.0, "+Inf": 1.0}

    def test_prometheus_rendering(self, recording):
        reg = MetricsRegistry()
        reg.counter("t_hits_total", "hits help").inc(3)
        reg.histogram("t_lat_seconds", buckets=(0.1, 1.0)).observe(0.05)
        text = reg.render_prometheus()
        assert "# HELP t_hits_total hits help" in text
        assert "# TYPE t_hits_total counter" in text
        assert "t_hits_total 3" in text  # integers render without a trailing .0
        assert "# TYPE t_lat_seconds histogram" in text
        assert 't_lat_seconds_bucket{le="0.1"} 1' in text
        assert 't_lat_seconds_bucket{le="+Inf"} 1' in text
        assert "t_lat_seconds_count 1" in text

    def test_reset_zeroes_but_keeps_handles_valid(self, recording):
        reg = MetricsRegistry()
        hits = reg.counter("t_hits_total")
        hits.inc(7)
        reg.reset()
        assert hits.value() == 0
        hits.inc()
        assert hits.value() == 1

    def test_default_registry_is_shared(self):
        assert obs.get_registry() is registry
        assert obs.metrics is registry


@pytest.fixture
def not_recording():
    """Observability forced off for the test, restored afterwards."""
    was_enabled = obs.enabled()
    obs.disable()
    try:
        yield
    finally:
        if was_enabled:
            obs.enable()


class TestDisabledIsFree:
    def test_disabled_mutations_record_nothing(self, not_recording):
        reg = MetricsRegistry()
        counter = reg.counter("t_off_total")
        counter.inc()
        reg.gauge("t_off_depth").set(9)
        reg.histogram("t_off_seconds").observe(1.0)
        assert counter.value() == 0
        assert reg.snapshot()["t_off_total"]["values"] == []

    def test_disabled_spans_are_one_shared_noop(self, not_recording):
        first, second = span("a", key=1), span("b")
        assert first is second  # the singleton: no allocation per call
        with first as active:
            active.set(anything="goes")
            assert active.summary()["children"] == {}
            assert active.summary()["duration_s"] == 0.0


class TestTracing:
    def test_span_nesting_folds_into_the_root(self, recording):
        with span("root", game="x") as root:
            assert current_span() is root
            with span("inner"):
                with span("leaf"):
                    pass
            with span("inner"):
                pass
        summary = root.summary()
        assert summary["name"] == "root"
        assert summary["attrs"] == {"game": "x"}
        assert summary["duration_s"] >= 0
        assert summary["children"]["inner"]["count"] == 2
        assert summary["children"]["leaf"]["count"] == 1
        assert current_span() is None

    def test_jsonl_export(self, recording, tmp_path):
        path = tmp_path / "spans.jsonl"
        export_spans_to(path)
        with span("outer"):
            with span("inner"):
                pass
        stop_export()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [entry["name"] for entry in lines] == ["inner", "outer"]
        assert all(entry["duration_s"] >= 0 for entry in lines)

    def test_threads_have_independent_span_stacks(self, recording):
        seen = {}

        def worker():
            with span("worker-root") as s:
                seen["inner"] = current_span() is s
            seen["after"] = current_span()

        with span("main-root") as main_root:
            t = threading.Thread(target=worker)
            t.start()
            t.join()
            assert current_span() is main_root
        assert seen == {"inner": True, "after": None}


class TestKernelStatsRoundTrip:
    def test_exact_round_trip(self):
        stats = KernelStats(
            events_fired=35355,
            events_scheduled=40000,
            events_cancelled=12,
            peak_queue_size=96,
            compactions=3,
            simulated_seconds=123.5,
            wall_seconds=0.75,
        )
        assert KernelStats.from_dict(stats.to_dict()) == stats

    def test_from_dict_tolerates_missing_and_derived_keys(self):
        rebuilt = KernelStats.from_dict({"events_fired": 5, "wall_seconds_per_simulated_second": 9.9})
        assert rebuilt.events_fired == 5
        assert rebuilt.simulated_seconds == 0.0


class TestBuiltInInstrumentation:
    def test_store_hits_and_misses_move_the_counters(self, recording, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = SearchSpec(workload="leftmove", max_steps=1)
        hits = registry.get("repro_store_hits_total")
        misses = registry.get("repro_store_misses_total")
        writes = registry.get("repro_store_writes_total")
        h0, m0, w0 = hits.value(), misses.value(), writes.value()
        assert store.get(spec) is None
        report = Engine().run(spec)
        store.put(spec, report)
        assert store.get(spec) is not None
        assert misses.value() == m0 + 1
        assert writes.value() == w0 + 1
        assert hits.value() == h0 + 1

    def test_engine_run_attaches_telemetry_when_enabled(self, recording):
        report = Engine().run(SearchSpec(workload="leftmove", max_steps=1))
        assert report.telemetry is not None
        assert report.telemetry["name"] == "engine.run"
        assert report.telemetry["attrs"]["workload"] == "leftmove"
        wire = RunReport.from_dict(report.to_dict())
        assert wire.telemetry == report.telemetry

    def test_engine_run_telemetry_none_when_disabled(self, not_recording):
        report = Engine().run(SearchSpec(workload="leftmove", max_steps=1))
        assert report.telemetry is None
        # Old wire records (no telemetry key) still decode.
        data = report.to_dict()
        data.pop("telemetry")
        assert RunReport.from_dict(data).telemetry is None

    def test_kernel_counters_move_on_a_sim_run(self, recording):
        events = registry.get("repro_kernel_events_fired_total")
        e0 = events.value()
        Engine().run(
            SearchSpec(
                workload="leftmove", backend="sim-cluster", n_clients=2, max_steps=1
            )
        )
        assert events.value() > e0


class TestProfiler:
    def test_document_schema_and_trajectory(self, tmp_path, not_recording):
        document = profile_games(["leftmove"], playouts=3, top=3)
        assert document["schema"] == SCHEMA
        assert document["playouts_per_game"] == 3
        game = document["games"]["leftmove"]
        assert game["playouts"] == 3
        assert game["work_units"] > 0
        assert game["units_per_second"] > 0
        assert game["implied_units_per_ghz"] == pytest.approx(
            game["units_per_second"] / 1.86
        )
        assert game["hotspots"] and "cumtime" in game["hotspots"][0]
        assert game["span_summary"]["children"]["playout"]["count"] == 3
        assert not obs.enabled()  # profiling must not leave obs switched on

        path = tmp_path / "BENCH_rollout_hotpath.json"
        append_trajectory_entry(path, document)
        append_trajectory_entry(path, document)
        history = json.loads(path.read_text())
        assert isinstance(history, list) and len(history) == 2

        table = format_cost_table(document)
        assert "leftmove" in table and "units/GHz" in table

    def test_trajectory_rejects_non_array_files(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(ValueError, match="JSON-array"):
            append_trajectory_entry(path, {"schema": SCHEMA})


class TestServiceMetricsVerb:
    @pytest.fixture(params=["tcp", "unix"])
    def address(self, request, tmp_path, recording):
        from repro.service import SearchService, ServiceServer

        service = SearchService(store=ResultStore(tmp_path / "store"))
        if request.param == "unix":
            server = ServiceServer(service, socket_path=str(tmp_path / "svc.sock"))
        else:
            server = ServiceServer(service, port=0)
        address = server.start()
        try:
            yield address
        finally:
            service.shutdown(drain=False, timeout=5)
            server.stop()

    def test_metrics_verb_json_and_prometheus(self, address):
        from repro.service import ServiceClient, ServiceError

        client = ServiceClient(address)
        client.run({"workload": "leftmove", "max_steps": 1})

        payload = client.metrics()
        assert payload["service"]["submitted"] == 1
        jobs = payload["metrics"]["repro_service_jobs_finished_total"]
        finished = {
            tuple(sorted(entry["labels"].items())): entry["value"]
            for entry in jobs["values"]
        }
        assert finished[(("client", "anon"), ("state", "completed"))] >= 1

        text = client.metrics(format="prometheus")["text"]
        assert "# TYPE repro_service_jobs_finished_total counter" in text
        assert "# TYPE repro_service_queue_wait_seconds histogram" in text

        with pytest.raises(ServiceError, match="unknown metrics format"):
            client.metrics(format="xml")

    def test_job_snapshot_reports_wait_and_wall(self, address):
        from repro.service import ServiceClient

        client = ServiceClient(address)
        outcome = client.run({"workload": "leftmove", "max_steps": 1})
        job = outcome["job"]
        assert job["queue_wait_seconds"] >= 0.0
        assert job["wall_seconds"] >= 0.0
