"""Tests for the TSP rollout domain (repro.games.tsp)."""

from __future__ import annotations

import math

import pytest

from repro.games.tsp import TSPInstance, TSPState


class TestInstance:
    def test_from_coords_distances(self):
        inst = TSPInstance.from_coords([(0, 0), (3, 4)])
        assert inst.n_cities == 2
        assert inst.distances[0, 1] == pytest.approx(5.0)
        assert inst.distances[1, 0] == pytest.approx(5.0)
        assert inst.distances[0, 0] == 0.0

    def test_random_reproducible(self):
        a = TSPInstance.random(10, seed=4)
        b = TSPInstance.random(10, seed=4)
        assert a.coords == b.coords

    def test_needs_two_cities(self):
        with pytest.raises(ValueError):
            TSPInstance.from_coords([(0, 0)])

    def test_tour_length_square(self):
        inst = TSPInstance.from_coords([(0, 0), (1, 0), (1, 1), (0, 1)])
        assert inst.tour_length([0, 1, 2, 3]) == pytest.approx(4.0)

    def test_tour_length_requires_permutation(self):
        inst = TSPInstance.random(5, seed=0)
        with pytest.raises(ValueError):
            inst.tour_length([0, 1, 2])

    def test_nearest_neighbour_is_valid_tour(self):
        inst = TSPInstance.random(12, seed=5)
        tour = inst.nearest_neighbour_tour()
        assert sorted(tour) == list(range(12))


class TestState:
    def test_initial_state(self):
        state = TSPState(TSPInstance.random(6, seed=1))
        assert state.tour() == [0]
        assert sorted(state.legal_moves()) == [1, 2, 3, 4, 5]

    def test_apply_accumulates_length(self):
        inst = TSPInstance.from_coords([(0, 0), (1, 0), (2, 0)])
        state = TSPState(inst)
        state.apply(1)
        assert state.tour_length() == pytest.approx(1.0)
        state.apply(2)
        # complete tour: closing edge back to city 0 is included in the score
        assert state.is_terminal()
        assert -state.score() == pytest.approx(1.0 + 1.0 + 2.0)

    def test_illegal_moves(self):
        state = TSPState(TSPInstance.random(4, seed=2))
        state.apply(1)
        with pytest.raises(ValueError):
            state.apply(1)  # already visited
        with pytest.raises(ValueError):
            state.apply(9)  # out of range

    def test_neighbourhood_restriction(self):
        inst = TSPInstance.from_coords([(0, 0), (1, 0), (2, 0), (50, 0), (60, 0)])
        state = TSPState(inst, neighbourhood=2)
        assert state.legal_moves() == [1, 2]

    def test_neighbourhood_must_be_positive(self):
        with pytest.raises(ValueError):
            TSPState(TSPInstance.random(4, seed=0), neighbourhood=0)

    def test_heuristic_moves_sorted_by_distance(self):
        inst = TSPInstance.from_coords([(0, 0), (5, 0), (1, 0), (3, 0)])
        state = TSPState(inst)
        assert state.heuristic_moves() == [2, 3, 1]

    def test_copy_independent(self):
        state = TSPState(TSPInstance.random(5, seed=3))
        clone = state.copy()
        clone.apply(1)
        assert state.tour() == [0]
        assert clone.tour() == [0, 1]

    def test_score_matches_instance_tour_length(self):
        inst = TSPInstance.random(8, seed=7)
        state = TSPState(inst)
        order = [1, 2, 3, 4, 5, 6, 7]
        for city in order:
            state.apply(city)
        assert -state.score() == pytest.approx(inst.tour_length([0] + order))
