"""Tests for the discrete-event kernel: processes, messaging, computing, sharing."""

from __future__ import annotations

import pytest

from repro.cluster.network import NetworkModel
from repro.cluster.node import NodeSpec
from repro.cluster.process import ANY_SOURCE, ANY_TAG, Mailbox, Message, ProcessState, Recv
from repro.cluster.simulator import Kernel, SimulationError
from repro.timemodel.cost import CostModel


def make_kernel(cores: int = 2, freq: float = 1.0, units_per_ghz: float = 1.0, **kw) -> Kernel:
    kernel = Kernel(cost_model=CostModel(units_per_ghz_per_second=units_per_ghz), **kw)
    kernel.add_node(NodeSpec(name="n0", freq_ghz=freq, cores=cores))
    return kernel


class TestProcessLifecycle:
    def test_process_return_value_captured(self):
        kernel = make_kernel()

        def proc(ctx):
            yield ctx.sleep(1.0)
            return "done"

        kernel.spawn("p", "n0", proc)
        kernel.run()
        assert kernel.process("p").return_value == "done"
        assert kernel.process("p").state is ProcessState.FINISHED
        assert kernel.now == pytest.approx(1.0)

    def test_failing_process_raises_simulation_error(self):
        kernel = make_kernel()

        def bad(ctx):
            yield ctx.sleep(0.0)
            raise RuntimeError("boom")

        kernel.spawn("bad", "n0", bad)
        with pytest.raises(SimulationError):
            kernel.run()
        assert "bad" in kernel.failed_processes()

    def test_yielding_garbage_is_an_error(self):
        kernel = make_kernel()

        def bad(ctx):
            yield "not a syscall"

        kernel.spawn("bad", "n0", bad)
        with pytest.raises(SimulationError):
            kernel.run()

    def test_duplicate_names_rejected(self):
        kernel = make_kernel()

        def proc(ctx):
            yield ctx.sleep(0.0)

        kernel.spawn("p", "n0", proc)
        with pytest.raises(ValueError):
            kernel.spawn("p", "n0", proc)
        with pytest.raises(ValueError):
            kernel.spawn("q", "missing-node", proc)

    def test_non_generator_function_rejected(self):
        kernel = make_kernel()
        with pytest.raises(TypeError):
            kernel.spawn("p", "n0", lambda ctx: 42)


class TestMessaging:
    def test_send_recv_roundtrip(self):
        kernel = make_kernel(network=NetworkModel(latency_s=0.5, send_overhead_s=0.0))
        received = {}

        def sender(ctx):
            yield ctx.send("receiver", {"x": 1}, tag=7)

        def receiver(ctx):
            message = yield ctx.recv(source="sender", tag=7)
            received["msg"] = message

        kernel.spawn("receiver", "n0", receiver)
        kernel.spawn("sender", "n0", sender)
        kernel.run()
        assert received["msg"].payload == {"x": 1}
        assert received["msg"].source == "sender"
        assert received["msg"].received_at == pytest.approx(0.5, abs=1e-4)

    def test_messages_from_same_sender_arrive_in_order(self):
        kernel = make_kernel(network=NetworkModel(latency_s=0.1, send_overhead_s=0.0))
        order = []

        def sender(ctx):
            for i in range(5):
                yield ctx.send("receiver", i)

        def receiver(ctx):
            for _ in range(5):
                message = yield ctx.recv()
                order.append(message.payload)

        kernel.spawn("receiver", "n0", receiver)
        kernel.spawn("sender", "n0", sender)
        kernel.run()
        assert order == [0, 1, 2, 3, 4]

    def test_recv_filters_by_tag(self):
        kernel = make_kernel()
        got = []

        def sender(ctx):
            yield ctx.send("receiver", "a", tag=1)
            yield ctx.send("receiver", "b", tag=2)

        def receiver(ctx):
            msg = yield ctx.recv(tag=2)
            got.append(msg.payload)
            msg = yield ctx.recv(tag=1)
            got.append(msg.payload)

        kernel.spawn("receiver", "n0", receiver)
        kernel.spawn("sender", "n0", sender)
        kernel.run()
        assert got == ["b", "a"]

    def test_send_to_unknown_process_is_an_error(self):
        kernel = make_kernel()

        def sender(ctx):
            yield ctx.send("ghost", 1)

        kernel.spawn("sender", "n0", sender)
        with pytest.raises(SimulationError):
            kernel.run()

    def test_blocked_receiver_reported(self):
        kernel = make_kernel()

        def waiter(ctx):
            yield ctx.recv(source="nobody")

        kernel.spawn("waiter", "n0", waiter)
        kernel.run()
        assert kernel.blocked_processes() == ["waiter"]
        assert not kernel.all_finished()

    def test_trace_records_messages(self):
        kernel = make_kernel()

        def sender(ctx):
            yield ctx.send("receiver", "hello", tag=3, size_bytes=100)

        def receiver(ctx):
            yield ctx.recv()

        kernel.spawn("receiver", "n0", receiver)
        kernel.spawn("sender", "n0", sender)
        kernel.run()
        assert len(kernel.trace.messages) == 1
        record = kernel.trace.messages[0]
        assert (record.source, record.dest, record.tag) == ("sender", "receiver", 3)
        assert record.payload_type == "str"


class TestCompute:
    def test_single_compute_duration(self):
        kernel = make_kernel(cores=1, freq=2.0, units_per_ghz=10.0)

        def worker(ctx):
            yield ctx.compute(40.0)  # 40 units at 20 units/s -> 2 s

        kernel.spawn("w", "n0", worker)
        kernel.run()
        assert kernel.now == pytest.approx(2.0)
        assert kernel.trace.computes[0].duration == pytest.approx(2.0)

    def test_two_computations_share_one_core(self):
        kernel = make_kernel(cores=1, freq=1.0, units_per_ghz=1.0)

        def worker(ctx):
            yield ctx.compute(1.0)

        kernel.spawn("a", "n0", worker)
        kernel.spawn("b", "n0", worker)
        kernel.run()
        # Two 1-second jobs sharing one core finish after 2 seconds.
        assert kernel.now == pytest.approx(2.0)

    def test_two_cores_run_two_jobs_at_full_speed(self):
        kernel = make_kernel(cores=2, freq=1.0, units_per_ghz=1.0)

        def worker(ctx):
            yield ctx.compute(1.0)

        kernel.spawn("a", "n0", worker)
        kernel.spawn("b", "n0", worker)
        kernel.run()
        assert kernel.now == pytest.approx(1.0)

    def test_oversubscription_slows_down_proportionally(self):
        kernel = make_kernel(cores=2, freq=1.0, units_per_ghz=1.0)

        def worker(ctx):
            yield ctx.compute(1.0)

        for name in ("a", "b", "c", "d"):
            kernel.spawn(name, "n0", worker)
        kernel.run()
        # Four 1-second jobs on two cores: 2 seconds total.
        assert kernel.now == pytest.approx(2.0)

    def test_late_arrival_shares_remaining_time(self):
        kernel = make_kernel(cores=1, freq=1.0, units_per_ghz=1.0)

        def early(ctx):
            yield ctx.compute(2.0)

        def late(ctx):
            yield ctx.sleep(1.0)
            yield ctx.compute(1.0)

        kernel.spawn("early", "n0", early)
        kernel.spawn("late", "n0", late)
        kernel.run()
        # early runs alone for 1s (1 unit left), then both share the core at
        # half speed; the total of 3 units of work on a 1 unit/s core keeps the
        # core busy until t=3, when both computations complete.
        assert kernel.process("early").finished_at == pytest.approx(3.0)
        assert kernel.process("late").finished_at == pytest.approx(3.0)

    def test_zero_work_completes_immediately(self):
        kernel = make_kernel()

        def worker(ctx):
            yield ctx.compute(0.0)
            return "ok"

        kernel.spawn("w", "n0", worker)
        kernel.run()
        assert kernel.now == 0.0
        assert kernel.process("w").return_value == "ok"

    def test_zero_work_is_recorded_in_the_trace(self):
        kernel = make_kernel()

        def worker(ctx):
            yield ctx.sleep(1.5)
            yield ctx.compute(0.0)

        kernel.spawn("w", "n0", worker)
        kernel.run()
        assert len(kernel.trace.computes) == 1
        record = kernel.trace.computes[0]
        assert (record.pid, record.node, record.work) == ("w", "n0", 0.0)
        assert record.start == record.end == pytest.approx(1.5)

    def test_many_sharers_complete_in_start_order(self):
        kernel = make_kernel(cores=1, freq=1.0, units_per_ghz=1.0)
        done = []

        def worker(ctx, work):
            yield ctx.compute(work)
            done.append(ctx.name)

        for i, work in enumerate((3.0, 2.0, 1.0)):
            kernel.spawn(f"p{i}", "n0", worker, work)
        kernel.run()
        # One core, three sharers: completion order follows the work targets
        # (1.0 first), and the total work of 6 units takes 6 seconds.
        assert done == ["p2", "p1", "p0"]
        assert kernel.now == pytest.approx(6.0)

    def test_equal_work_completes_in_scheduling_order(self):
        kernel = make_kernel(cores=1, freq=1.0, units_per_ghz=1.0)
        done = []

        def worker(ctx):
            yield ctx.compute(1.0)
            done.append(ctx.name)

        for name in ("a", "b", "c"):
            kernel.spawn(name, "n0", worker)
        kernel.run()
        assert done == ["a", "b", "c"]

    def test_node_utilisation(self):
        kernel = make_kernel(cores=2, freq=1.0, units_per_ghz=1.0)

        def worker(ctx):
            yield ctx.compute(4.0)

        kernel.spawn("a", "n0", worker)
        kernel.run()
        # One busy core out of two for the whole run.
        assert kernel.node("n0").utilisation() == pytest.approx(0.5)


class TestRunControls:
    def test_until_time(self):
        kernel = make_kernel()

        def worker(ctx):
            yield ctx.sleep(100.0)

        kernel.spawn("w", "n0", worker)
        kernel.run(until_time=5.0)
        assert kernel.now == pytest.approx(5.0)

    def test_until_process(self):
        kernel = make_kernel()

        def fast(ctx):
            yield ctx.sleep(1.0)

        def slow(ctx):
            yield ctx.sleep(50.0)

        kernel.spawn("fast", "n0", fast)
        kernel.spawn("slow", "n0", slow)
        kernel.run(until_process="fast")
        assert kernel.now <= 1.0 + 1e-9
        with pytest.raises(ValueError):
            kernel.run(until_process="missing")

    def test_max_events(self):
        kernel = make_kernel()

        def worker(ctx):
            for _ in range(10):
                yield ctx.sleep(1.0)

        kernel.spawn("w", "n0", worker)
        kernel.run(max_events=3)
        assert kernel.now < 10.0

    def test_duplicate_node_rejected(self):
        kernel = make_kernel()
        with pytest.raises(ValueError):
            kernel.add_node(NodeSpec(name="n0"))


def _message(source: str, tag: int, payload=None, seq: float = 0.0) -> Message:
    return Message(source=source, tag=tag, payload=payload, sent_at=seq, received_at=seq)


class TestMailbox:
    def test_fifo_within_a_tag(self):
        box = Mailbox()
        box.append(_message("a", 1, "first"))
        box.append(_message("a", 1, "second"))
        assert box.pop_match(Recv(tag=1)).payload == "first"
        assert box.pop_match(Recv(tag=1)).payload == "second"
        assert box.pop_match(Recv(tag=1)) is None

    def test_wildcard_tag_takes_earliest_across_tags(self):
        box = Mailbox()
        box.append(_message("a", 2, "ba"))
        box.append(_message("a", 1, "ab"))
        assert box.pop_match(Recv()).payload == "ba"
        assert box.pop_match(Recv()).payload == "ab"

    def test_source_filter_takes_earliest_match(self):
        box = Mailbox()
        box.append(_message("x", 1, "x1"))
        box.append(_message("y", 1, "y1"))
        box.append(_message("x", 1, "x2"))
        assert box.pop_match(Recv(source="y", tag=1)).payload == "y1"
        assert box.pop_match(Recv(source="x", tag=ANY_TAG)).payload == "x1"
        assert box.pop_match(Recv(source="x", tag=1)).payload == "x2"
        assert len(box) == 0

    def test_len_tracks_buffered_messages(self):
        box = Mailbox()
        assert not box
        box.append(_message("a", 1))
        box.append(_message("a", 2))
        assert len(box) == 2 and box
        box.pop_match(Recv())
        assert len(box) == 1


class TestKernelStats:
    def test_stats_track_the_run(self):
        kernel = make_kernel()

        def worker(ctx):
            for _ in range(3):
                yield ctx.sleep(1.0)

        kernel.spawn("w", "n0", worker)
        kernel.run()
        stats = kernel.stats()
        assert stats.events_fired == 4  # spawn resume + 3 sleep wake-ups
        assert stats.events_scheduled == 4
        assert stats.simulated_seconds == pytest.approx(3.0)
        assert stats.wall_seconds >= 0.0
        assert stats.wall_seconds_per_simulated_second is not None
        assert kernel.trace.kernel_stats == stats

    def test_stats_serialise(self):
        kernel = make_kernel()

        def worker(ctx):
            yield ctx.compute(2.0)

        kernel.spawn("w", "n0", worker)
        kernel.run()
        payload = kernel.stats().to_dict()
        assert payload["events_fired"] > 0
        assert payload["simulated_seconds"] == pytest.approx(kernel.now)
        assert set(payload) >= {
            "events_fired", "events_scheduled", "events_cancelled",
            "peak_queue_size", "compactions", "wall_seconds",
        }

    def test_max_events_budget_ignores_cancelled_events(self):
        # Schedule work whose completion events get cancelled and re-aimed by
        # later arrivals; the max_events budget must count fired events only.
        kernel = make_kernel(cores=1, freq=1.0, units_per_ghz=1.0)

        def worker(ctx):
            yield ctx.compute(1.0)

        for name in ("a", "b", "c", "d"):
            kernel.spawn(name, "n0", worker)
        kernel.run(max_events=100)
        assert kernel.all_finished()
        assert kernel.stats().events_fired <= 100
