"""Tests for repro.lab: SweepSpec, ResultStore, and the Engine batch layer."""

from __future__ import annotations

import json
import multiprocessing
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.api import ALGORITHMS, Engine, RunEvent, SearchSpec, register_algorithm
from repro.lab import (
    CODE_VERSION,
    ResultStore,
    SweepSpec,
    rows_from_reports,
    rows_from_store,
    spec_key,
    write_csv,
    write_json,
)
from repro.analysis.tables import pivot_table


BASE = SearchSpec(workload="leftmove", level=1, max_steps=1)
SIM = SearchSpec(workload="leftmove", backend="sim-cluster", level=2, max_steps=1)


class TestSweepSpec:
    def test_expansion_is_deterministic(self):
        sweep = SweepSpec(base=SIM, axes={"n_clients": (4, 1), "level": (2, 3)})
        first = [(c.index, dict(c.coords), c.spec) for c in sweep.cells()]
        second = [(c.index, dict(c.coords), c.spec) for c in sweep.cells()]
        assert first == second
        assert len(sweep) == 4
        # First axis varies slowest, exactly in the order given.
        assert [c[1] for c in first] == [
            {"n_clients": 4, "level": 2},
            {"n_clients": 4, "level": 3},
            {"n_clients": 1, "level": 2},
            {"n_clients": 1, "level": 3},
        ]
        assert first[0][2] == SIM.replace(n_clients=4, level=2)

    def test_json_round_trip(self):
        sweep = SweepSpec(
            base=SIM,
            axes={"dispatcher": ("rr", "lm"), "n_clients": (1, 4)},
            name="tables",
            repeats=2,
        )
        restored = SweepSpec.from_json(sweep.to_json(indent=2))
        assert restored == sweep
        assert restored.specs() == sweep.specs()
        json.loads(sweep.to_json())  # genuinely valid JSON

    def test_param_axes(self):
        sweep = SweepSpec(
            base=BASE.replace(algorithm="nrpa", max_steps=None),
            axes={"params.iterations": (1, 2)},
        )
        specs = sweep.specs()
        assert [s.params["iterations"] for s in specs] == [1, 2]

    def test_repeats_derive_distinct_deterministic_seeds(self):
        sweep = SweepSpec(base=BASE, axes={"level": (1,)}, repeats=3)
        seeds = [cell.spec.seed for cell in sweep.cells()]
        assert len(set(seeds)) == 3
        assert seeds == [cell.spec.seed for cell in sweep.cells()]
        # Without repeats every cell keeps the base seed (comparable scores).
        flat = SweepSpec(base=BASE, axes={"level": (1, 2)})
        assert {cell.spec.seed for cell in flat.cells()} == {BASE.seed}

    def test_rejects_unknown_axis_and_bad_values(self):
        with pytest.raises(ValueError, match="unknown sweep axis"):
            SweepSpec(base=BASE, axes={"clients": (1, 2)})
        with pytest.raises(ValueError, match="params.<name>"):
            SweepSpec(base=BASE, axes={"params": ({"a": 1},)})
        with pytest.raises(ValueError, match="no values"):
            SweepSpec(base=BASE, axes={"level": ()})
        with pytest.raises(ValueError, match="sequence of values"):
            SweepSpec(base=BASE, axes={"dispatcher": "rr"})
        # Axis values hit SearchSpec validation at construction, not mid-sweep.
        with pytest.raises(ValueError, match="n_clients"):
            SweepSpec(base=BASE, axes={"n_clients": (1, -2)})
        with pytest.raises(ValueError, match="seed"):
            SweepSpec(base=BASE, axes={"seed": (0, 1)}, repeats=2)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown SweepSpec fields: bogus"):
            SweepSpec.from_dict({"base": {}, "bogus": 1})


class TestKeys:
    def test_key_is_content_addressed(self):
        assert spec_key(BASE) == spec_key(BASE.replace())
        assert spec_key(BASE) != spec_key(BASE.replace(seed=1))
        assert spec_key(BASE) != spec_key(BASE, salt="other-code-version")

    def test_key_stable_across_processes(self):
        """The content address is process-independent (no hash randomisation)."""
        code = (
            "from repro.api import SearchSpec\n"
            "from repro.lab import spec_key\n"
            f"spec = SearchSpec.from_json({BASE.to_json()!r})\n"
            "print(spec_key(spec), end='')\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": str(Path(__file__).parent.parent / "src"), "PYTHONHASHSEED": "99"},
        )
        assert out.stdout == spec_key(BASE)

    def test_unencodable_params_fail_loudly(self):
        with pytest.raises(TypeError):
            spec_key(SearchSpec(params={"fn": object()}))


class TestResultStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        report = Engine().run(BASE)
        key = store.put(BASE, report)
        assert BASE in store
        assert store.path_for(key).is_file()
        loaded = store.get(BASE)
        assert loaded.score == report.score
        assert loaded.spec == BASE
        assert loaded.work_units == report.work_units
        assert loaded.simulated_seconds == pytest.approx(report.simulated_seconds)
        assert store.get(BASE.replace(seed=5)) is None

    def test_record_carries_provenance(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(BASE, Engine().run(BASE))
        (record,) = store.records()
        assert record["salt"] == CODE_VERSION
        assert record["spec"] == json.loads(BASE.to_json())
        assert record["created_at"] > 0

    def test_salt_partitions_results(self, tmp_path):
        v1 = ResultStore(tmp_path, salt="v1")
        v2 = ResultStore(tmp_path, salt="v2")
        v1.put(BASE, Engine().run(BASE))
        assert BASE in v1 and BASE not in v2

    def test_discard(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(BASE, Engine().run(BASE))
        assert store.discard(BASE) is True
        assert store.discard(BASE) is False
        assert len(store) == 0

    def test_concurrent_writers_tolerated(self, tmp_path):
        """Racing puts — same key and different keys — leave a sound store."""
        store = ResultStore(tmp_path)
        reports = {seed: Engine().run(BASE.replace(seed=seed)) for seed in range(4)}
        errors = []

        def writer(seed):
            try:
                for _ in range(10):
                    store.put(BASE.replace(seed=seed), reports[seed])
                    store.put(BASE, reports[0])  # everyone also hammers one key
            except Exception as exc:  # pragma: no cover - the failure under test
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(s,)) for s in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(store) == 4  # seeds 1..3 plus the shared BASE/seed-0 key
        for seed in range(4):
            assert store.get(BASE.replace(seed=seed)).score == reports[seed].score

    def test_truncated_record_loads_as_none(self, tmp_path):
        """A half-written/corrupt file reads as a miss, never an exception."""
        store = ResultStore(tmp_path)
        key = store.put(BASE, Engine().run(BASE))
        path = store.path_for(key)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert store.load(key) is None
        assert store.get(BASE) is None
        # A syntactically valid record of the wrong shape is also a miss.
        path.write_text('["not", "a", "record"]')
        assert store.load(key) is None
        # The cell is simply re-run on the next sweep, overwriting the junk.
        (report,) = Engine().run_many([BASE], store=store)
        assert store.get(BASE).score == report.score

    def test_two_processes_hammering_one_store(self, tmp_path):
        """Two *processes* racing ``put`` on overlapping keys (the inter-process
        file lock's job) leave every record sound and readable."""
        report = Engine().run(BASE)
        procs = [
            multiprocessing.Process(
                target=_hammer_store_from_process,
                args=(str(tmp_path), report.to_dict(), rounds, 10),
            )
            for rounds in (5, 5)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        store = ResultStore(tmp_path)
        assert len(store) == 10  # the .lock file never shows up as a key
        for seed in range(10):
            loaded = store.get(BASE.replace(seed=seed))
            assert loaded is not None
            assert loaded.score == report.score


def _hammer_store_from_process(root, report_dict, rounds, n_keys):
    """Child-process body for the two-process store stress test."""
    from repro.api import RunReport

    store = ResultStore(root)
    for _ in range(rounds):
        for seed in range(n_keys):
            spec = BASE.replace(seed=seed)
            report = RunReport.from_dict(dict(report_dict, spec=spec.to_dict()))
            store.put(spec, report)


def _counting_algorithm(name, calls):
    @register_algorithm(name, description="test-only", supports_budget=False)
    def _count(state, level, seeds, counter, budget, params):
        from repro.core.sample import sample

        calls.append(1)
        return sample(state, seeds=seeds, counter=counter)

    return _count


class TestBatchLayer:
    def test_rerun_against_populated_store_executes_nothing(self, tmp_path):
        """Acceptance: the second identical sweep runs zero new searches."""
        calls = []
        _counting_algorithm("test-count", calls)
        try:
            sweep = SweepSpec(
                base=SearchSpec(workload="leftmove", algorithm="test-count", level=0),
                axes={"seed": (0, 1, 2)},
            )
            store = ResultStore(tmp_path)
            engine = Engine()
            first = engine.run_many(sweep, store=store)
            assert len(calls) == 3 and len(first) == 3
            second = engine.run_many(sweep, store=store)
            assert len(calls) == 3  # playout counters stayed at zero on run two
            assert [r.score for r in second] == [r.score for r in first]
        finally:
            del ALGORITHMS["test-count"]

    def test_interrupted_sweep_resumes_missing_cells_only(self, tmp_path):
        calls = []
        _counting_algorithm("test-resume", calls)
        try:
            sweep = SweepSpec(
                base=SearchSpec(workload="leftmove", algorithm="test-resume", level=0),
                axes={"seed": (0, 1, 2, 3)},
            )
            store = ResultStore(tmp_path)
            engine = Engine()
            stop = threading.Event()

            def interrupt_after_two(event: RunEvent) -> None:
                if event.done >= 2 and event.terminal:
                    stop.set()

            partial = engine.run_many(sweep, store=store, cancel=stop, on_event=interrupt_after_two)
            assert len(partial) == 2 and len(store) == 2 and len(calls) == 2
            resumed = engine.run_many(sweep, store=store)
            assert len(resumed) == 4
            assert len(calls) == 4  # only the two missing cells executed
            kinds = []
            engine.run_many(sweep, store=store, on_event=lambda e: kinds.append(e.kind))
            assert kinds == ["cached"] * 4
        finally:
            del ALGORITHMS["test-resume"]

    def test_event_stream_shape(self, tmp_path):
        store = ResultStore(tmp_path)
        sweep = SweepSpec(base=BASE, axes={"seed": (0, 1)})
        events = list(Engine().stream(sweep, store=store))
        assert [e.kind for e in events] == ["started", "completed", "started", "completed"]
        assert [e.index for e in events] == [0, 0, 1, 1]
        assert [(e.done, e.total) for e in events] == [(0, 2), (1, 2), (1, 2), (2, 2)]
        assert all(e.report is not None for e in events if e.kind == "completed")

    def test_error_policy_raise_and_skip(self):
        engine = Engine()
        specs = [
            BASE,
            SearchSpec(workload="leftmove", backend="threads", level=0, max_steps=1),  # needs >=1
            BASE.replace(seed=1),
        ]
        with pytest.raises(ValueError, match="level >= 1"):
            engine.run_many(specs)
        events = []
        reports = engine.run_many(
            specs, error_policy="skip", on_event=lambda e: events.append(e)
        )
        assert len(reports) == 2  # the failing cell is absent, the rest survive
        failed = [e for e in events if e.kind == "failed"]
        assert len(failed) == 1 and isinstance(failed[0].error, ValueError)
        with pytest.raises(ValueError, match="error_policy"):
            engine.run_many(specs, error_policy="bogus")

    def test_worker_pool_matches_sequential(self, tmp_path):
        sweep = SweepSpec(base=SIM, axes={"n_clients": (1, 2), "level": (2, 3)})
        sequential = Engine().run_many(sweep)
        pooled = Engine().run_many(sweep, max_workers=3)
        assert [r.score for r in pooled] == [r.score for r in sequential]
        assert [r.simulated_seconds for r in pooled] == [
            r.simulated_seconds for r in sequential
        ]

    def test_refresh_reexecutes_but_still_stores(self, tmp_path):
        calls = []
        _counting_algorithm("test-refresh", calls)
        try:
            spec = SearchSpec(workload="leftmove", algorithm="test-refresh", level=0)
            store = ResultStore(tmp_path)
            engine = Engine()
            engine.run_many([spec], store=store)
            engine.run_many([spec], store=store, refresh=True)
            assert len(calls) == 2 and len(store) == 1
        finally:
            del ALGORITHMS["test-refresh"]

    def test_pooled_cancellation_skips_unstarted_cells(self):
        """A cancel observed mid-pool stops submitted-but-unstarted cells.

        Two workers hold two cells open on a gate; the cancel flag is set
        while the other four sit queued in the pool.  Those four must never
        execute a search, and — like the inline path — they emit no terminal
        event, so the stream ends with ``done < total``.
        """
        gate = threading.Event()
        running = threading.Semaphore(0)
        cancel = threading.Event()
        calls = []

        @register_algorithm("test-pool-cancel", description="test-only", supports_budget=False)
        def _gated(state, level, seeds, counter, budget, params):
            from repro.core.sample import sample

            calls.append(1)
            running.release()
            assert gate.wait(timeout=30), "gate never released"
            return sample(state, seeds=seeds, counter=counter)

        try:
            sweep = SweepSpec(
                base=SearchSpec(workload="leftmove", algorithm="test-pool-cancel", level=0),
                axes={"seed": (0, 1, 2, 3, 4, 5)},
            )
            events = []

            def consume():
                events.extend(Engine().stream(sweep, max_workers=2, cancel=cancel))

            consumer = threading.Thread(target=consume)
            consumer.start()
            assert running.acquire(timeout=10) and running.acquire(timeout=10)
            cancel.set()  # four cells are submitted to the pool, none started
            gate.set()
            consumer.join(timeout=30)
            assert not consumer.is_alive()
            assert len(calls) == 2  # only the two in-flight cells searched
            kinds = [e.kind for e in events]
            assert kinds.count("completed") == 2
            assert "failed" not in kinds
            assert events[-1].done == 2 < 6  # skipped cells have no terminal event
        finally:
            del ALGORITHMS["test-pool-cancel"]

    def test_run_many_rejects_a_bare_spec(self):
        with pytest.raises(TypeError, match="Engine.run"):
            Engine().run_many(BASE)

    def test_engine_cost_model_is_pinned_into_stored_specs(self, tmp_path):
        """Two engines with different calibrations never alias store entries."""
        from repro.timemodel.cost import CostModel

        store = ResultStore(tmp_path)
        fast = Engine(cost_model=CostModel(units_per_ghz_per_second=1e9))
        slow = Engine(cost_model=CostModel(units_per_ghz_per_second=1e3))
        (a,) = fast.run_many([BASE], store=store)
        (b,) = slow.run_many([BASE], store=store)
        assert len(store) == 2
        assert b.simulated_seconds > a.simulated_seconds
        # Reports echo the pinned spec, so exported keys name real records —
        # identically on the fresh run and on the resumed one.
        assert a.spec.units_per_ghz == 1e9
        (row,) = rows_from_reports([a], store=store)
        assert store.load(row["key"]) is not None
        (cached,) = fast.run_many([BASE], store=store)
        (cached_row,) = rows_from_reports([cached], store=store)
        assert cached_row["key"] == row["key"]

    def test_engine_network_partitions_store_entries(self, tmp_path):
        """Runs under different network models never reuse each other's records."""
        from repro.cluster.network import NetworkModel

        store = ResultStore(tmp_path)
        default = Engine()
        slow_net = Engine(network=NetworkModel(latency_s=0.005))  # 100x default
        (a,) = default.run_many([SIM], store=store)
        events = []
        (b,) = slow_net.run_many([SIM], store=store, on_event=lambda e: events.append(e.kind))
        assert "cached" not in events  # the default-network record was not reused
        assert len(store) == 2
        assert b.simulated_seconds > a.simulated_seconds
        # ... while re-running under the same network resumes as usual.
        kinds = []
        slow_net.run_many([SIM], store=store, on_event=lambda e: kinds.append(e.kind))
        assert kinds == ["cached"]


class TestExport:
    def test_rows_and_files(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        sweep = SweepSpec(base=SIM, axes={"n_clients": (1, 2)})
        reports = Engine().run_many(sweep, store=store)
        rows = rows_from_reports(reports, store=store)
        assert [row["n_clients"] for row in rows] == [1, 2]
        assert all(row["key"] for row in rows)
        assert rows[0]["score"] == reports[0].score
        from_store = rows_from_store(store)
        assert {row["key"] for row in from_store} == {row["key"] for row in rows}
        csv_path = write_csv(rows, tmp_path / "rows.csv")
        assert csv_path.read_text().startswith("key,workload,algorithm")
        json_path = write_json(rows, tmp_path / "rows.json")
        assert json.loads(json_path.read_text())[0]["workload"] == "leftmove"

    def test_pivot_table_renders_rows_directly(self):
        sweep = SweepSpec(base=SIM, axes={"n_clients": (2, 1), "level": (2, 3)})
        rows = rows_from_reports(Engine().run_many(sweep))
        table = pivot_table(
            rows,
            title="times",
            index="n_clients",
            column="level",
            value="simulated_seconds",
            row_label="clients",
            column_fmt=lambda lvl: f"level {lvl}",
        )
        rendered = table.render()
        assert table.columns == ["level 2", "level 3"]
        assert [row["__label__"] for row in table.rows] == ["2", "1"]
        assert "clients" in rendered
