"""Tests for cluster topologies and execution traces."""

from __future__ import annotations

import pytest

from repro.cluster.topology import (
    ClientPlacement,
    ClusterSpec,
    heterogeneous_cluster,
    homogeneous_cluster,
    paper_cluster,
    single_machine,
)
from repro.cluster.node import NodeSpec
from repro.cluster.trace import ComputeRecord, MessageRecord, Trace


class TestTopologies:
    def test_homogeneous_counts(self):
        cluster = homogeneous_cluster(8)
        assert cluster.n_clients == 8
        # 4 dual-core PCs with 2 clients each, plus the server node
        assert len(cluster.nodes) == 5
        assert cluster.server_node == "server"

    def test_homogeneous_odd_client_count(self):
        cluster = homogeneous_cluster(5, clients_per_node=2)
        assert cluster.n_clients == 5

    def test_paper_cluster_64(self):
        cluster = paper_cluster(64)
        assert cluster.n_clients == 64
        slow = [n for n in cluster.nodes if n.freq_ghz == 1.86]
        fast = [n for n in cluster.nodes if n.freq_ghz == 2.33 and n.cores == 2]
        assert len(slow) == 20 and len(fast) == 12
        # frequency correction ratio of the paper: r = 1.09
        assert cluster.frequency_ratio() == pytest.approx(1.09, abs=0.005)

    def test_paper_cluster_32_uses_slow_pcs_only(self):
        cluster = paper_cluster(32)
        used_nodes = {cluster.node(c.node_name) for c in cluster.clients}
        assert all(n.freq_ghz == 1.86 for n in used_nodes)

    def test_paper_cluster_bounds(self):
        with pytest.raises(ValueError):
            paper_cluster(0)
        with pytest.raises(ValueError):
            paper_cluster(65)

    def test_heterogeneous_cluster(self):
        cluster = heterogeneous_cluster(16, 16)
        assert cluster.n_clients == 16 * 4 + 16 * 2
        over = [c for c in cluster.clients if c.node_name.startswith("over")]
        assert len(over) == 64
        assert "16x4+16x2" in cluster.description

    def test_single_machine(self):
        cluster = single_machine(4)
        assert cluster.n_clients == 4
        assert len(cluster.nodes) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            homogeneous_cluster(0)
        with pytest.raises(ValueError):
            heterogeneous_cluster(0, 0)
        node = NodeSpec(name="a")
        with pytest.raises(ValueError):
            ClusterSpec(nodes=[node], clients=[ClientPlacement("c", "missing")], server_node="a")
        with pytest.raises(ValueError):
            ClusterSpec(nodes=[node], clients=[], server_node="missing")
        with pytest.raises(ValueError):
            ClusterSpec(nodes=[node, node], clients=[], server_node="a")

    def test_node_spec_validation(self):
        with pytest.raises(ValueError):
            NodeSpec(name="x", freq_ghz=0)
        with pytest.raises(ValueError):
            NodeSpec(name="x", cores=0)

    def test_node_lookup(self):
        cluster = homogeneous_cluster(2)
        assert cluster.node("server").cores == 4
        with pytest.raises(KeyError):
            cluster.node("nope")


class TestTrace:
    def make_trace(self) -> Trace:
        trace = Trace()
        trace.record_message("a", "b", 1, {"k": 1}, 10.0, 0.0, 0.5)
        trace.record_message("b", "a", 2, "reply", 5.0, 0.5, 1.0)
        trace.record_compute("client-0", "n0", 0.0, 2.0, 20.0)
        trace.record_compute("client-1", "n0", 1.0, 3.0, 20.0)
        trace.record_compute("client-0", "n0", 2.0, 4.0, 10.0)
        return trace

    def test_queries(self):
        trace = self.make_trace()
        assert len(trace.messages_between("a", "b")) == 1
        assert len(trace.messages_by_type("dict")) == 1
        assert trace.total_work("client") == 50.0
        assert trace.busy_time("client-0") == pytest.approx(4.0)
        assert trace.makespan() == pytest.approx(4.0)
        assert trace.communication_edges() == {("a", "b"): 1, ("b", "a"): 1}

    def test_concurrency(self):
        trace = self.make_trace()
        assert trace.max_concurrency("client") == 2
        assert trace.mean_concurrency("client") == pytest.approx(6.0 / 4.0)

    def test_back_to_back_not_counted_as_overlap(self):
        trace = Trace()
        trace.record_compute("client-0", "n0", 0.0, 1.0, 1.0)
        trace.record_compute("client-0", "n0", 1.0, 2.0, 1.0)
        assert trace.max_concurrency("client") == 1

    def test_disabled_trace_records_nothing(self):
        trace = Trace(enabled=False)
        trace.record_message("a", "b", 0, None, 0.0, 0.0, 0.0)
        trace.record_compute("c", "n", 0.0, 1.0, 1.0)
        assert not trace.messages and not trace.computes

    def test_clear(self):
        trace = self.make_trace()
        trace.clear()
        assert trace.makespan() == 0.0
        assert trace.mean_concurrency() == 0.0
