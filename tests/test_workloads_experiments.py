"""Tests for the named workloads and the experiment runners."""

from __future__ import annotations

import pytest

from repro.experiments import (
    calibrated_cost_model,
    run_client_sweep,
    run_figure1_record,
    run_figure_communications,
    run_table1_sequential,
    run_table6_heterogeneous,
)
from repro.games.morpion.state import MorpionState
from repro.parallel.config import DispatcherKind
from repro.parallel.jobs import CachingJobExecutor
from repro.workloads import WORKLOADS, Workload, get_workload, list_workloads, morpion_bench_state


class TestWorkloads:
    def test_registry_contains_the_paper_domain(self):
        names = set(list_workloads())
        assert {"morpion-bench", "morpion-small", "morpion-5d", "paper-scale"} <= names

    def test_registry_contains_every_bundled_game(self):
        names = set(list_workloads())
        assert {"samegame", "tsp", "sop", "weakschur", "leftmove"} <= names

    def test_get_workload_unknown(self):
        with pytest.raises(KeyError):
            get_workload("nope")

    def test_every_workload_builds_a_fresh_playable_state(self):
        for name, workload in WORKLOADS.items():
            if name == "paper-scale":
                continue  # identical state to morpion-5d; skip building twice
            state = workload.state()
            assert state.legal_moves(), f"workload {name} starts terminal"
            # fresh instance every time
            assert workload.state() is not state

    def test_morpion_bench_state_is_capped(self):
        state = morpion_bench_state(max_moves=5)
        assert state.max_moves == 5
        assert len(state.legal_moves()) == 16

    def test_levels_are_ordered(self):
        for workload in WORKLOADS.values():
            assert workload.low_level < workload.high_level


@pytest.fixture(scope="module")
def shared_executor():
    return CachingJobExecutor()


class TestExperimentRunners:
    def test_table1_on_a_small_workload(self):
        result = run_table1_sequential("weakschur", levels=[1, 2], master_seed=1)
        assert "level" in result.render()
        ratios = result.data["ratios"]
        assert ratios["high_over_low_first_move"] > 1.0
        assert ratios["rollout_over_first_move_level1"] > 1.0

    def test_client_sweep_produces_speedups(self, shared_executor):
        sweep = run_client_sweep(
            "rr",
            experiment="first_move",
            workload="morpion-small",
            levels=[2],
            client_counts=[1, 4, 16],
            master_seed=0,
            executor=shared_executor,
            cost_model=calibrated_cost_model("morpion-small", master_seed=0),
        )
        speedups = sweep.speedups[2]
        assert speedups[1] == pytest.approx(1.0)
        assert speedups[4] > 2.0
        assert speedups[16] > speedups[4]
        assert "Round-Robin" in sweep.table.title

    def test_client_sweep_rollout_mode(self, shared_executor):
        sweep = run_client_sweep(
            "lm",
            experiment="rollout",
            workload="weakschur",
            levels=[2],
            client_counts=[1, 4],
            master_seed=0,
        )
        assert sweep.times[2][4] <= sweep.times[2][1]

    def test_client_sweep_rejects_unknown_experiment(self):
        # Validation happens before any runner/dispatcher resolution and the
        # message lists the valid values.
        with pytest.raises(ValueError, match="'first_move'.*'rollout'"):
            run_client_sweep("rr", experiment="nope", workload="weakschur", levels=[2], client_counts=[1])
        with pytest.raises(ValueError, match="first_move"):
            run_client_sweep("bogus-dispatcher", experiment="nope", workload="weakschur")

    def test_client_sweep_rejects_unregistered_workload_objects(self):
        custom = Workload(
            name="custom-unregistered",
            description="not in the registry",
            make_state=morpion_bench_state,
        )
        with pytest.raises(ValueError, match="resolve workloads by name"):
            run_client_sweep("rr", workload=custom, levels=[2], client_counts=[1])
        with pytest.raises(ValueError, match="resolve workloads by name"):
            run_table6_heterogeneous(workload=custom, levels=[2])

    def test_client_sweep_with_store_skips_on_rerun(self, tmp_path):
        from repro.lab import ResultStore

        # No shared executor: the module-level one has served morpion jobs,
        # and an explicit executor disables per-workload cache partitioning.
        store = ResultStore(tmp_path)
        kwargs = dict(
            experiment="first_move",
            workload="weakschur",
            levels=[2],
            client_counts=[1, 4],
            master_seed=0,
            store=store,
        )
        first = run_client_sweep("rr", **kwargs)
        assert len(store) == 2
        second = run_client_sweep("rr", **kwargs)
        assert second.times == first.times
        assert second.render() == first.render()

    def test_table6_duplicate_repartitions_share_cells(self):
        result = run_table6_heterogeneous(
            workload="weakschur",
            levels=[2],
            configurations=[("first", 2, 2), ("second", 2, 2)],
            master_seed=0,
        )
        advantages = result.data["advantages"]
        assert advantages["first_level2_rr_over_lm"] == advantages["second_level2_rr_over_lm"]
        assert len(result.table.rows) == 4  # both labels render, LM and RR each

    def test_table6_lm_not_worse_than_rr(self, shared_executor):
        result = run_table6_heterogeneous(
            workload="morpion-small",
            levels=[2],
            configurations=[("2x4+2x2", 2, 2)],
            master_seed=0,
            executor=shared_executor,
            cost_model=calibrated_cost_model("morpion-small", master_seed=0),
        )
        advantage = result.data["advantages"]["2x4+2x2_level2_rr_over_lm"]
        assert advantage >= 0.95

    def test_figure_communications_pattern_ok(self):
        for dispatcher in (DispatcherKind.ROUND_ROBIN, DispatcherKind.LAST_MINUTE):
            result = run_figure_communications(dispatcher, workload="weakschur", level=2, n_clients=4)
            assert result.data["violations"] == []

    def test_figure1_record_renders_a_grid(self):
        result = run_figure1_record(workload="morpion-small", level=2, n_clients=4, master_seed=0)
        grid = result.data["grid"]
        assert "o" in grid
        assert result.data["result"].score > 0

    def test_figure1_requires_morpion(self):
        with pytest.raises(ValueError):
            run_figure1_record(workload="weakschur")

    def test_calibrated_cost_model_scales_to_the_paper(self):
        model = calibrated_cost_model("weakschur", master_seed=0, reference_seconds=483.0)
        # The calibration target: the low-level first move takes 483 simulated
        # seconds on a 1.86 GHz node (paper Table I, level 3).
        from repro.parallel.driver import sequential_reference
        from repro.workloads import get_workload

        reference = sequential_reference(
            get_workload("weakschur").state(), 2, master_seed=0, max_steps=1, cost_model=model
        )
        assert reference.simulated_seconds == pytest.approx(483.0, rel=1e-6)
