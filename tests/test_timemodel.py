"""Tests for the work-to-time cost model."""

from __future__ import annotations

import pytest

from repro.timemodel.cost import CostModel, calibrate_from_reference


class TestCostModel:
    def test_seconds_for(self):
        model = CostModel(units_per_ghz_per_second=100.0)
        assert model.units_per_second(2.0) == pytest.approx(200.0)
        assert model.seconds_for(400.0, 2.0) == pytest.approx(2.0)

    def test_work_for_is_inverse(self):
        model = CostModel(units_per_ghz_per_second=123.0)
        seconds = 7.5
        work = model.work_for(seconds, 1.86)
        assert model.seconds_for(work, 1.86) == pytest.approx(seconds)

    def test_faster_node_is_faster(self):
        model = CostModel()
        assert model.seconds_for(1000, 2.33) < model.seconds_for(1000, 1.86)

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModel(units_per_ghz_per_second=0)
        model = CostModel()
        with pytest.raises(ValueError):
            model.seconds_for(-1, 1.0)
        with pytest.raises(ValueError):
            model.seconds_for(1, 0.0)
        with pytest.raises(ValueError):
            model.work_for(-1, 1.0)


class TestCalibration:
    def test_calibrated_model_maps_reference_exactly(self):
        model = calibrate_from_reference(work_units=50_000, reference_seconds=483.0, freq_ghz=1.86)
        assert model.seconds_for(50_000, 1.86) == pytest.approx(483.0)

    def test_calibration_validation(self):
        with pytest.raises(ValueError):
            calibrate_from_reference(0, 100.0)
        with pytest.raises(ValueError):
            calibrate_from_reference(100, 0.0)
