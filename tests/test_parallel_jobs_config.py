"""Tests for parallel configuration, message payloads and job executors."""

from __future__ import annotations

import pytest

from repro.games.leftmove import LeftMoveState
from repro.games.weakschur import WeakSchurState
from repro.parallel.config import DispatcherKind, ParallelConfig
from repro.parallel.jobs import CachingJobExecutor, DirectJobExecutor
from repro.parallel.messages import estimate_state_size
from repro.prng import SeedSequence


class TestDispatcherKind:
    def test_parse_aliases(self):
        assert DispatcherKind.parse("rr") is DispatcherKind.ROUND_ROBIN
        assert DispatcherKind.parse("last-minute") is DispatcherKind.LAST_MINUTE
        assert DispatcherKind.parse(DispatcherKind.LAST_MINUTE) is DispatcherKind.LAST_MINUTE

    def test_parse_unknown(self):
        with pytest.raises(ValueError):
            DispatcherKind.parse("random")


class TestParallelConfig:
    def test_client_level(self):
        assert ParallelConfig(level=3).client_level == 1
        assert ParallelConfig(level=4).client_level == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelConfig(level=1)
        with pytest.raises(ValueError):
            ParallelConfig(n_medians=0)
        with pytest.raises(ValueError):
            ParallelConfig(max_root_steps=0)

    def test_with_dispatcher(self):
        config = ParallelConfig(level=3)
        other = config.with_dispatcher("lm")
        assert other.dispatcher is DispatcherKind.LAST_MINUTE
        assert config.dispatcher is DispatcherKind.ROUND_ROBIN  # original unchanged
        assert other.level == 3


class TestMessages:
    def test_estimate_state_size_grows_with_moves(self):
        state = LeftMoveState(depth=10)
        before = estimate_state_size(state)
        state.apply(0)
        state.apply(0)
        assert estimate_state_size(state) > before


class TestExecutors:
    def test_direct_executor_runs_searches(self):
        executor = DirectJobExecutor()
        state = WeakSchurState(k=3, limit=10)
        outcome = executor.execute(state, 0, SeedSequence(0, "job"))
        assert outcome.work_units > 0
        assert executor.jobs_executed == 1
        result = outcome.as_result(level=0)
        assert result.score == outcome.score

    def test_direct_executor_levels(self):
        executor = DirectJobExecutor()
        state = WeakSchurState(k=3, limit=10)
        level0 = executor.execute(state, 0, SeedSequence(1, "a"))
        level1 = executor.execute(state, 1, SeedSequence(1, "b"))
        assert level1.work_units > level0.work_units

    def test_caching_executor_reuses_results(self):
        executor = CachingJobExecutor()
        state = WeakSchurState(k=3, limit=10)
        seeds = SeedSequence(5, "job", 1)
        first = executor.execute(state, 1, seeds)
        second = executor.execute(state, 1, seeds)
        assert first == second
        assert executor.hits == 1 and executor.misses == 1
        assert executor.cache_size() == 1

    def test_caching_executor_distinguishes_levels_and_seeds(self):
        executor = CachingJobExecutor()
        state = WeakSchurState(k=3, limit=10)
        executor.execute(state, 0, SeedSequence(5, "job", 1))
        executor.execute(state, 1, SeedSequence(5, "job", 1))
        executor.execute(state, 0, SeedSequence(5, "job", 2))
        assert executor.cache_size() == 3
        assert executor.hits == 0

    def test_caching_executor_clear(self):
        executor = CachingJobExecutor()
        executor.execute(WeakSchurState(k=2, limit=5), 0, SeedSequence(0))
        executor.clear()
        assert executor.cache_size() == 0
        assert executor.misses == 0

    def test_executor_results_deterministic_across_instances(self):
        state = WeakSchurState(k=3, limit=12)
        a = DirectJobExecutor().execute(state, 1, SeedSequence(9, "x"))
        b = DirectJobExecutor().execute(state, 1, SeedSequence(9, "x"))
        assert a == b
