"""Tests for the analysis helpers (time formatting, stats, speedups, tables)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.analysis.speedup import (
    efficiency,
    frequency_corrected_speedup,
    speedup,
    speedup_table,
)
from repro.analysis.stats import Summary, mean, std, summarize
from repro.analysis.tables import Table
from repro.analysis.timefmt import format_hms, parse_hms


class TestTimeFormat:
    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (10, "10s"),
            (9, "09s"),
            (112, "01m52s"),
            (483, "08m03s"),
            (4053, "1h07m33s"),
            (100806, "28h00m06s"),
            (1991, "33m11s"),
        ],
    )
    def test_format_matches_paper_style(self, seconds, expected):
        assert format_hms(seconds) == expected

    def test_format_days(self):
        assert format_hms((9 * 24 + 18) * 3600 + 58 * 60) == "09d18h58m"

    def test_parse_examples(self):
        assert parse_hms("08m03s") == 483.0
        assert parse_hms("1h07m33s") == 4053.0
        assert parse_hms("(2h10m)") == 7800.0
        assert parse_hms("(09d18h58m)") == 845880.0

    def test_parse_errors(self):
        with pytest.raises(ValueError):
            parse_hms("hello")
        with pytest.raises(ValueError):
            parse_hms("")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_hms(-1)

    @given(st.integers(0, 10 * 24 * 3600))
    def test_roundtrip_within_a_minute(self, seconds):
        # Days format drops the seconds digit, so the roundtrip is accurate to 60s.
        assert abs(parse_hms(format_hms(seconds)) - seconds) < 60


class TestStats:
    def test_mean_std(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert std([2.0, 2.0, 2.0]) == 0.0
        assert std([5.0]) == 0.0
        assert std([0.0, 2.0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])
        with pytest.raises(ValueError):
            std([])

    def test_summary_paper_style(self):
        summary = summarize([100.0, 120.0, 110.0])
        assert summary.n == 3
        assert "(" in summary.paper_style()
        single = summarize([7800.0])
        assert single.paper_style() == "(2h10m00s)"


class TestSpeedup:
    def test_speedup_and_efficiency(self):
        assert speedup(100.0, 25.0) == 4.0
        assert efficiency(100.0, 25.0, 8) == 0.5

    def test_frequency_corrected(self):
        assert frequency_corrected_speedup(560.0, 10.0, 1.09) == pytest.approx(56 / 1.09)

    def test_speedup_table(self):
        table = speedup_table({1: 100.0, 4: 25.0, 8: 12.5})
        assert table == {1: 1.0, 4: 4.0, 8: 8.0}

    def test_speedup_table_needs_baseline(self):
        with pytest.raises(ValueError):
            speedup_table({4: 25.0})

    def test_validation(self):
        with pytest.raises(ValueError):
            speedup(-1.0, 1.0)
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)
        with pytest.raises(ValueError):
            efficiency(1.0, 1.0, 0)
        with pytest.raises(ValueError):
            frequency_corrected_speedup(1.0, 1.0, 0.0)


class TestTable:
    def test_render_contains_cells(self):
        table = Table(title="Demo", columns=["level 3", "level 4"], row_label="clients")
        table.add_row("64", **{"level 3": "10s", "level 4": "33m11s"})
        table.add_row("8", **{"level 3": "01m11s"})
        text = table.render()
        assert "Demo" in text and "33m11s" in text
        assert "—" in text  # missing cell

    def test_cell_lookup(self):
        table = Table(title="T", columns=["a"])
        table.add_row("x", a="1")
        assert table.cell("x", "a") == "1"
        with pytest.raises(KeyError):
            table.cell("missing", "a")

    def test_unknown_column_rejected(self):
        table = Table(title="T", columns=["a"])
        with pytest.raises(ValueError):
            table.add_row("x", b="1")
