"""Tests for repro.service — the search-as-a-service job server.

The suites cover the threaded core directly (queue, rate limiter, service
lifecycle, both dedup levels, cancellation, shutdown draining) and the
socket transport + client end to end (TCP and unix socket), including the
acceptance proof that two identical concurrent submissions execute exactly
one search and a completed submission re-serves from the store with zero
searches.
"""

import threading
import time

import pytest

from repro.api import ALGORITHMS, Engine, SearchSpec, register_algorithm
from repro.core.sample import sample
from repro.lab import ResultStore, SweepSpec
from repro.service import (
    ClientRateLimiter,
    JobQueue,
    QueueFull,
    SearchService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceServer,
    TokenBucket,
)
from repro.service.protocol import decode_line, encode_line, parse_address


class _Recorder:
    """A registrable algorithm that counts calls and can block on a gate.

    ``started`` is set when a call begins; the call then waits on ``gate``
    (pre-set by default, so unblocked unless a test clears it).
    """

    def __init__(self):
        self.calls = []
        self.started = threading.Event()
        self.gate = threading.Event()
        self.gate.set()

    def __call__(self, state, level, seeds, counter, budget, params):
        self.calls.append(threading.get_ident())
        self.started.set()
        assert self.gate.wait(timeout=30), "test gate never released"
        return sample(state, seeds=seeds, counter=counter)


@pytest.fixture
def recorder():
    """Register a fresh counting algorithm as ``svc-probe`` for one test."""
    rec = _Recorder()
    register_algorithm("svc-probe", description="service test probe")(rec)
    try:
        yield rec
    finally:
        del ALGORITHMS["svc-probe"]


PROBE = SearchSpec(workload="leftmove", algorithm="svc-probe", level=0, seed=7)


def _drain(service, job_id):
    """Follow a job to the end in-process; returns its event list."""
    return list(service.subscribe(job_id))


# --------------------------------------------------------------------- #
# JobQueue: priorities, fairness, backpressure
# --------------------------------------------------------------------- #
class _FakeJob:
    def __init__(self, client, priority=0, tag=""):
        self.client = client
        self.priority = priority
        self.tag = tag


class TestJobQueue:
    def test_priority_order_within_one_client(self):
        q = JobQueue(maxsize=8)
        q.push(_FakeJob("a", priority=5, tag="low"))
        q.push(_FakeJob("a", priority=0, tag="high"))
        q.push(_FakeJob("a", priority=0, tag="high2"))
        assert [q.pop(0).tag for _ in range(3)] == ["high", "high2", "low"]

    def test_round_robin_across_clients(self):
        q = JobQueue(maxsize=8)
        for tag in ("a1", "a2", "a3"):
            q.push(_FakeJob("a", tag=tag))
        q.push(_FakeJob("b", tag="b1"))
        # Client b's single job must not starve behind a's backlog.
        order = [q.pop(0).tag for _ in range(4)]
        assert order.index("b1") < 2
        assert [t for t in order if t.startswith("a")] == ["a1", "a2", "a3"]

    def test_bounded_depth_rejects(self):
        q = JobQueue(maxsize=2)
        q.push(_FakeJob("a"))
        q.push(_FakeJob("b"))
        with pytest.raises(QueueFull):
            q.push(_FakeJob("c"))
        assert len(q) == 2

    def test_pop_timeout_returns_none(self):
        assert JobQueue(maxsize=1).pop(timeout=0.01) is None


# --------------------------------------------------------------------- #
# Rate limiting
# --------------------------------------------------------------------- #
class TestRateLimiting:
    def test_token_bucket_burst_and_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=lambda: now[0])
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()  # burst exhausted
        now[0] += 1.0
        assert bucket.try_acquire()  # one token refilled
        assert not bucket.try_acquire()

    def test_limiter_is_per_client(self):
        now = [0.0]
        limiter = ClientRateLimiter(rate=1.0, burst=1.0, clock=lambda: now[0])
        assert limiter.allow("alice")
        assert not limiter.allow("alice")
        assert limiter.allow("bob")  # separate bucket

    def test_none_rate_disables(self):
        limiter = ClientRateLimiter(rate=None, burst=None)
        assert all(limiter.allow("anyone") for _ in range(100))


# --------------------------------------------------------------------- #
# Service core lifecycle
# --------------------------------------------------------------------- #
class TestServiceLifecycle:
    def test_happy_path_matches_direct_engine_run(self, recorder):
        with SearchService() as service:
            ack = service.submit(PROBE, client="t")
            assert ack["status"] == "queued"
            events = _drain(service, ack["job_id"])
        assert [e["kind"] for e in events] == ["started", "completed"]
        assert events[-1]["done"] == 1
        snapshot = service.status(ack["job_id"])
        assert snapshot["state"] == "completed"
        assert snapshot["cells"] == {
            "total": 1, "done": 1, "cached": 0, "completed": 1, "failed": 0,
        }
        direct = Engine().run(PROBE)
        assert events[-1]["report"]["score"] == direct.score
        assert len(recorder.calls) == 2  # one service run + the direct run

    def test_dict_payloads_accepted(self, recorder):
        with SearchService() as service:
            ack = service.submit(PROBE.to_dict())
            _drain(service, ack["job_id"])
            assert service.status(ack["job_id"])["kind"] == "search"
            sweep = SweepSpec(base=PROBE, axes={"seed": (1, 2)})
            ack = service.submit(sweep.to_dict())
            _drain(service, ack["job_id"])
            assert service.status(ack["job_id"])["cells"]["done"] == 2

    def test_malformed_payload_raises_value_error(self):
        service = SearchService()  # not started: submit alone must validate
        with pytest.raises(ValueError):
            service.submit({"workload": "leftmove", "bogus_field": 1})
        with pytest.raises(ValueError):
            service.submit(42)

    def test_inflight_dedup_executes_exactly_once(self, recorder):
        recorder.gate.clear()
        with SearchService() as service:
            first = service.submit(PROBE, client="alice")
            assert first["status"] == "queued"
            assert recorder.started.wait(10)
            second = service.submit(PROBE, client="bob")
            assert second == {
                "status": "attached",
                "job_id": first["job_id"],
                "state": "running",
                "key": first["key"],
            }
            recorder.gate.set()
            alice_events = _drain(service, first["job_id"])
            bob_events = _drain(service, second["job_id"])
        assert len(recorder.calls) == 1  # exactly one search for two submissions
        assert alice_events == bob_events  # late subscriber replays history
        assert service.status(first["job_id"])["attached"] == 2
        assert service.service_stats()["attached"] == 1

    def test_resubmission_after_completion_is_store_cached(self, recorder, tmp_path):
        with SearchService(store=ResultStore(tmp_path / "store")) as service:
            first = service.submit(PROBE)
            _drain(service, first["job_id"])
            again = service.submit(PROBE)
            assert again["status"] == "cached"
            assert again["job_id"] != first["job_id"]
            events = _drain(service, again["job_id"])
        assert len(recorder.calls) == 1  # zero searches for the re-submission
        assert [e["kind"] for e in events] == ["cached"]
        assert events[0]["report"]["score"] is not None
        assert service.status(again["job_id"])["state"] == "completed"
        assert service.service_stats()["searches_started"] == 1

    def test_rate_limited_submission_rejected(self):
        now = [0.0]
        service = SearchService(  # never started: nothing should execute
            config=ServiceConfig(rate=1.0, burst=2.0),
            clock=lambda: now[0],
        )
        acks = [service.submit(PROBE.replace(seed=i), client="hot") for i in range(3)]
        assert [a["status"] for a in acks] == ["queued", "queued", "rejected"]
        assert acks[2]["reason"] == "rate_limited"
        # An unrelated client is not penalised, and time refills the bucket.
        assert service.submit(PROBE.replace(seed=9), client="cold")["status"] == "queued"
        now[0] += 1.0
        assert service.submit(PROBE.replace(seed=3), client="hot")["status"] == "queued"
        assert service.service_stats()["rejected_rate_limited"] == 1

    def test_full_queue_rejected_with_backpressure(self):
        service = SearchService(config=ServiceConfig(queue_depth=2))
        assert service.submit(PROBE.replace(seed=0))["status"] == "queued"
        assert service.submit(PROBE.replace(seed=1))["status"] == "queued"
        overflow = service.submit(PROBE.replace(seed=2))
        assert overflow == {
            "status": "rejected", "reason": "queue_full", "queue_depth": 2,
        }
        assert service.service_stats()["rejected_queue_full"] == 1

    def test_cancel_queued_job_is_immediate(self):
        service = SearchService()  # no workers: the job stays queued
        ack = service.submit(PROBE)
        snapshot = service.cancel(ack["job_id"])
        assert snapshot["state"] == "cancelled"
        # The key is freed: an identical submission makes a fresh job.
        assert service.submit(PROBE)["status"] == "queued"

    def test_cancel_running_sweep_stops_at_cell_boundary(self, recorder):
        recorder.gate.clear()
        sweep = SweepSpec(base=PROBE, axes={"seed": (0, 1, 2, 3)})
        with SearchService(config=ServiceConfig(n_workers=1)) as service:
            ack = service.submit(sweep)
            assert recorder.started.wait(10)  # first cell is mid-search
            service.cancel(ack["job_id"])
            recorder.gate.set()  # let the in-flight cell finish
            _drain(service, ack["job_id"])
        snapshot = service.status(ack["job_id"])
        assert snapshot["state"] == "cancelled"
        assert len(recorder.calls) < 4  # later cells were never searched
        assert snapshot["cells"]["done"] < 4

    def test_cancel_unknown_job_returns_none(self):
        assert SearchService().cancel("job-999") is None

    def test_shutdown_drains_then_rejects(self, recorder):
        service = SearchService().start()
        acks = [service.submit(PROBE.replace(seed=i)) for i in range(3)]
        service.shutdown(drain=True, timeout=30)
        states = {service.status(a["job_id"])["state"] for a in acks}
        assert states == {"completed"}
        late = service.submit(PROBE.replace(seed=99))
        assert late == {"status": "rejected", "reason": "shutting_down"}

    def test_shutdown_without_drain_cancels_pending(self):
        service = SearchService()  # no workers, so queued jobs cannot run
        ack = service.submit(PROBE)
        service.shutdown(drain=False, timeout=1)
        assert service.status(ack["job_id"])["state"] == "cancelled"

    def test_subscribe_unknown_job_raises(self):
        with pytest.raises(KeyError, match="job-404"):
            SearchService().subscribe("job-404")


# --------------------------------------------------------------------- #
# Protocol helpers
# --------------------------------------------------------------------- #
class TestProtocol:
    def test_frame_round_trip(self):
        frame = encode_line({"op": "ping", "n": 1})
        assert frame.endswith(b"\n")
        assert decode_line(frame) == {"op": "ping", "n": 1}

    def test_decode_rejects_junk(self):
        with pytest.raises(ValueError, match="bad JSON frame"):
            decode_line(b"not json\n")
        with pytest.raises(ValueError, match="JSON object"):
            decode_line(b"[1,2]\n")

    def test_parse_address_forms(self):
        assert parse_address("unix:/tmp/x.sock") == ("unix", "/tmp/x.sock")
        assert parse_address("10.0.0.1:7171") == ("tcp", ("10.0.0.1", 7171))
        assert parse_address(":7171") == ("tcp", ("127.0.0.1", 7171))
        for bad in ("unix:", "nocolon", "host:port"):
            with pytest.raises(ValueError):
                parse_address(bad)


# --------------------------------------------------------------------- #
# Transport + client, end to end
# --------------------------------------------------------------------- #
@pytest.fixture
def served(tmp_path):
    """A live server on an ephemeral TCP port, store-backed; yields a client."""
    service = SearchService(store=ResultStore(tmp_path / "store"))
    server = ServiceServer(service, port=0)
    address = server.start()
    try:
        yield ServiceClient(address, client="pytest"), service
    finally:
        service.shutdown(drain=False, timeout=5)
        server.stop()


class TestTransport:
    def test_ping_and_unknown_op(self, served):
        client, _ = served
        assert client.ping()
        with pytest.raises(ServiceError, match="unknown op"):
            client._request({"op": "frobnicate"})

    def test_run_round_trip_matches_engine(self, served, recorder):
        client, _ = served
        outcome = client.run(PROBE)
        assert outcome["submit"]["status"] == "queued"
        assert outcome["job"]["state"] == "completed"
        assert outcome["counts"]["completed"] == 1
        assert outcome["reports"][0]["score"] == Engine().run(PROBE).score

    def test_wire_dedup_inflight_and_cached(self, served, recorder):
        """The acceptance proof, through the socket: two identical submissions
        → one search; a post-completion re-run → zero searches."""
        client, service = served
        recorder.gate.clear()
        first = client.submit(PROBE)
        assert first["status"] == "queued"
        assert recorder.started.wait(10)
        second = client.submit(PROBE)
        assert second["status"] == "attached"
        assert second["job_id"] == first["job_id"]
        recorder.gate.set()
        outcome_a = client.wait(first["job_id"])
        outcome_b = client.wait(second["job_id"])
        assert outcome_a["reports"] == outcome_b["reports"]
        assert len(recorder.calls) == 1
        # Now terminal: the same spec re-served from the store, no search.
        rerun = client.run(PROBE)
        assert rerun["submit"]["status"] == "cached"
        assert rerun["counts"]["cached"] == 1
        assert rerun["reports"] == outcome_a["reports"]
        assert len(recorder.calls) == 1
        assert service.service_stats()["searches_started"] == 1

    def test_concurrent_submitters_share_one_execution(self, served, recorder):
        client, service = served
        recorder.gate.clear()
        outcomes = [None, None]

        def runner(slot):
            outcomes[slot] = client.run(PROBE.replace(seed=42))

        threads = [threading.Thread(target=runner, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        assert recorder.started.wait(10)
        # Hold the search open until BOTH submissions registered, so the
        # late one must dedup against the in-flight job, never the store.
        deadline = time.monotonic() + 10
        while service.service_stats()["submitted"] < 2:
            assert time.monotonic() < deadline, "second submission never arrived"
            time.sleep(0.01)
        recorder.gate.set()
        for t in threads:
            t.join(timeout=30)
        assert all(o is not None for o in outcomes)
        assert {o["submit"]["status"] for o in outcomes} == {"queued", "attached"}
        assert outcomes[0]["reports"] == outcomes[1]["reports"]
        assert len(recorder.calls) == 1

    def test_status_jobs_and_cancel_verbs(self, served, recorder):
        client, _ = served
        outcome = client.run(PROBE)
        job_id = outcome["job"]["id"]
        assert client.status(job_id)["state"] == "completed"
        listing = client.jobs()
        assert any(j["id"] == job_id for j in listing["jobs"])
        assert listing["stats"]["submitted"] >= 1
        with pytest.raises(ServiceError, match="unknown job"):
            client.status("job-404")
        with pytest.raises(ServiceError, match="unknown job"):
            client.cancel("job-404")
        with pytest.raises(ServiceError, match="unknown job"):
            list(client.subscribe("job-404"))

    def test_sweep_submission_streams_all_cells(self, served, recorder):
        client, _ = served
        sweep = SweepSpec(base=PROBE, axes={"seed": (1, 2, 3)})
        seen = []
        outcome = client.run(sweep=sweep, on_event=lambda e: seen.append(e["kind"]))
        assert outcome["job"]["kind"] == "sweep"
        assert outcome["counts"]["done"] == 3
        assert len(outcome["reports"]) == 3
        assert seen.count("completed") == 3

    def test_rejected_ack_is_returned_not_raised(self, tmp_path):
        service = SearchService(config=ServiceConfig(rate=0.001, burst=1.0))
        server = ServiceServer(service, port=0)
        client = ServiceClient(server.start())
        try:
            assert client.submit(PROBE)["status"] == "queued"
            rejected = client.submit(PROBE.replace(seed=1))
            assert rejected == {"status": "rejected", "reason": "rate_limited"}
            with pytest.raises(ServiceError, match="rate_limited"):
                client.run(PROBE.replace(seed=2))
        finally:
            service.shutdown(drain=False, timeout=5)
            server.stop()

    def test_shutdown_verb_stops_the_server(self, recorder):
        service = SearchService()
        server = ServiceServer(service, port=0)
        client = ServiceClient(server.start())
        outcome = client.run(PROBE)
        assert outcome["job"]["state"] == "completed"
        assert client.shutdown(drain=True)["shutting_down"]
        server.wait()  # returns only once the loop stopped
        with pytest.raises(OSError):
            client.ping()

    def test_unix_socket_round_trip(self, tmp_path, recorder):
        service = SearchService()
        server = ServiceServer(service, socket_path=str(tmp_path / "svc.sock"))
        address = server.start()
        assert address == f"unix:{tmp_path / 'svc.sock'}"
        client = ServiceClient(address)
        try:
            assert client.ping()
            assert client.run(PROBE)["job"]["state"] == "completed"
        finally:
            service.shutdown(drain=False, timeout=5)
            server.stop()

    def test_bad_address_fails_fast(self):
        with pytest.raises(ValueError, match="expected 'host:port'"):
            ServiceClient("nonsense")
