"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["workloads"],
            ["nmcs", "--workload", "weakschur", "--level", "1"],
            ["table1", "--levels", "1", "2"],
            ["table2", "--clients", "1", "4"],
            ["table5", "--clients", "1"],
            ["table6"],
            ["figures2-5", "--clients", "4"],
            ["figure1", "--sequential"],
            ["run", "--workload", "leftmove", "--backend", "sim-cluster", "--first-move"],
            ["run", "--spec", "scenario.json", "--json"],
        ):
            assert parser.parse_args(argv) is not None


class TestCommands:
    def test_workloads_lists_everything(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "morpion-bench" in out and "weakschur" in out

    def test_nmcs_command(self, capsys):
        assert main(["nmcs", "--workload", "weakschur", "--level", "1", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "score:" in out

    def test_nmcs_render_on_morpion(self, capsys):
        assert main(["nmcs", "--workload", "morpion-small", "--level", "1", "--render"]) == 0
        out = capsys.readouterr().out
        assert "o" in out

    def test_table1_command(self, capsys):
        assert main(["table1", "--workload", "weakschur", "--levels", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "rollout_over_first_move" in out

    def test_table2_command_small(self, capsys):
        assert main(
            ["table2", "--workload", "weakschur", "--levels", "2", "--clients", "1", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "Round-Robin" in out
        assert "speedups" in out

    def test_table6_command_small(self, capsys):
        assert main(["table6", "--workload", "weakschur", "--levels", "2"]) == 0
        out = capsys.readouterr().out
        assert "heterogeneous" in out

    def test_figures_command(self, capsys):
        assert main(["figures2-5", "--workload", "weakschur", "--levels", "2", "--clients", "4"]) == 0
        out = capsys.readouterr().out
        assert "pattern check: OK" in out

    def test_figure1_sequential(self, capsys):
        assert main(["figure1", "--workload", "morpion-small", "--level", "1", "--sequential"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out


class TestRunCommand:
    def test_run_sequential(self, capsys):
        assert main(["run", "--workload", "leftmove", "--level", "1", "--first-move"]) == 0
        out = capsys.readouterr().out
        assert "backend=sequential" in out and "score:" in out

    def test_run_sim_cluster_json(self, capsys):
        assert main(
            [
                "run", "--workload", "leftmove", "--backend", "sim-cluster",
                "--dispatcher", "lm", "--clients", "4", "--first-move", "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "sim-cluster"
        assert payload["spec"]["dispatcher"] == "lm"
        assert payload["comm"]

    def test_run_with_algorithm_params(self, capsys):
        assert main(
            [
                "run", "--workload", "leftmove", "--algorithm", "nrpa",
                "--level", "1", "--param", "iterations=2", "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "nrpa"
        assert payload["spec"]["params"]["iterations"] == 2

    def test_run_from_spec_file(self, tmp_path, capsys):
        spec_file = tmp_path / "scenario.json"
        spec_file.write_text(
            json.dumps({"workload": "leftmove", "level": 1, "max_steps": 1}),
            encoding="utf-8",
        )
        assert main(["run", "--spec", str(spec_file), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["workload"] == "leftmove"

    def test_run_spec_file_with_flag_overrides(self, tmp_path, capsys):
        spec_file = tmp_path / "scenario.json"
        spec_file.write_text(
            json.dumps({"workload": "leftmove", "level": 1, "seed": 3, "max_steps": 1}),
            encoding="utf-8",
        )
        assert main(["run", "--spec", str(spec_file), "--seed", "5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["seed"] == 5           # flag overrides the document
        assert payload["spec"]["workload"] == "leftmove"  # untouched fields survive

    def test_run_spec_file_override_to_a_default_value(self, tmp_path, capsys):
        # An explicitly passed flag wins even when its value equals the
        # SearchSpec default (SUPPRESS defaults make "passed" detectable).
        spec_file = tmp_path / "scenario.json"
        spec_file.write_text(
            json.dumps({"workload": "leftmove", "level": 1, "seed": 3, "max_steps": 1}),
            encoding="utf-8",
        )
        assert main(["run", "--spec", str(spec_file), "--seed", "0", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["seed"] == 0

    def test_run_from_inline_spec(self, capsys):
        assert main(["run", "--spec", '{"workload": "leftmove", "level": 1, "max_steps": 1}']) == 0
        assert "score:" in capsys.readouterr().out

    def test_run_rejects_bad_backend(self, capsys):
        assert main(["run", "--workload", "leftmove", "--backend", "bogus"]) == 2
        captured = capsys.readouterr()
        assert "registered backends" in captured.err
        assert captured.out == ""  # --json pipelines never see diagnostics

    def test_run_rejects_unsupported_pair(self, capsys):
        assert main(
            ["run", "--workload", "leftmove", "--algorithm", "nrpa", "--backend", "sim-cluster"]
        ) == 2
        assert "cannot execute" in capsys.readouterr().err

    def test_run_rejects_bad_param(self, capsys):
        assert main(["run", "--workload", "leftmove", "--param", "noequals"]) == 2
        assert "KEY=VALUE" in capsys.readouterr().err


class TestListCommand:
    def test_list_enumerates_registries(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Algorithms:" in out and "Backends:" in out and "Workloads:" in out
        assert "nrpa" in out and "sim-cluster" in out and "morpion-bench" in out
        assert "alpha, iterations" in out  # declared params are shown

    def test_list_json(self, capsys):
        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithms"]["nrpa"]["params"] == ["alpha", "iterations"]
        assert payload["backends"]["sim-cluster"]["algorithms"] == ["nmcs"]
        assert payload["backends"]["sim-cluster"]["params"] == ["lm_fifo_jobs"]
        assert "leftmove" in payload["workloads"]


SWEEP_DOC = {
    "name": "cli-test",
    "base": {"workload": "leftmove", "backend": "sim-cluster", "level": 2, "max_steps": 1},
    "axes": {"n_clients": [2, 1], "level": [2]},
}


class TestSweepCommand:
    def test_sweep_runs_and_renders(self, tmp_path, capsys):
        spec_file = tmp_path / "sweep.json"
        spec_file.write_text(json.dumps(SWEEP_DOC), encoding="utf-8")
        assert main(["sweep", "--spec", str(spec_file)]) == 0
        captured = capsys.readouterr()
        assert "cli-test" in captured.out
        assert "executed: 2" in captured.out
        assert "running" in captured.err  # progress stays on stderr

    def test_sweep_store_resume_and_exports(self, tmp_path, capsys):
        store = tmp_path / "store"
        argv = ["sweep", "--spec", json.dumps(SWEEP_DOC), "--store", str(store), "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["executed"] == 2 and first["cached"] == 0
        csv_path = tmp_path / "rows.csv"
        assert main(argv + ["--csv", str(csv_path)]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["executed"] == 0 and second["cached"] == 2  # resumed for free
        assert [row["n_clients"] for row in second["rows"]] == [2, 1]
        assert csv_path.read_text().startswith("key,workload,")

    def test_sweep_force_reexecutes(self, tmp_path, capsys):
        store = tmp_path / "store"
        argv = ["sweep", "--spec", json.dumps(SWEEP_DOC), "--store", str(store), "--json"]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--force"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["executed"] == 2 and payload["cached"] == 0

    def test_sweep_error_policy_skip_exits_nonzero(self, capsys):
        doc = {
            "base": {"workload": "leftmove", "backend": "sim-cluster", "max_steps": 1},
            "axes": {"level": [1, 2]},  # level 1 is invalid for sim-cluster
        }
        assert main(["sweep", "--spec", json.dumps(doc), "--error-policy", "skip", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] == 1 and payload["executed"] == 1

    def test_sweep_rejects_bad_documents_and_flags(self, tmp_path, capsys):
        assert main(["sweep", "--spec", '{"axes": {"bogus": [1]}}']) == 2
        assert "unknown sweep axis" in capsys.readouterr().err
        assert main(["sweep", "--spec", "{}", "--resume"]) == 2
        assert "--store" in capsys.readouterr().err
        assert (
            main(["sweep", "--spec", "{}", "--force", "--resume", "--store", str(tmp_path)]) == 2
        )
        assert "mutually exclusive" in capsys.readouterr().err

    def test_sweep_workers_pool(self, tmp_path, capsys):
        argv = ["sweep", "--spec", json.dumps(SWEEP_DOC), "--workers", "2", "--json"]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["executed"] == 2
        assert [row["n_clients"] for row in payload["rows"]] == [2, 1]  # cell order kept


class TestJsonOutput:
    """Every table/figure command emits machine-readable output with --json."""

    def test_workloads_json(self, capsys):
        assert main(["workloads", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "sop" in payload["workloads"] and "leftmove" in payload["workloads"]
        assert "nmcs" in payload["algorithms"] and "sim-cluster" in payload["backends"]

    def test_nmcs_json(self, capsys):
        assert main(["nmcs", "--workload", "leftmove", "--level", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "nmcs"

    def test_table1_json(self, capsys):
        assert main(["table1", "--workload", "weakschur", "--levels", "1", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "ratios" in payload["data"]

    def test_table2_json(self, capsys):
        assert main(
            ["table2", "--workload", "weakschur", "--levels", "2", "--clients", "1", "4", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["times"]["2"]["1"] >= payload["times"]["2"]["4"]
        assert payload["speedups"]["2"]["1"] == 1.0

    def test_table6_json(self, capsys):
        assert main(["table6", "--workload", "weakschur", "--levels", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "advantages" in payload["data"]

    def test_figures_json(self, capsys):
        assert main(
            ["figures2-5", "--workload", "weakschur", "--levels", "2", "--clients", "4", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {entry["dispatcher"] for entry in payload} == {"round_robin", "last_minute"}

    def test_figure1_json(self, capsys):
        assert main(["figure1", "--workload", "morpion-small", "--level", "1", "--sequential", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "grid" in payload["data"]
