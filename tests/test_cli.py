"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["workloads"],
            ["nmcs", "--workload", "weakschur", "--level", "1"],
            ["table1", "--levels", "1", "2"],
            ["table2", "--clients", "1", "4"],
            ["table5", "--clients", "1"],
            ["table6"],
            ["figures2-5", "--clients", "4"],
            ["figure1", "--sequential"],
            ["run", "--workload", "leftmove", "--backend", "sim-cluster", "--first-move"],
            ["run", "--spec", "scenario.json", "--json"],
        ):
            assert parser.parse_args(argv) is not None


class TestCommands:
    def test_workloads_lists_everything(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "morpion-bench" in out and "weakschur" in out

    def test_nmcs_command(self, capsys):
        assert main(["nmcs", "--workload", "weakschur", "--level", "1", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "score:" in out

    def test_nmcs_render_on_morpion(self, capsys):
        assert main(["nmcs", "--workload", "morpion-small", "--level", "1", "--render"]) == 0
        out = capsys.readouterr().out
        assert "o" in out

    def test_table1_command(self, capsys):
        assert main(["table1", "--workload", "weakschur", "--levels", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "rollout_over_first_move" in out

    def test_table2_command_small(self, capsys):
        assert main(
            ["table2", "--workload", "weakschur", "--levels", "2", "--clients", "1", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "Round-Robin" in out
        assert "speedups" in out

    def test_table6_command_small(self, capsys):
        assert main(["table6", "--workload", "weakschur", "--levels", "2"]) == 0
        out = capsys.readouterr().out
        assert "heterogeneous" in out

    def test_figures_command(self, capsys):
        assert main(["figures2-5", "--workload", "weakschur", "--levels", "2", "--clients", "4"]) == 0
        out = capsys.readouterr().out
        assert "pattern check: OK" in out

    def test_figure1_sequential(self, capsys):
        assert main(["figure1", "--workload", "morpion-small", "--level", "1", "--sequential"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out


class TestRunCommand:
    def test_run_sequential(self, capsys):
        assert main(["run", "--workload", "leftmove", "--level", "1", "--first-move"]) == 0
        out = capsys.readouterr().out
        assert "backend=sequential" in out and "score:" in out

    def test_run_sim_cluster_json(self, capsys):
        assert main(
            [
                "run", "--workload", "leftmove", "--backend", "sim-cluster",
                "--dispatcher", "lm", "--clients", "4", "--first-move", "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "sim-cluster"
        assert payload["spec"]["dispatcher"] == "lm"
        assert payload["comm"]

    def test_run_with_algorithm_params(self, capsys):
        assert main(
            [
                "run", "--workload", "leftmove", "--algorithm", "nrpa",
                "--level", "1", "--param", "iterations=2", "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "nrpa"
        assert payload["spec"]["params"]["iterations"] == 2

    def test_run_from_spec_file(self, tmp_path, capsys):
        spec_file = tmp_path / "scenario.json"
        spec_file.write_text(
            json.dumps({"workload": "leftmove", "level": 1, "max_steps": 1}),
            encoding="utf-8",
        )
        assert main(["run", "--spec", str(spec_file), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["workload"] == "leftmove"

    def test_run_spec_file_with_flag_overrides(self, tmp_path, capsys):
        spec_file = tmp_path / "scenario.json"
        spec_file.write_text(
            json.dumps({"workload": "leftmove", "level": 1, "seed": 3, "max_steps": 1}),
            encoding="utf-8",
        )
        assert main(["run", "--spec", str(spec_file), "--seed", "5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["seed"] == 5           # flag overrides the document
        assert payload["spec"]["workload"] == "leftmove"  # untouched fields survive

    def test_run_spec_file_override_to_a_default_value(self, tmp_path, capsys):
        # An explicitly passed flag wins even when its value equals the
        # SearchSpec default (SUPPRESS defaults make "passed" detectable).
        spec_file = tmp_path / "scenario.json"
        spec_file.write_text(
            json.dumps({"workload": "leftmove", "level": 1, "seed": 3, "max_steps": 1}),
            encoding="utf-8",
        )
        assert main(["run", "--spec", str(spec_file), "--seed", "0", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["seed"] == 0

    def test_run_from_inline_spec(self, capsys):
        assert main(["run", "--spec", '{"workload": "leftmove", "level": 1, "max_steps": 1}']) == 0
        assert "score:" in capsys.readouterr().out

    def test_run_rejects_bad_backend(self, capsys):
        assert main(["run", "--workload", "leftmove", "--backend", "bogus"]) == 2
        captured = capsys.readouterr()
        assert "registered backends" in captured.err
        assert captured.out == ""  # --json pipelines never see diagnostics

    def test_run_rejects_unsupported_pair(self, capsys):
        assert main(
            ["run", "--workload", "leftmove", "--algorithm", "nrpa", "--backend", "sim-cluster"]
        ) == 2
        assert "cannot execute" in capsys.readouterr().err

    def test_run_rejects_bad_param(self, capsys):
        assert main(["run", "--workload", "leftmove", "--param", "noequals"]) == 2
        assert "KEY=VALUE" in capsys.readouterr().err


class TestListCommand:
    def test_list_enumerates_registries(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Algorithms:" in out and "Backends:" in out and "Workloads:" in out
        assert "nrpa" in out and "sim-cluster" in out and "morpion-bench" in out
        assert "alpha, iterations" in out  # declared params are shown

    def test_list_json(self, capsys):
        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithms"]["nrpa"]["params"] == ["alpha", "iterations"]
        assert payload["backends"]["sim-cluster"]["algorithms"] == ["nmcs"]
        assert payload["backends"]["sim-cluster"]["params"] == ["lm_fifo_jobs"]
        assert "leftmove" in payload["workloads"]


SWEEP_DOC = {
    "name": "cli-test",
    "base": {"workload": "leftmove", "backend": "sim-cluster", "level": 2, "max_steps": 1},
    "axes": {"n_clients": [2, 1], "level": [2]},
}


class TestSweepCommand:
    def test_sweep_runs_and_renders(self, tmp_path, capsys):
        spec_file = tmp_path / "sweep.json"
        spec_file.write_text(json.dumps(SWEEP_DOC), encoding="utf-8")
        assert main(["sweep", "--spec", str(spec_file)]) == 0
        captured = capsys.readouterr()
        assert "cli-test" in captured.out
        assert "executed: 2" in captured.out
        assert "running" in captured.err  # progress stays on stderr

    def test_sweep_store_resume_and_exports(self, tmp_path, capsys):
        store = tmp_path / "store"
        argv = ["sweep", "--spec", json.dumps(SWEEP_DOC), "--store", str(store), "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["executed"] == 2 and first["cached"] == 0
        csv_path = tmp_path / "rows.csv"
        assert main(argv + ["--csv", str(csv_path)]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["executed"] == 0 and second["cached"] == 2  # resumed for free
        assert [row["n_clients"] for row in second["rows"]] == [2, 1]
        assert csv_path.read_text().startswith("key,workload,")

    def test_sweep_force_reexecutes(self, tmp_path, capsys):
        store = tmp_path / "store"
        argv = ["sweep", "--spec", json.dumps(SWEEP_DOC), "--store", str(store), "--json"]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--force"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["executed"] == 2 and payload["cached"] == 0

    def test_sweep_error_policy_skip_exits_nonzero(self, capsys):
        doc = {
            "base": {"workload": "leftmove", "backend": "sim-cluster", "max_steps": 1},
            "axes": {"level": [1, 2]},  # level 1 is invalid for sim-cluster
        }
        assert main(["sweep", "--spec", json.dumps(doc), "--error-policy", "skip", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] == 1 and payload["executed"] == 1

    def test_sweep_rejects_bad_documents_and_flags(self, tmp_path, capsys):
        assert main(["sweep", "--spec", '{"axes": {"bogus": [1]}}']) == 2
        assert "unknown sweep axis" in capsys.readouterr().err
        assert main(["sweep", "--spec", "{}", "--resume"]) == 2
        assert "--store" in capsys.readouterr().err
        assert (
            main(["sweep", "--spec", "{}", "--force", "--resume", "--store", str(tmp_path)]) == 2
        )
        assert "mutually exclusive" in capsys.readouterr().err

    def test_sweep_workers_pool(self, tmp_path, capsys):
        argv = ["sweep", "--spec", json.dumps(SWEEP_DOC), "--workers", "2", "--json"]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["executed"] == 2
        assert [row["n_clients"] for row in payload["rows"]] == [2, 1]  # cell order kept


class TestJsonOutput:
    """Every table/figure command emits machine-readable output with --json."""

    def test_workloads_json(self, capsys):
        assert main(["workloads", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "sop" in payload["workloads"] and "leftmove" in payload["workloads"]
        assert "nmcs" in payload["algorithms"] and "sim-cluster" in payload["backends"]

    def test_nmcs_json(self, capsys):
        assert main(["nmcs", "--workload", "leftmove", "--level", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "nmcs"

    def test_table1_json(self, capsys):
        assert main(["table1", "--workload", "weakschur", "--levels", "1", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "ratios" in payload["data"]

    def test_table2_json(self, capsys):
        assert main(
            ["table2", "--workload", "weakschur", "--levels", "2", "--clients", "1", "4", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["times"]["2"]["1"] >= payload["times"]["2"]["4"]
        assert payload["speedups"]["2"]["1"] == 1.0

    def test_table6_json(self, capsys):
        assert main(["table6", "--workload", "weakschur", "--levels", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "advantages" in payload["data"]

    def test_figures_json(self, capsys):
        assert main(
            ["figures2-5", "--workload", "weakschur", "--levels", "2", "--clients", "4", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {entry["dispatcher"] for entry in payload} == {"round_robin", "last_minute"}

    def test_figure1_json(self, capsys):
        assert main(["figure1", "--workload", "morpion-small", "--level", "1", "--sequential", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "grid" in payload["data"]


# The exact --json schemas of the service commands; downstream tooling keys
# off these, so additions are fine but renames/removals must be deliberate.
JOB_SNAPSHOT_KEYS = {
    "id", "client", "kind", "state", "priority", "key", "attached",
    "cells", "submitted_at", "started_at", "finished_at",
    "queue_wait_seconds", "wall_seconds", "error",
}
CELLS_KEYS = {"total", "done", "cached", "completed", "failed"}
STATS_KEYS = {
    "submitted", "queued", "cached", "attached", "rejected_rate_limited",
    "rejected_queue_full", "rejected_shutting_down", "searches_started",
    "running", "inflight", "queue_size", "n_workers",
}


@pytest.fixture
def service_address(tmp_path):
    """A live in-process job server on an ephemeral port; yields its address."""
    from repro.lab import ResultStore
    from repro.service import SearchService, ServiceServer

    service = SearchService(store=ResultStore(tmp_path / "store"))
    server = ServiceServer(service, port=0)
    address = server.start()
    try:
        yield address
    finally:
        service.shutdown(drain=False, timeout=5)
        server.stop()


class TestServiceCommands:
    def test_service_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["serve", "--port", "0", "--workers", "4", "--rate", "2.5"],
            ["serve", "--socket", "/tmp/x.sock", "--store", "results"],
            ["submit", "--connect", ":7171", "--workload", "leftmove", "--json"],
            ["submit", "--connect", ":7171", "--sweep", "doc.json", "--no-wait"],
            ["jobs", "--connect", ":7171", "--json"],
            ["jobs", "--connect", ":7171", "--cancel", "job-1"],
            ["jobs", "--connect", ":7171", "--shutdown", "--no-drain"],
        ):
            assert parser.parse_args(argv) is not None

    def test_submit_json_schema(self, service_address, capsys):
        assert main(
            ["submit", "--connect", service_address, "--json",
             "--workload", "leftmove", "--level", "1", "--seed", "4"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"submit", "job", "counts", "reports", "report"}
        assert payload["submit"]["status"] == "queued"
        assert set(payload["job"]) == JOB_SNAPSHOT_KEYS
        assert set(payload["job"]["cells"]) == CELLS_KEYS
        assert payload["job"]["state"] == "completed"
        assert payload["counts"] == payload["job"]["cells"]
        assert payload["report"] == payload["reports"][0]
        assert payload["report"]["score"] > 0

    def test_submit_is_cached_on_second_run(self, service_address, capsys):
        argv = ["submit", "--connect", service_address, "--json",
                "--workload", "leftmove", "--level", "1", "--seed", "5"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["submit"]["status"] == "cached"
        assert second["report"]["score"] == first["report"]["score"]

    def test_submit_no_wait_returns_ack_only(self, service_address, capsys):
        assert main(
            ["submit", "--connect", service_address, "--json", "--no-wait",
             "--workload", "leftmove", "--level", "1", "--seed", "6"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"submit"}
        assert set(payload["submit"]) == {"status", "job_id", "state", "key"}

    def test_submit_sweep_document(self, service_address, tmp_path, capsys):
        doc = tmp_path / "sweep.json"
        doc.write_text(json.dumps({
            "base": {"workload": "leftmove", "level": 1, "max_steps": 1},
            "axes": {"seed": [1, 2]},
        }))
        assert main(
            ["submit", "--connect", service_address, "--sweep", str(doc), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["job"]["kind"] == "sweep"
        assert len(payload["reports"]) == 2
        assert "report" not in payload  # only single-cell jobs get the alias

    def test_submit_connection_failure_is_a_clean_error(self, capsys):
        assert main(
            ["submit", "--connect", "127.0.0.1:1", "--workload", "leftmove"]
        ) == 2
        assert "error:" in capsys.readouterr().err

    def test_jobs_json_schema(self, service_address, capsys):
        assert main(
            ["submit", "--connect", service_address, "--json",
             "--workload", "leftmove", "--level", "1", "--seed", "7"]
        ) == 0
        capsys.readouterr()
        assert main(["jobs", "--connect", service_address, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"jobs", "stats"}
        assert set(payload["stats"]) == STATS_KEYS
        assert len(payload["jobs"]) == 1
        assert set(payload["jobs"][0]) == JOB_SNAPSHOT_KEYS

    def test_jobs_human_listing(self, service_address, capsys):
        assert main(["jobs", "--connect", service_address]) == 0
        out = capsys.readouterr().out
        assert "no jobs" in out and "submitted: 0" in out

    def test_serve_lifecycle_round_trip(self, tmp_path, capsys):
        """``repro serve`` comes up, serves a submit, and exits on shutdown."""
        import threading
        import time

        ready = tmp_path / "ready"
        rc = []
        thread = threading.Thread(
            target=lambda: rc.append(
                main(["serve", "--port", "0", "--ready-file", str(ready),
                      "--store", str(tmp_path / "store")])
            )
        )
        thread.start()
        for _ in range(200):
            if ready.exists():
                break
            time.sleep(0.05)
        address = ready.read_text().strip()
        assert main(
            ["submit", "--connect", address, "--json",
             "--workload", "leftmove", "--level", "1", "--seed", "8"]
        ) == 0
        assert json.loads(capsys.readouterr().out)["job"]["state"] == "completed"
        assert main(["jobs", "--connect", address, "--shutdown"]) == 0
        thread.join(timeout=15)
        assert not thread.is_alive() and rc == [0]
