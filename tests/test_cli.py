"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["workloads"],
            ["nmcs", "--workload", "weakschur", "--level", "1"],
            ["table1", "--levels", "1", "2"],
            ["table2", "--clients", "1", "4"],
            ["table5", "--clients", "1"],
            ["table6"],
            ["figures2-5", "--clients", "4"],
            ["figure1", "--sequential"],
        ):
            assert parser.parse_args(argv) is not None


class TestCommands:
    def test_workloads_lists_everything(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "morpion-bench" in out and "weakschur" in out

    def test_nmcs_command(self, capsys):
        assert main(["nmcs", "--workload", "weakschur", "--level", "1", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "score:" in out

    def test_nmcs_render_on_morpion(self, capsys):
        assert main(["nmcs", "--workload", "morpion-small", "--level", "1", "--render"]) == 0
        out = capsys.readouterr().out
        assert "o" in out

    def test_table1_command(self, capsys):
        assert main(["table1", "--workload", "weakschur", "--levels", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "rollout_over_first_move" in out

    def test_table2_command_small(self, capsys):
        assert main(
            ["table2", "--workload", "weakschur", "--levels", "2", "--clients", "1", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "Round-Robin" in out
        assert "speedups" in out

    def test_table6_command_small(self, capsys):
        assert main(["table6", "--workload", "weakschur", "--levels", "2"]) == 0
        out = capsys.readouterr().out
        assert "heterogeneous" in out

    def test_figures_command(self, capsys):
        assert main(["figures2-5", "--workload", "weakschur", "--levels", "2", "--clients", "4"]) == 0
        out = capsys.readouterr().out
        assert "pattern check: OK" in out

    def test_figure1_sequential(self, capsys):
        assert main(["figure1", "--workload", "morpion-small", "--level", "1", "--sequential"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
