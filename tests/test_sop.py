"""Tests for the Sequential Ordering Problem domain (repro.games.sop)."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.games.sop import SOPInstance, SOPState


def small_instance():
    """4 nodes, node 2 requires node 1, node 3 (the end) requires everyone."""
    costs = np.array(
        [
            [0, 1, 5, 9],
            [1, 0, 2, 8],
            [5, 2, 0, 3],
            [9, 8, 3, 0],
        ],
        dtype=float,
    )
    preds = (frozenset(), frozenset(), frozenset({1}), frozenset({0, 1, 2}))
    return SOPInstance(costs, preds)


class TestInstance:
    def test_random_is_feasible_by_identity(self):
        inst = SOPInstance.random(12, seed=3)
        identity = list(range(12))
        assert inst.is_feasible(identity)

    def test_random_reproducible(self):
        a = SOPInstance.random(10, seed=5)
        b = SOPInstance.random(10, seed=5)
        assert np.array_equal(a.costs, b.costs)
        assert a.predecessors == b.predecessors

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            SOPInstance(np.zeros((3, 2)), (frozenset(), frozenset(), frozenset()))
        with pytest.raises(ValueError):
            SOPInstance(np.zeros((2, 2)), (frozenset({1}), frozenset()))
        with pytest.raises(ValueError):
            SOPInstance.random(1)

    def test_path_cost(self):
        inst = small_instance()
        assert inst.path_cost([0, 1, 2, 3]) == pytest.approx(1 + 2 + 3)
        with pytest.raises(ValueError):
            inst.path_cost([0, 2, 1])
        with pytest.raises(ValueError):
            inst.path_cost([1, 0, 2, 3])

    def test_is_feasible(self):
        inst = small_instance()
        assert inst.is_feasible([0, 1, 2, 3])
        assert not inst.is_feasible([0, 2, 1, 3])


class TestState:
    def test_legal_moves_respect_precedence(self):
        state = SOPState(small_instance())
        assert state.legal_moves() == [1]  # node 2 needs 1, node 3 needs all

    def test_full_game_is_feasible_path(self):
        inst = SOPInstance.random(10, seed=8)
        state = SOPState(inst)
        rng = random.Random(0)
        while not state.is_terminal():
            state.apply(rng.choice(state.legal_moves()))
        path = state.path()
        assert path[0] == 0 and path[-1] == inst.n_nodes - 1
        assert inst.is_feasible(path)
        assert -state.score() == pytest.approx(inst.path_cost(path))

    def test_illegal_move_raises(self):
        state = SOPState(small_instance())
        with pytest.raises(ValueError):
            state.apply(2)

    def test_heuristic_moves_sorted_by_cost(self):
        inst = SOPInstance.random(8, seed=2, precedence_density=0.0)
        state = SOPState(inst)
        moves = state.heuristic_moves()
        costs = [inst.costs[0, m] for m in moves]
        assert costs == sorted(costs)

    def test_copy_independent(self):
        state = SOPState(small_instance())
        clone = state.copy()
        clone.apply(1)
        assert state.path() == [0]
        assert clone.path() == [0, 1]

    def test_moves_played(self):
        state = SOPState(small_instance())
        state.apply(1)
        state.apply(2)
        assert state.moves_played() == 2
        assert state.path_cost() == pytest.approx(3.0)
