"""Tests for the shared game-state abstractions (repro.games.base)."""

from __future__ import annotations

import random

import pytest

from repro.core.counters import WorkCounter
from repro.games.base import (
    Sequence,
    legal_after,
    play_sequence,
    playout_from,
    random_playout,
    replay,
)
from repro.games.leftmove import LeftMoveState


class TestSequence:
    def test_defaults(self):
        seq = Sequence()
        assert len(seq) == 0
        assert not seq
        assert seq.score == float("-inf")

    def test_prepend(self):
        seq = Sequence((1, 2), 5.0)
        new = seq.prepend(0)
        assert new.moves == (0, 1, 2)
        assert new.score == 5.0
        assert seq.moves == (1, 2)  # original untouched

    def test_extend_front(self):
        seq = Sequence((2,), 1.0)
        assert seq.extend_front([0, 1]).moves == (0, 1, 2)

    def test_better_than(self):
        assert Sequence((), 3.0).better_than(None)
        assert Sequence((), 3.0).better_than(Sequence((), 2.0))
        assert not Sequence((), 2.0).better_than(Sequence((), 2.0))

    def test_iteration(self):
        assert list(Sequence((1, 2, 3), 0.0)) == [1, 2, 3]


class TestPlaySequence:
    def test_plays_all_moves(self):
        state = LeftMoveState(depth=4, branching=2)
        final = play_sequence(state, [0, 0, 1, 0])
        assert final.moves_played() == 4
        assert final.score() == 3.0

    def test_original_not_modified(self):
        state = LeftMoveState(depth=4, branching=2)
        play_sequence(state, [0, 0])
        assert state.moves_played() == 0

    def test_illegal_move_raises(self):
        state = LeftMoveState(depth=2, branching=2)
        with pytest.raises(ValueError, match="illegal"):
            play_sequence(state, [0, 0, 0])  # third move after game end

    def test_replay_returns_recomputed_score(self):
        state = LeftMoveState(depth=3, branching=2)
        seq = Sequence((0, 0, 0), score=123.0)  # stored score is a lie
        assert replay(state, seq) == 3.0

    def test_legal_after(self):
        state = LeftMoveState(depth=2, branching=3)
        assert legal_after(state, [0]) == [0, 1, 2]
        assert legal_after(state, [0, 1]) == []


class TestPlayouts:
    def test_random_playout_reaches_terminal(self):
        state = LeftMoveState(depth=10, branching=3)
        score, moves = random_playout(state, random.Random(0))
        assert len(moves) == 10
        assert 0.0 <= score <= 10.0
        assert state.moves_played() == 0  # non-destructive

    def test_playout_from_mutates(self):
        state = LeftMoveState(depth=5, branching=2)
        playout_from(state, random.Random(1))
        assert state.is_terminal()

    def test_playout_deterministic_given_rng(self):
        s1, m1 = random_playout(LeftMoveState(depth=8), random.Random(42))
        s2, m2 = random_playout(LeftMoveState(depth=8), random.Random(42))
        assert (s1, m1) == (s2, m2)

    def test_playout_counts_work(self):
        counter = WorkCounter()
        random_playout(LeftMoveState(depth=7), random.Random(0), counter)
        assert counter.moves == 7
        assert counter.playouts == 1

    def test_playout_on_terminal_state(self):
        state = LeftMoveState(depth=0)
        score, moves = random_playout(state, random.Random(0))
        assert moves == ()
        assert score == 0.0
