"""Tests for the machine-readable copy of the paper's reported numbers."""

from __future__ import annotations

import pytest

from repro.paperdata import (
    PAPER_SPEEDUPS,
    TABLE_I,
    TABLE_II,
    TABLE_III,
    TABLE_IV,
    TABLE_V,
    TABLE_VI,
    paper_speedup,
)


class TestPaperTables:
    def test_table1_ratios_match_text(self):
        level3 = TABLE_I[3]
        level4 = TABLE_I[4]
        # "level 4 takes approximately 207 times more time than level 3"
        assert level4["first_move"].seconds / level3["first_move"].seconds == pytest.approx(
            209, rel=0.05
        )
        # "One rollout takes approximately 9 times more time than the first move"
        assert level3["rollout"].seconds / level3["first_move"].seconds == pytest.approx(
            8.4, rel=0.05
        )

    def test_table2_speedups_match_text(self):
        # "The speedup of the algorithm for 64 clients is 56"
        assert paper_speedup(TABLE_II, 64, 3) == pytest.approx(54.7, rel=0.02)
        # "The result for 32 clients ... speedup is 29.8" (paper uses 9m07s -> wait, 547/20)
        assert paper_speedup(TABLE_II, 32, 3) == pytest.approx(27.4, rel=0.02)
        # "Concerning level 4 the speedup is 28.50 for 32 clients"
        assert paper_speedup(TABLE_II, 32, 4) == pytest.approx(27.8, rel=0.05)

    def test_table3_rollout_speedup(self):
        # "The speedup of the algorithm for 64 clients is 44"
        assert paper_speedup(TABLE_III, 64, 3) == pytest.approx(46.3, rel=0.05)

    def test_last_minute_beats_round_robin_at_level4(self):
        assert TABLE_IV[64][4].seconds < TABLE_II[64][4].seconds
        assert TABLE_V[64][4].seconds < TABLE_III[64][4].seconds

    def test_table6_lm_beats_rr_everywhere(self):
        for config in ("16x4+16x2", "8x4+8x2"):
            for level in (3, 4):
                assert TABLE_VI[(config, "LM")][level].seconds <= TABLE_VI[(config, "RR")][level].seconds

    def test_table6_level4_advantage_is_large(self):
        ratio = TABLE_VI[("16x4+16x2", "RR")][4].seconds / TABLE_VI[("16x4+16x2", "LM")][4].seconds
        assert ratio > 1.5

    def test_single_run_entries_marked(self):
        assert TABLE_I[4]["rollout"].single_run
        assert TABLE_II[16][4].single_run
        assert not TABLE_II[64][3].single_run

    def test_speedup_constants_present(self):
        assert PAPER_SPEEDUPS["frequency_ratio_r"] == pytest.approx(1.09)
        assert PAPER_SPEEDUPS["rr_first_move_64_clients_level3"] == 56.0

    def test_monotone_in_clients(self):
        for table in (TABLE_II, TABLE_III, TABLE_IV, TABLE_V):
            level3 = {c: entry[3].seconds for c, entry in table.items() if 3 in entry}
            ordered = [level3[c] for c in sorted(level3)]
            assert ordered == sorted(ordered, reverse=True)
