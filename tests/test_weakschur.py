"""Tests for the Weak Schur partitioning domain (repro.games.weakschur)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.games.weakschur import WeakSchurState


class TestRules:
    def test_initial_moves(self):
        state = WeakSchurState(k=3)
        assert state.legal_moves() == [0, 1, 2]
        assert state.next_integer() == 1

    def test_sum_constraint_blocks_part(self):
        state = WeakSchurState(k=2)
        state.apply(0)  # 1 -> part 0
        state.apply(0)  # 2 -> part 0
        # 3 = 1 + 2 cannot join part 0
        assert state.legal_moves() == [1]

    def test_same_value_twice_not_a_violation(self):
        # Weak sum-freeness only forbids x + y = z with x != y, so {1, 2} is fine
        # but {2, 4} with 2 + 2 = 4 is also allowed (x and y must be distinct).
        state = WeakSchurState(k=1)
        state.apply(0)  # 1
        state.apply(0)  # 2
        # 3 = 1+2 is forbidden in part 0, so the game ends with k=1
        assert state.legal_moves() == []

    def test_limit_stops_game(self):
        state = WeakSchurState(k=3, limit=2)
        state.apply(0)
        state.apply(1)
        assert state.is_terminal()
        with pytest.raises(ValueError):
            state.apply(0)

    def test_apply_illegal_part_raises(self):
        state = WeakSchurState(k=2)
        with pytest.raises(ValueError):
            state.apply(5)

    def test_apply_violating_placement_raises(self):
        state = WeakSchurState(k=2)
        state.apply(0)  # 1
        state.apply(0)  # 2
        with pytest.raises(ValueError):
            state.apply(0)  # 3 = 1 + 2

    def test_score_is_largest_placed(self):
        state = WeakSchurState(k=3)
        for _ in range(5):
            state.apply(state.legal_moves()[0])
        assert state.score() == 5.0
        assert state.moves_played() == 5

    def test_construction_validation(self):
        with pytest.raises(ValueError):
            WeakSchurState(k=0)
        with pytest.raises(ValueError):
            WeakSchurState(limit=0)

    def test_copy_independent(self):
        state = WeakSchurState(k=2)
        clone = state.copy()
        clone.apply(0)
        assert state.next_integer() == 1
        assert clone.next_integer() == 2

    def test_known_weak_schur_bound_k2(self):
        # With 2 parts the largest reachable n is 8 (WS(2) = 8): a perfect play
        # exists, and no play can ever place 9 integers.
        best = 0
        for seed in range(30):
            state = WeakSchurState(k=2)
            rng = random.Random(seed)
            while not state.is_terminal():
                state.apply(rng.choice(state.legal_moves()))
            best = max(best, state.score())
        assert best <= 8


@settings(max_examples=30, deadline=None)
@given(k=st.integers(1, 4), seed=st.integers(0, 1000))
def test_property_partitions_always_valid(k, seed):
    state = WeakSchurState(k=k, limit=25)
    rng = random.Random(seed)
    while not state.is_terminal():
        state.apply(rng.choice(state.legal_moves()))
    assert state.is_valid_partition()
    placed = sorted(x for part in state.parts() for x in part)
    assert placed == list(range(1, int(state.score()) + 1))
