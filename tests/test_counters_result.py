"""Tests for work counters and search-result containers (repro.core)."""

from __future__ import annotations

import pytest

from repro.core.counters import NULL_COUNTER, WorkCounter
from repro.core.result import BestTracker, SearchResult
from repro.games.leftmove import LeftMoveState


class TestWorkCounter:
    def test_add_moves_counts_playouts(self):
        counter = WorkCounter()
        counter.add_moves(10)
        counter.add_moves(5)
        assert counter.moves == 15
        assert counter.playouts == 2

    def test_add_step_and_nested(self):
        counter = WorkCounter()
        counter.add_step()
        counter.add_step(3)
        counter.add_nested_call()
        assert counter.moves == 4
        assert counter.nested_calls == 1
        assert counter.playouts == 0

    def test_merge_and_add(self):
        a = WorkCounter(moves=3, playouts=1, nested_calls=0)
        b = WorkCounter(moves=4, playouts=2, nested_calls=1)
        a.merge(b)
        assert (a.moves, a.playouts, a.nested_calls) == (7, 3, 1)
        c = a + b
        assert c.moves == 11

    def test_snapshot_is_independent(self):
        counter = WorkCounter()
        snap = counter.snapshot()
        counter.add_moves(5)
        assert snap.moves == 0

    def test_reset(self):
        counter = WorkCounter(moves=5, playouts=2, nested_calls=1)
        counter.reset()
        assert counter.moves == counter.playouts == counter.nested_calls == 0

    def test_null_counter_ignores_everything(self):
        NULL_COUNTER.add_moves(100)
        NULL_COUNTER.add_step(5)
        NULL_COUNTER.add_nested_call()
        assert NULL_COUNTER.moves == 0
        assert NULL_COUNTER.playouts == 0


class TestSearchResult:
    def test_verify_true_for_honest_result(self):
        state = LeftMoveState(depth=3, branching=2)
        result = SearchResult(score=3.0, sequence=(0, 0, 0))
        assert result.verify(state)

    def test_verify_false_for_wrong_score(self):
        state = LeftMoveState(depth=3, branching=2)
        result = SearchResult(score=99.0, sequence=(0, 0, 0))
        assert not result.verify(state)

    def test_final_state_and_as_sequence(self):
        state = LeftMoveState(depth=2, branching=2)
        result = SearchResult(score=1.0, sequence=(0, 1))
        final = result.final_state(state)
        assert final.is_terminal()
        assert result.as_sequence().moves == (0, 1)


class TestBestTracker:
    def test_initially_empty(self):
        tracker = BestTracker()
        assert not tracker.has_sequence()
        assert tracker.best() == (float("-inf"), ())

    def test_offer_keeps_strictly_better(self):
        tracker = BestTracker()
        assert tracker.offer(5.0, (1,))
        assert not tracker.offer(5.0, (2,))  # ties keep the earlier sequence
        assert tracker.best() == (5.0, (1,))
        assert tracker.offer(6.0, (3,))
        assert tracker.best() == (6.0, (3,))

    def test_offer_copies_sequence(self):
        tracker = BestTracker()
        moves = [1, 2]
        tracker.offer(1.0, tuple(moves))
        moves.append(3)
        assert tracker.best()[1] == (1, 2)
