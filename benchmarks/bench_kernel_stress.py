"""Kernel stress benchmark: the high-latency completion-reschedule regime.

The scenario the ROADMAP flagged as CPU-pathological: ``latency_s=0.5`` (a
network round-trip ~1000x longer than a demo job) with up to 64 client
processes oversubscribed onto a single node.  Under the pre-rewrite node
scheduler this spun for minutes of wall time (every arrival/completion
cancelled and re-pushed a completion event per running computation, and
float drift re-fired full reschedules); under virtual-work-time scheduling
it completes in milliseconds with one live completion event per node.

Beyond timing the 64-client run, the benchmark asserts the structural fix:
total events fired grow ~linearly (not quadratically) in the client count,
and the whole sweep respects a hard wall-time budget so the storm can never
regress silently (CI runs this file as a smoke job).

Each session appends an entry to ``results/BENCH_kernel_stress.json`` — the
perf trajectory of the kernel across sessions.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from conftest import write_result
from repro.api import Engine, SearchSpec
from repro.cluster.network import NetworkModel

#: Latency ~1000x the mean demo job duration: the pathological ratio.
STRESS_LATENCY_S = 0.5
CLIENT_COUNTS = (8, 16, 32, 64)
#: Hard budget for the full sweep.  The rewritten kernel needs well under a
#: second; the seed kernel did not finish the 8-client cell in 10 minutes.
WALL_BUDGET_S = 60.0

TRAJECTORY = Path(__file__).parent / "results" / "BENCH_kernel_stress.json"


def run_stress(n_clients: int):
    """One pathological cell: oversubscribed single node, huge latency."""
    engine = Engine(network=NetworkModel(latency_s=STRESS_LATENCY_S))
    spec = SearchSpec(
        workload="leftmove",
        backend="sim-cluster",
        dispatcher="lm",
        cluster="single",
        n_clients=n_clients,
        n_medians=8,
        max_steps=1,
    )
    return engine.run(spec)


def append_trajectory_entry(entry: dict) -> None:
    """Append one perf-trajectory record (the file is a JSON array)."""
    TRAJECTORY.parent.mkdir(exist_ok=True)
    history = []
    if TRAJECTORY.is_file():
        history = json.loads(TRAJECTORY.read_text(encoding="utf-8"))
    history.append(entry)
    TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")


@pytest.mark.benchmark(group="kernel-stress")
def test_kernel_stress_event_storm(benchmark, results_dir):
    wall_start = time.perf_counter()
    by_clients = {}
    for n in CLIENT_COUNTS:
        t0 = time.perf_counter()
        report = run_stress(n)
        cell_wall = time.perf_counter() - t0
        stats = report.kernel_stats
        assert stats is not None
        by_clients[n] = {
            "wall_seconds": round(cell_wall, 4),
            "events_fired": stats["events_fired"],
            "events_cancelled": stats["events_cancelled"],
            "peak_queue_size": stats["peak_queue_size"],
            "simulated_seconds": stats["simulated_seconds"],
            "score": report.score,
        }
    sweep_wall = time.perf_counter() - wall_start

    # The benchmarked figure: the headline 64-client pathological cell.
    benchmark(run_stress, 64)

    # Structural assertions — the storm must stay dead:
    # (1) events grow ~linearly in the client count (8x clients allows 8x
    #     events; the quadratic storm would be 64x),
    ratio = by_clients[64]["events_fired"] / by_clients[8]["events_fired"]
    assert ratio <= 8.0, f"event growth ratio {ratio:.1f} suggests superlinear scheduling"
    # (2) the whole sweep respects the wall budget,
    assert sweep_wall < WALL_BUDGET_S, f"stress sweep took {sweep_wall:.1f}s"
    # (3) cancelled events stay a minority (no cancel/re-push churn), and
    #     all runs produced the optimal leftmove first move.
    for n, cell in by_clients.items():
        assert cell["events_cancelled"] < cell["events_fired"], (n, cell)
        assert cell["score"] > 0.0, (n, cell)

    entry = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "kernel": "virtual-work-time",
        "scenario": {
            "workload": "leftmove",
            "dispatcher": "lm",
            "cluster": "single",
            "latency_s": STRESS_LATENCY_S,
            "max_steps": 1,
            "n_medians": 8,
        },
        "by_clients": by_clients,
        "sweep_wall_seconds": round(sweep_wall, 3),
        "event_growth_ratio_64_over_8": round(ratio, 3),
    }
    append_trajectory_entry(entry)

    lines = [
        "Kernel stress (latency_s=0.5, single oversubscribed node, LM first-move)",
        f"{'clients':>8s} {'wall_s':>8s} {'events':>8s} {'cancelled':>10s} {'peak_q':>7s}",
    ]
    for n, cell in by_clients.items():
        lines.append(
            f"{n:8d} {cell['wall_seconds']:8.3f} {cell['events_fired']:8d} "
            f"{cell['events_cancelled']:10d} {cell['peak_queue_size']:7d}"
        )
    lines.append(f"sweep wall: {sweep_wall:.2f}s  event growth 64/8: {ratio:.2f}x")
    write_result(results_dir, "kernel_stress", "\n".join(lines))
