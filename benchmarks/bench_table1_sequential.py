"""Table I — times for the sequential algorithm (first move and one rollout).

The paper reports, for the full 5D game, 8m03s / 1h07m33s at level 3 and
28h00m06s / ~9.8 days at level 4, i.e. a level-to-level factor of ~207 and a
rollout-to-first-move factor of ~9.  This benchmark regenerates the same table
on the scaled workload and checks those two *ratios* rather than the absolute
seconds.
"""

from __future__ import annotations

import pytest

from conftest import FULL_BENCH, MASTER_SEED, write_result
from repro.experiments import run_table1_sequential
from repro.paperdata import PAPER_SPEEDUPS


@pytest.mark.benchmark(group="table1")
def test_table1_sequential_times(benchmark, bench_workload, bench_cost_model, results_dir):
    lo, hi = bench_workload.low_level, bench_workload.high_level

    def run():
        return run_table1_sequential(
            bench_workload,
            levels=[lo, hi],
            # The high-level full rollout is by far the most expensive
            # sequential run; it is only included in full-scale sessions.
            rollout_levels=[lo, hi] if FULL_BENCH else [lo],
            master_seed=MASTER_SEED,
            cost_model=bench_cost_model,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    ratios = result.data["ratios"]

    text = result.render() + "\n\n" + "\n".join(
        f"{name}: {value:.1f}x" for name, value in ratios.items()
    )
    write_result(results_dir, "table1_sequential", text)
    benchmark.extra_info["ratios"] = {k: round(v, 2) for k, v in ratios.items()}

    # Shape checks: the high level is far more expensive than the low level,
    # and a full rollout costs several times the first move (paper: ~207x, ~9x).
    assert ratios["high_over_low_first_move"] > 10.0
    assert ratios[f"rollout_over_first_move_level{lo}"] > 3.0
    # The paper's own ratios, for the report.
    benchmark.extra_info["paper_level_ratio"] = PAPER_SPEEDUPS["table1_level4_over_level3_first_move"]
    benchmark.extra_info["paper_rollout_ratio"] = PAPER_SPEEDUPS["table1_rollout_over_first_move_level3"]
