"""Shared fixtures for the benchmark harness.

All cluster-scale benchmarks share one :class:`CachingJobExecutor` and one
calibrated cost model so that every search job of the common workload is
executed exactly once per benchmark session, however many tables ask for it
(the paper's Tables II, IV and VI all reuse the same first-move workload, and
Tables III and V share the rollout workload).

Environment knobs
-----------------
``REPRO_BENCH_WORKLOAD``  (default ``morpion-small``)
    Which named workload the cluster benchmarks run on.
``REPRO_BENCH_FULL=1``
    Also run the expensive high-level rollout columns (Tables III and V at the
    high nesting level).  Off by default to keep the default benchmark run in
    the minutes range.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import calibrated_cost_model
from repro.lab import ResultStore
from repro.parallel.jobs import CachingJobExecutor
from repro.workloads import get_workload

RESULTS_DIR = Path(__file__).parent / "results"

#: Paper columns: the scaled workload's low/high levels stand in for levels 3/4.
BENCH_WORKLOAD_NAME = os.environ.get("REPRO_BENCH_WORKLOAD", "morpion-small")
FULL_BENCH = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
MASTER_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))


@pytest.fixture(scope="session")
def bench_workload():
    """The workload every cluster-scale benchmark runs on."""
    return get_workload(BENCH_WORKLOAD_NAME)


@pytest.fixture(scope="session")
def bench_executor():
    """One shared job cache for the whole benchmark session."""
    return CachingJobExecutor()


@pytest.fixture(scope="session")
def bench_cost_model(bench_workload):
    """Cost model calibrated so the workload sits on the paper's timescale."""
    return calibrated_cost_model(bench_workload, master_seed=MASTER_SEED)


@pytest.fixture(scope="session")
def bench_store(tmp_path_factory):
    """A fresh per-session ResultStore shared by the sweep benchmarks.

    Fresh (not persistent across sessions) on purpose: the benchmarks measure
    execution, and a pre-populated store would time cache lookups instead.
    Within the session it makes every sweep cell durable, so overlapping
    tables and re-parameterised runs never recompute a cell.
    """
    return ResultStore(tmp_path_factory.mktemp("result-store"))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: Path, name: str, text: str) -> None:
    """Persist a rendered table next to the benchmarks for EXPERIMENTS.md."""
    (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
