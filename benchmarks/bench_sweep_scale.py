"""Sweep-scale benchmark: process-parallel sweep execution vs serial.

The sweep layer's cells are pure CPU (simulated clusters burn real cycles in
one Python process), so a thread pool cannot scale them past the GIL.  This
benchmark times the same seeded grid executed serially and sharded across the
persistent worker-process pool (``Engine.run_many(..., executor="process")``,
see :mod:`repro.lab.procpool`) at 2/4/8 workers, and — before looking at any
clock — asserts the *contract* that makes the speedup meaningful: every mode
leaves byte-identical science in its :class:`~repro.lab.ResultStore` (same
keys, same scores, same move sequences).

Honest-numbers note: speedup is bounded by physical cores.  Each trajectory
entry records ``cpu_count`` alongside the timings, and the ≥2.5x speedup
floor at 4 workers is only asserted when the machine actually has ≥4 CPUs —
on a 1-core container the expected speedup is ~1.0x and the entry says so
rather than flattering the pool.

Each session appends an entry to ``results/BENCH_sweep_scale.json`` — the
scaling trajectory of the sweep executor across sessions (linked from the
ROADMAP's dispatcher-science item).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import write_result
from repro.api import Engine, SearchSpec
from repro.lab import ResultStore, SweepSpec, close_shared_sweep_pool

#: A CPU-bound grid: 8 independent level-2 Weak Schur searches (~0.3s each
#: serially on the reference container), varied only by seed so every cell
#: does comparable work.
GRID = SweepSpec(
    base=SearchSpec(workload="weakschur", level=2),
    axes={"seed": tuple(range(8))},
    name="sweep-scale",
)
WORKER_COUNTS = (2, 4, 8)
#: Speedup floor at 4 workers — asserted only on machines with >= 4 CPUs.
SPEEDUP_FLOOR_AT_4 = 2.5

TRAJECTORY = Path(__file__).parent / "results" / "BENCH_sweep_scale.json"


def append_trajectory_entry(entry: dict) -> None:
    """Append one scaling-trajectory record (the file is a JSON array)."""
    TRAJECTORY.parent.mkdir(exist_ok=True)
    history = []
    if TRAJECTORY.is_file():
        history = json.loads(TRAJECTORY.read_text(encoding="utf-8"))
    history.append(entry)
    TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")


def _science(store: ResultStore) -> dict:
    """The store's content reduced to what must match across executors."""
    return {
        record["key"]: (
            record["report"]["score"],
            tuple(record["report"]["sequence"]),
            record["report"]["work_units"],
        )
        for record in store.records()
    }


def test_sweep_scale_process_pool(results_dir, tmp_path):
    engine = Engine()

    serial_store = ResultStore(tmp_path / "serial")
    t0 = time.perf_counter()
    engine.run_many(GRID, store=serial_store)
    serial_wall = time.perf_counter() - t0
    serial_science = _science(serial_store)
    assert len(serial_science) == len(GRID)

    by_workers = {}
    try:
        for n_workers in WORKER_COUNTS:
            close_shared_sweep_pool()  # time each pool size from a cold start
            store = ResultStore(tmp_path / f"proc-{n_workers}")
            t0 = time.perf_counter()
            engine.run_many(
                GRID, store=store, executor="process", max_workers=n_workers
            )
            wall = time.perf_counter() - t0
            # Correctness before speed: identical keys, scores and sequences.
            assert _science(store) == serial_science, (
                f"process pool ({n_workers} workers) stored different science"
            )
            by_workers[n_workers] = {
                "wall_seconds": round(wall, 4),
                "speedup_vs_serial": round(serial_wall / wall, 3),
            }
    finally:
        close_shared_sweep_pool()

    cpu_count = os.cpu_count() or 1
    if cpu_count >= 4:
        speedup = by_workers[4]["speedup_vs_serial"]
        assert speedup >= SPEEDUP_FLOOR_AT_4, (
            f"4 process workers on {cpu_count} CPUs only reached "
            f"{speedup:.2f}x over serial (floor {SPEEDUP_FLOOR_AT_4}x)"
        )

    entry = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "executor": "process",
        "cpu_count": cpu_count,
        "scenario": {
            "workload": GRID.base.workload,
            "level": GRID.base.level,
            "cells": len(GRID),
            "backend": GRID.base.backend,
        },
        "serial_wall_seconds": round(serial_wall, 4),
        "by_workers": by_workers,
        "stores_identical_to_serial": True,
    }
    append_trajectory_entry(entry)

    lines = [
        f"Sweep scale ({len(GRID)} x level-{GRID.base.level} {GRID.base.workload} "
        f"cells, {cpu_count} CPUs)",
        f"{'workers':>8s} {'wall_s':>8s} {'speedup':>8s}",
        f"{'serial':>8s} {serial_wall:8.3f} {'1.00x':>8s}",
    ]
    for n_workers, cell in by_workers.items():
        lines.append(
            f"{n_workers:8d} {cell['wall_seconds']:8.3f} "
            f"{cell['speedup_vs_serial']:7.2f}x"
        )
    write_result(results_dir, "sweep_scale", "\n".join(lines))
