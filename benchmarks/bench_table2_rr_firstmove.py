"""Table II — first-move times for the Round-Robin algorithm (1..64 clients).

Paper shape to reproduce: the time drops roughly linearly up to tens of
clients (speedup 56 at 64 clients, 29.8 at 32 for level 3; 28.5 at 32 clients
for level 4).
"""

from __future__ import annotations

import pytest

from _sweep import run_sweep_benchmark
from repro.paperdata import TABLE_II


@pytest.mark.benchmark(group="table2")
def test_table2_round_robin_first_move(
    benchmark, bench_workload, bench_executor, bench_cost_model, results_dir, bench_store
):
    sweep = run_sweep_benchmark(
        benchmark,
        bench_workload,
        bench_executor,
        bench_cost_model,
        results_dir,
        dispatcher="rr",
        experiment="first_move",
        result_name="table2_rr_firstmove",
        paper_table=TABLE_II,
        bench_store=bench_store,
    )
    # The high level parallelises at least as well as the low level at 64
    # clients (the paper's headline speedup of ~56 is at the highest level).
    lo, hi = bench_workload.low_level, bench_workload.high_level
    assert sweep.speedups[hi][64] >= sweep.speedups[lo][64]
    assert sweep.speedups[hi][64] > 30.0
