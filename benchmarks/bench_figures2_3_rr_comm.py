"""Figures 2 and 3 — communication pattern and overlap of the Round-Robin algorithm.

Figure 2 enumerates the communications (a) root→median, (b) median→dispatcher→
median→client, (c) client→median and (d) median→root; Figure 3 shows that they
(and the client computations they trigger) overlap in time.  The benchmark
classifies every traced message of a Round-Robin run, verifies the pattern and
measures the client-computation overlap.
"""

from __future__ import annotations

import pytest

from conftest import MASTER_SEED, write_result
from repro.experiments import run_figure_communications
from repro.parallel.config import DispatcherKind


@pytest.mark.benchmark(group="figures2-3")
def test_figures_2_3_round_robin_communications(
    benchmark, bench_workload, bench_executor, results_dir
):
    def run():
        return run_figure_communications(
            DispatcherKind.ROUND_ROBIN,
            workload=bench_workload,
            level=bench_workload.low_level,
            n_clients=8,
            master_seed=MASTER_SEED,
            executor=bench_executor,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    summary = result.data["summary"]
    write_result(results_dir, "figures2_3_rr_comm", result.render())
    benchmark.extra_info["max_concurrency"] = summary.max_client_concurrency

    # Figure 2: the pattern holds (every request answered, every job returns a
    # result, no Last-Minute notifications in Round-Robin mode).
    assert result.data["violations"] == []
    assert summary.count("a: root->median task") > 0
    assert summary.count("c': client->dispatcher free") == 0
    # Figure 3: client computations really overlap (parallel communications).
    assert summary.max_client_concurrency > 1
    assert summary.n_clients_used == 8
