"""Table III — full-rollout times for the Round-Robin algorithm (1..64 clients).

Paper shape to reproduce: rollouts parallelise slightly less well than first
moves (speedup 44 at 64 clients vs 56 for the first move), because the root's
later steps have fewer legal moves to distribute.
"""

from __future__ import annotations

import pytest

from _sweep import run_sweep_benchmark
from repro.paperdata import TABLE_III


@pytest.mark.benchmark(group="table3")
def test_table3_round_robin_rollout(
    benchmark, bench_workload, bench_executor, bench_cost_model, results_dir, bench_store
):
    run_sweep_benchmark(
        benchmark,
        bench_workload,
        bench_executor,
        bench_cost_model,
        results_dir,
        dispatcher="rr",
        experiment="rollout",
        result_name="table3_rr_rollout",
        paper_table=TABLE_III,
        bench_store=bench_store,
    )
