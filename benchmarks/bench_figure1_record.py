"""Figure 1 — the best Morpion sequence found, rendered as a numbered grid.

The paper's figure shows an 80-move world-record grid found by the parallel
level-4 search on the full 5D board.  At benchmark scale the same code path
(parallel search for the longest sequence, then grid rendering) runs on the
scaled board; the rendered grid is written to ``benchmarks/results``.
"""

from __future__ import annotations

import pytest

from conftest import MASTER_SEED, write_result
from repro.experiments import run_figure1_record
from repro.games.morpion.records import RECORD_SCORES


@pytest.mark.benchmark(group="figure1")
def test_figure1_record_grid(benchmark, bench_workload, bench_executor, results_dir):
    def run():
        return run_figure1_record(
            workload=bench_workload,
            level=bench_workload.low_level,
            n_clients=16,
            master_seed=MASTER_SEED,
            executor=bench_executor,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    score = result.data["result"].score
    grid = result.data["grid"]
    write_result(
        results_dir,
        "figure1_record",
        result.render()
        + f"\n\n(paper record on the full 5D board: {RECORD_SCORES['parallel_nmcs_paper']} moves)\n\n"
        + grid,
    )
    benchmark.extra_info["best_score"] = score

    # Shape checks: the search finds a non-trivial sequence, every played move
    # appears in the rendered grid, and the sequence replays legally.
    assert score > 0
    assert str(int(score)) in grid
    assert result.data["result"].verify(bench_workload.state())
