"""Ablations of the Last-Minute dispatcher design (DESIGN.md §5).

1. **Job ordering** — the paper orders pending jobs by the smallest number of
   moves played (longest expected remaining computation first).  The ablation
   compares that policy against plain FIFO ordering on an oversubscribed
   heterogeneous cluster.
2. **Number of medians** — the paper uses 40 medians, "greater than the number
   of possible moves"; the ablation measures what happens when medians are
   scarce and the root fan-out serialises.
"""

from __future__ import annotations

import pytest

from conftest import MASTER_SEED, write_result
from repro.cluster.topology import heterogeneous_cluster, homogeneous_cluster
from repro.parallel.config import DispatcherKind, ParallelConfig
from repro.parallel.driver import run_parallel_nmcs
from repro.analysis.timefmt import format_hms


def _run(bench_workload, bench_executor, bench_cost_model, cluster, **config_kwargs):
    config = ParallelConfig(
        level=bench_workload.high_level,
        max_root_steps=1,
        master_seed=MASTER_SEED,
        n_medians=config_kwargs.pop("n_medians", 40),
        **config_kwargs,
    )
    return run_parallel_nmcs(
        bench_workload.state(), config, cluster, executor=bench_executor, cost_model=bench_cost_model
    )


@pytest.mark.benchmark(group="ablation-lm-ordering")
def test_ablation_lm_job_ordering(
    benchmark, bench_workload, bench_executor, bench_cost_model, results_dir
):
    cluster = heterogeneous_cluster(16, 16)

    def run():
        longest_first = _run(
            bench_workload, bench_executor, bench_cost_model, cluster,
            dispatcher=DispatcherKind.LAST_MINUTE, lm_fifo_jobs=False,
        )
        fifo = _run(
            bench_workload, bench_executor, bench_cost_model, cluster,
            dispatcher=DispatcherKind.LAST_MINUTE, lm_fifo_jobs=True,
        )
        return longest_first, fifo

    longest_first, fifo = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "Last-Minute job ordering ablation (16x4+16x2, high level, first move)\n"
        f"longest-expected-first: {format_hms(longest_first.simulated_seconds)}\n"
        f"FIFO:                   {format_hms(fifo.simulated_seconds)}\n"
        f"FIFO / longest-first:   {fifo.simulated_seconds / longest_first.simulated_seconds:.3f}"
    )
    write_result(results_dir, "ablation_lm_ordering", text)
    # Both orderings return the same search result; the paper's ordering is not
    # slower than FIFO beyond a small tolerance.
    assert longest_first.result.sequence == fifo.result.sequence
    assert longest_first.simulated_seconds <= fifo.simulated_seconds * 1.05


@pytest.mark.benchmark(group="ablation-medians")
def test_ablation_median_count(
    benchmark, bench_workload, bench_executor, bench_cost_model, results_dir
):
    cluster = homogeneous_cluster(32)

    def run():
        return {
            n: _run(
                bench_workload, bench_executor, bench_cost_model, cluster,
                dispatcher=DispatcherKind.ROUND_ROBIN, n_medians=n,
            ).simulated_seconds
            for n in (1, 4, 40)
        }

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "Median-count ablation (32 clients, high level, first move)\n" + "\n".join(
        f"{n:3d} medians: {format_hms(seconds)}" for n, seconds in times.items()
    )
    write_result(results_dir, "ablation_medians", text)
    benchmark.extra_info["times"] = {str(k): round(v, 1) for k, v in times.items()}
    # A single median serialises the root fan-out and is clearly slower than
    # the paper's 40-median configuration.
    assert times[1] > times[40] * 1.5
    assert times[4] >= times[40] * 0.99
