"""Figures 4 and 5 — communication pattern and overlap of the Last-Minute algorithm.

Figure 4 adds the (c') client→dispatcher "I am free" notification to the
Round-Robin pattern; Figure 5 shows the communications again overlap.  The
benchmark verifies both, and additionally that the extra notifications are
exactly one per client job.
"""

from __future__ import annotations

import pytest

from conftest import MASTER_SEED, write_result
from repro.experiments import run_figure_communications
from repro.parallel.config import DispatcherKind


@pytest.mark.benchmark(group="figures4-5")
def test_figures_4_5_last_minute_communications(
    benchmark, bench_workload, bench_executor, results_dir
):
    def run():
        return run_figure_communications(
            DispatcherKind.LAST_MINUTE,
            workload=bench_workload,
            level=bench_workload.low_level,
            n_clients=8,
            master_seed=MASTER_SEED,
            executor=bench_executor,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    summary = result.data["summary"]
    write_result(results_dir, "figures4_5_lm_comm", result.render())
    benchmark.extra_info["max_concurrency"] = summary.max_client_concurrency

    # Figure 4: the (c') edge exists and matches the number of client jobs.
    assert result.data["violations"] == []
    assert summary.count("c': client->dispatcher free") == summary.count("b3: median->client job")
    # Figure 5: the client computations overlap.
    assert summary.max_client_concurrency > 1
