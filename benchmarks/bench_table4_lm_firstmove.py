"""Table IV — first-move times for the Last-Minute algorithm (1..64 clients).

Paper shape to reproduce: similar to Round-Robin at the low level, slightly
better at the high level (27m20s vs 33m11s at 64 clients for level 4).
"""

from __future__ import annotations

import pytest

from _sweep import run_sweep_benchmark
from conftest import MASTER_SEED
from repro.experiments import run_client_sweep
from repro.paperdata import TABLE_IV


@pytest.mark.benchmark(group="table4")
def test_table4_last_minute_first_move(
    benchmark, bench_workload, bench_executor, bench_cost_model, results_dir, bench_store
):
    lm = run_sweep_benchmark(
        benchmark,
        bench_workload,
        bench_executor,
        bench_cost_model,
        results_dir,
        dispatcher="lm",
        experiment="first_move",
        result_name="table4_lm_firstmove",
        paper_table=TABLE_IV,
        bench_store=bench_store,
    )
    # Compare against Round-Robin at the high level / 64 clients (cached jobs,
    # so this re-simulation is cheap): Last-Minute must not be slower by more
    # than a small tolerance, and the paper finds it strictly faster.
    hi = bench_workload.high_level
    rr = run_client_sweep(
        "rr",
        experiment="first_move",
        workload=bench_workload,
        levels=[hi],
        client_counts=[64],
        master_seed=MASTER_SEED,
        executor=bench_executor,
        cost_model=bench_cost_model,
    )
    assert lm.times[hi][64] <= rr.times[hi][64] * 1.05
