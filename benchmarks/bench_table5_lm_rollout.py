"""Table V — full-rollout times for the Last-Minute algorithm (1..64 clients).

Paper shape to reproduce: slightly better than the Round-Robin rollouts
(1m32s vs 1m52s at 64 clients for level 3; 4h10m vs 5h09m for level 4).
"""

from __future__ import annotations

import pytest

from _sweep import run_sweep_benchmark, sweep_levels
from conftest import MASTER_SEED
from repro.experiments import DEFAULT_CLIENT_COUNTS, run_client_sweep
from repro.paperdata import TABLE_V


@pytest.mark.benchmark(group="table5")
def test_table5_last_minute_rollout(
    benchmark, bench_workload, bench_executor, bench_cost_model, results_dir, bench_store
):
    lm = run_sweep_benchmark(
        benchmark,
        bench_workload,
        bench_executor,
        bench_cost_model,
        results_dir,
        dispatcher="lm",
        experiment="rollout",
        result_name="table5_lm_rollout",
        paper_table=TABLE_V,
        bench_store=bench_store,
    )
    # Last-Minute rollouts stay within a few percent of Round-Robin rollouts
    # on the homogeneous sweep (the paper reports a slight LM advantage).
    lo = bench_workload.low_level
    rr = run_client_sweep(
        "rr",
        experiment="rollout",
        workload=bench_workload,
        levels=[lo],
        client_counts=[64],
        master_seed=MASTER_SEED,
        executor=bench_executor,
        cost_model=bench_cost_model,
    )
    assert lm.times[lo][64] <= rr.times[lo][64] * 1.10
