"""Micro-benchmarks of the sequential search primitives (real wall clock).

These are conventional pytest-benchmark timings (not simulated): the cost of a
random playout, of a level-1 NMCS step and of the baselines on the scaled
Morpion board.  They document the constant factors behind the cost-model
calibration and catch performance regressions in the Morpion move generator.
"""

from __future__ import annotations

import pytest

from repro.core.flat import flat_monte_carlo
from repro.core.nested import nested_search
from repro.core.reflexive import reflexive_search
from repro.core.sample import sample
from repro.games.morpion.geometry import cross_points
from repro.games.morpion.state import MorpionState
from repro.prng import SeedSequence


def bench_state(max_moves=12) -> MorpionState:
    return MorpionState(line_length=4, initial_points=cross_points(3), max_moves=max_moves)


@pytest.mark.benchmark(group="sequential-primitives")
def test_bench_random_playout(benchmark):
    state = bench_state()
    result = benchmark(lambda: sample(state, seeds=SeedSequence(0)))
    assert result.score >= 0


@pytest.mark.benchmark(group="sequential-primitives")
def test_bench_legal_move_generation(benchmark):
    state = bench_state(max_moves=None)
    moves = benchmark(state.legal_moves)
    assert len(moves) == 16


@pytest.mark.benchmark(group="sequential-primitives")
def test_bench_nmcs_level1(benchmark):
    state = bench_state()
    result = benchmark.pedantic(
        lambda: nested_search(state, 1, SeedSequence(0, "nmcs")), rounds=3, iterations=1
    )
    assert result.verify(state)


@pytest.mark.benchmark(group="sequential-primitives")
def test_bench_flat_monte_carlo(benchmark):
    state = bench_state()
    result = benchmark.pedantic(
        lambda: flat_monte_carlo(state, 2, SeedSequence(0)), rounds=3, iterations=1
    )
    assert result.verify(state)


@pytest.mark.benchmark(group="sequential-primitives")
def test_bench_reflexive_level1(benchmark):
    state = bench_state()
    result = benchmark.pedantic(
        lambda: reflexive_search(state, 1, SeedSequence(0)), rounds=3, iterations=1
    )
    assert result.verify(state)
