"""Shared helpers for the Tables II–V client-sweep benchmarks.

The sweep runner is :func:`repro.experiments.run_client_sweep`, which expands
each table into a declarative :class:`repro.lab.SweepSpec` and executes it
through the engine's batch layer (``Engine.run_many``) against the session's
shared :class:`repro.lab.ResultStore` — the same code path ``repro sweep``
exposes on the command line.  Besides the rendered table, each sweep persists
its machine-readable JSON payload so downstream pipelines never scrape
tables.
"""

from __future__ import annotations

import json
from typing import Dict, Sequence

from conftest import FULL_BENCH, MASTER_SEED, write_result
from repro.experiments import DEFAULT_CLIENT_COUNTS, run_client_sweep
from repro.paperdata import paper_speedup


def sweep_levels(bench_workload, experiment: str) -> Sequence[int]:
    """Which nesting levels a sweep runs at the current benchmark scale.

    First-move sweeps always run both columns (the high level is the paper's
    headline result); full-rollout sweeps only include the expensive high
    level in full-scale sessions.
    """
    lo, hi = bench_workload.low_level, bench_workload.high_level
    if experiment == "first_move" or FULL_BENCH:
        return [lo, hi]
    return [lo]


def run_sweep_benchmark(
    benchmark,
    bench_workload,
    bench_executor,
    bench_cost_model,
    results_dir,
    dispatcher: str,
    experiment: str,
    result_name: str,
    paper_table: Dict,
    bench_store=None,
):
    """Run one Tables II–V sweep, persist its table and check its shape."""
    levels = sweep_levels(bench_workload, experiment)

    def run():
        return run_client_sweep(
            dispatcher,
            experiment=experiment,
            workload=bench_workload,
            levels=levels,
            client_counts=DEFAULT_CLIENT_COUNTS,
            master_seed=MASTER_SEED,
            executor=bench_executor,
            cost_model=bench_cost_model,
            store=bench_store,
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [sweep.render(), ""]
    for level in levels:
        ours = sweep.speedups[level]
        lines.append(
            f"measured speedups (level {level}): "
            + ", ".join(f"{c}:{s:.1f}x" for c, s in ours.items())
        )
    paper_level = 3  # the paper's low level, mirrored by our low level
    paper = {
        clients: paper_speedup(paper_table, clients, paper_level)
        for clients in DEFAULT_CLIENT_COUNTS
        if clients in paper_table and paper_level in paper_table[clients]
    }
    lines.append(
        "paper speedups (level 3):      "
        + ", ".join(f"{c}:{s:.1f}x" for c, s in sorted(paper.items()))
    )
    write_result(results_dir, result_name, "\n".join(lines))
    (results_dir / f"{result_name}.json").write_text(
        json.dumps(sweep.json_payload(), indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    benchmark.extra_info["speedups"] = {
        str(level): {str(c): round(s, 2) for c, s in sweep.speedups[level].items()}
        for level in levels
    }

    # Shape checks shared by Tables II-V: speedup grows with the client count
    # and is clearly super-unitary at 64 clients.
    for level in levels:
        speedups = sweep.speedups[level]
        assert speedups[1] == 1.0
        assert speedups[4] > 2.0
        assert speedups[64] > speedups[8]
        assert speedups[64] > 10.0
    return sweep
