"""Ablations: network-latency sensitivity and the thread-vs-process GIL effect.

* **Latency** — the speedup of the cluster algorithms depends on client jobs
  being much longer than a message round-trip; sweeping the simulated latency
  quantifies that margin.
* **GIL** — the reason this reproduction simulates the cluster instead of
  using Python threads: a thread pool gives essentially no speedup for the
  pure-Python searches, while a process pool does.  Measured with real wall
  clock on the local machine.
"""

from __future__ import annotations

import os
import time

import pytest

from conftest import MASTER_SEED, write_result
from repro.analysis.timefmt import format_hms
from repro.cluster.network import NetworkModel
from repro.cluster.topology import homogeneous_cluster
from repro.games.weakschur import WeakSchurState
from repro.parallel.config import ParallelConfig
from repro.parallel.driver import run_parallel_nmcs
from repro.parallel.multiproc import multiprocessing_nmcs
from repro.parallel.threads import threaded_nmcs
from repro.core.nested import nested_search
from repro.prng import SeedSequence


@pytest.mark.benchmark(group="ablation-latency")
def test_ablation_network_latency(
    benchmark, bench_workload, bench_executor, bench_cost_model, results_dir
):
    cluster = homogeneous_cluster(32)
    latencies_ms = (0.0, 0.05, 1.0, 10.0)

    def run():
        times = {}
        for latency in latencies_ms:
            network = (
                NetworkModel.instantaneous() if latency == 0.0 else NetworkModel.slow(latency_ms=latency)
            )
            config = ParallelConfig(
                level=bench_workload.low_level, max_root_steps=1, master_seed=MASTER_SEED
            )
            run_result = run_parallel_nmcs(
                bench_workload.state(), config, cluster,
                executor=bench_executor, cost_model=bench_cost_model, network=network,
            )
            times[latency] = run_result.simulated_seconds
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "Network latency ablation (32 clients, low level, first move)\n" + "\n".join(
        f"latency {latency:6.2f} ms: {format_hms(seconds)}" for latency, seconds in times.items()
    )
    write_result(results_dir, "ablation_latency", text)
    # Simulated time grows monotonically with latency, and a 10 ms latency
    # (200x the Gigabit default) visibly hurts.
    ordered = [times[latency] for latency in latencies_ms]
    assert ordered == sorted(ordered)
    assert times[10.0] > times[0.05] * 1.05


@pytest.mark.benchmark(group="ablation-gil")
def test_ablation_threads_vs_processes(benchmark, results_dir):
    """Real wall-clock comparison on the local machine (not simulated)."""
    state = WeakSchurState(k=4, limit=30)
    level = 2
    n_workers = min(4, os.cpu_count() or 1)

    def run():
        t0 = time.perf_counter()
        sequential = nested_search(state, level, SeedSequence(MASTER_SEED, "nmcs"))
        sequential_s = time.perf_counter() - t0
        threaded = threaded_nmcs(state, level, master_seed=MASTER_SEED, n_workers=n_workers)
        procs = multiprocessing_nmcs(state, level, master_seed=MASTER_SEED, n_workers=n_workers)
        return sequential, sequential_s, threaded, procs

    sequential, sequential_s, threaded, procs = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        f"GIL ablation: level-{level} NMCS on Weak Schur (k=4, n<=35), {n_workers} workers\n"
        f"sequential:       {sequential_s:.2f} s wall\n"
        f"thread pool:      {threaded.wall_seconds:.2f} s wall\n"
        f"process pool:     {procs.wall_seconds:.2f} s wall\n"
        f"thread speedup:   {sequential_s / threaded.wall_seconds:.2f}x\n"
        f"process speedup:  {sequential_s / procs.wall_seconds:.2f}x"
    )
    write_result(results_dir, "ablation_gil", text)
    benchmark.extra_info["thread_speedup"] = round(sequential_s / threaded.wall_seconds, 2)
    benchmark.extra_info["process_speedup"] = round(sequential_s / procs.wall_seconds, 2)

    # All three strategies return the same search result.
    assert sequential.score == threaded.result.score == procs.result.score
    assert sequential.sequence == threaded.result.sequence == procs.result.sequence
    # The GIL keeps the thread pool well below linear scaling.
    assert sequential_s / threaded.wall_seconds < 2.0
