"""Table VI — first-move times on heterogeneous clusters (LM vs RR).

Paper shape to reproduce: on the oversubscribed repartitions (16 PCs running
4 clients + 16 PCs running 2 clients, and the 8+8 variant) the Last-Minute
algorithm beats Round-Robin, markedly so at the higher level (45m17s vs
28m37s, i.e. RR/LM ≈ 1.58, and 1h24m vs 58m21s ≈ 1.44).
"""

from __future__ import annotations

import pytest

from conftest import MASTER_SEED, write_result
from repro.experiments import run_table6_heterogeneous
from repro.paperdata import TABLE_VI


@pytest.mark.benchmark(group="table6")
def test_table6_heterogeneous_lm_vs_rr(
    benchmark, bench_workload, bench_executor, bench_cost_model, results_dir, bench_store
):
    lo, hi = bench_workload.low_level, bench_workload.high_level

    def run():
        return run_table6_heterogeneous(
            workload=bench_workload,
            levels=[lo, hi],
            configurations=[("16x4+16x2", 16, 16), ("8x4+8x2", 8, 8)],
            master_seed=MASTER_SEED,
            executor=bench_executor,
            cost_model=bench_cost_model,
            store=bench_store,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    advantages = result.data["advantages"]

    paper_lines = [
        "paper RR/LM ratios: "
        + ", ".join(
            f"{config} level4: "
            f"{TABLE_VI[(config, 'RR')][4].seconds / TABLE_VI[(config, 'LM')][4].seconds:.2f}"
            for config in ("16x4+16x2", "8x4+8x2")
        )
    ]
    text = result.render() + "\n\n" + "\n".join(
        [f"{name}: RR/LM = {value:.2f}" for name, value in advantages.items()] + paper_lines
    )
    write_result(results_dir, "table6_heterogeneous", text)
    benchmark.extra_info["rr_over_lm"] = {k: round(v, 2) for k, v in advantages.items()}

    # Shape checks: at the high level the Last-Minute algorithm clearly beats
    # Round-Robin on both oversubscribed repartitions (paper: 1.58x and 1.44x).
    assert advantages[f"16x4+16x2_level{hi}_rr_over_lm"] > 1.15
    assert advantages[f"8x4+8x2_level{hi}_rr_over_lm"] > 1.15
    # At the low level LM is at least not worse by more than a small tolerance.
    assert advantages[f"16x4+16x2_level{lo}_rr_over_lm"] > 0.9
