"""Setuptools shim.

The pinned offline environment ships setuptools without the ``wheel`` package,
so PEP 517 editable installs (which build an editable wheel) are unavailable.
This shim keeps the classic ``pip install -e . --no-use-pep517
--no-build-isolation`` path working; all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
