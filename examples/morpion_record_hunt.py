"""Hunt for long Morpion Solitaire sequences (the paper's Figure 1 use case).

The paper's headline application result is the discovery of two 80-move
sequences at Morpion Solitaire 5D with a level-4 parallel search on a 64-core
cluster.  This example runs the same hunt at laptop scale: iterated nested
searches on the 4D board (and optionally the full 5D board), reporting every
improvement and rendering the best grid like Figure 1.

Run with:  python examples/morpion_record_hunt.py [--full-5d] [--restarts N]
"""

from __future__ import annotations

import argparse
import time

from repro import MorpionState, SeedSequence, iterated_search
from repro.games.morpion import render_state
from repro.games.morpion.records import reference_records


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full-5d", action="store_true", help="hunt on the full 5D board (slow)")
    parser.add_argument("--level", type=int, default=1, help="nesting level of each restart")
    parser.add_argument("--restarts", type=int, default=8, help="number of independent searches")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    state = MorpionState(line_length=5) if args.full_5d else MorpionState(line_length=4)
    label = "5D (paper board)" if args.full_5d else "4D (scaled board)"
    print(f"Record hunt on Morpion {label}, level {args.level}, {args.restarts} restarts")
    if args.full_5d:
        print("reference records:", reference_records())
    print()

    start = time.perf_counter()

    def report(restart_index: int, result) -> None:
        elapsed = time.perf_counter() - start
        print(f"  restart {restart_index:3d}: new best {int(result.score)} moves ({elapsed:.1f}s)")

    best = iterated_search(
        state,
        level=args.level,
        seeds=SeedSequence(args.seed, "record-hunt"),
        restarts=args.restarts,
        on_improvement=report,
    )
    print(f"\nbest sequence found: {int(best.score)} moves\n")
    print(render_state(best.final_state(state)))


if __name__ == "__main__":
    main()
