"""Nested rollouts on the Travelling Salesman Problem.

Section II of the paper cites Guerriero & Mancini's parallel rollout
strategies evaluated on the TSP and the SOP.  This example runs the library's
search algorithms on a random Euclidean TSP instance and compares them with
the greedy nearest-neighbour heuristic, then shows the same search running on
the simulated cluster and on a local process pool.

Run with:  python examples/tsp_rollout.py
"""

from __future__ import annotations

import time

from repro import (
    Engine,
    SearchSpec,
    SeedSequence,
    TSPInstance,
    TSPState,
    nmcs,
    sample,
)


def main() -> None:
    instance = TSPInstance.random(n_cities=30, seed=7)
    state = TSPState(instance, neighbourhood=8)

    nn_tour = instance.nearest_neighbour_tour()
    nn_length = instance.tour_length(nn_tour)
    print(f"TSP with {instance.n_cities} cities")
    print(f"nearest-neighbour heuristic: {nn_length:8.1f}")

    random_tour = sample(state, seeds=SeedSequence(0))
    print(f"single random rollout:       {-random_tour.score:8.1f}")

    for level in (1, 2):
        start = time.perf_counter()
        result = nmcs(state, level=level, seed=0)
        print(
            f"NMCS level {level}:               {-result.score:8.1f} "
            f"({time.perf_counter() - start:.1f}s, {result.work.playouts} rollouts)"
        )

    # The same level-2 search on two other substrates: one spec per scenario,
    # only the backend field changes (see repro.api / docs/API.md).
    engine = Engine()
    spec = SearchSpec(workload="tsp", algorithm="nmcs", level=2, seed=0)
    cluster_run = engine.run(
        spec.replace(backend="sim-cluster", dispatcher="rr", n_clients=8), state=state.copy()
    )
    print(
        f"parallel NMCS level 2 (8 simulated clients): {-cluster_run.score:8.1f} "
        f"in {cluster_run.simulated_seconds:.1f} simulated seconds"
    )

    local = engine.run(
        spec.replace(backend="multiprocessing", n_workers=4), state=state.copy()
    )
    print(
        f"parallel NMCS level 2 (4 local processes):   {-local.score:8.1f} "
        f"in {local.wall_seconds:.1f} wall-clock seconds"
    )


if __name__ == "__main__":
    main()
