"""Last-Minute vs Round-Robin on an oversubscribed heterogeneous cluster.

Reproduces the shape of Table VI: when half of the PCs run four client
processes on two cores (so each client runs at half speed whenever the node is
saturated), the Last-Minute dispatcher — which hands freed clients to the job
with the longest expected remaining computation — clearly beats the blind
Round-Robin assignment.

Run with:  python examples/heterogeneous_cluster.py
"""

from __future__ import annotations

from repro import Engine, SearchSpec
from repro.analysis.timefmt import format_hms
from repro.experiments import calibrated_cost_model
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("morpion-small")
    level = workload.high_level
    engine = Engine(cost_model=calibrated_cost_model(workload, master_seed=0))

    print(f"Workload: {workload.description}")
    print(f"Search: parallel NMCS level {level}, first move only\n")

    for label in ("16x4+16x2", "8x4+8x2"):
        spec = SearchSpec(
            workload=workload.name,
            backend="sim-cluster",
            cluster=f"heterogeneous:{label}",
            level=level,
            seed=0,
            max_steps=1,
        )
        rr = engine.run(spec.replace(dispatcher="rr"))
        lm = engine.run(spec.replace(dispatcher="lm"))
        assert rr.sequence == lm.sequence  # same search, different schedule
        print(
            f"{label:10s}  Round-Robin {format_hms(rr.simulated_seconds):>9s}   "
            f"Last-Minute {format_hms(lm.simulated_seconds):>9s}   "
            f"RR/LM = {rr.simulated_seconds / lm.simulated_seconds:.2f}"
        )

    print(
        "\nPaper reference (level 4 first move): 16x4+16x2 -> RR 45m17s vs LM 28m37s (1.58x);"
        " 8x4+8x2 -> RR 1h24m11s vs LM 58m21s (1.44x)"
    )


if __name__ == "__main__":
    main()
