"""Search as a service: one job server, many deduplicated clients.

Spins up an in-process :class:`repro.ServiceServer` (the same stack
``python -m repro serve`` runs) and shows the three ways a submission can
resolve:

1. a fresh spec is **queued** and executed;
2. an identical submission arriving while the first is still running
   **attaches** to the in-flight job — both clients stream the same events,
   and exactly one search executes;
3. re-submitting after completion answers **cached** straight from the
   content-addressed result store, with zero searches.

Run with:  python examples/service_demo.py
"""

from __future__ import annotations

import tempfile
import threading
from pathlib import Path

from repro import (
    ResultStore,
    SearchService,
    ServiceClient,
    ServiceServer,
    SweepSpec,
    SearchSpec,
)

STORE_DIR = Path(tempfile.gettempdir()) / "repro-service-demo"


def main() -> None:
    service = SearchService(store=ResultStore(STORE_DIR))
    server = ServiceServer(service, port=0)  # 0 = pick an ephemeral port
    address = server.start()
    print(f"server listening on {address} (store: {STORE_DIR})\n")

    # A small but real workload: first-move NMCS over a seed axis.
    sweep = SweepSpec(
        base=SearchSpec(workload="morpion-small", algorithm="nmcs", level=1, max_steps=1),
        axes={"seed": (0, 1, 2, 3)},
    )

    # Two independent clients race to submit the SAME sweep.  One wins the
    # queue; the other attaches to the in-flight job and simply follows it.
    alice = ServiceClient(address, client="alice")
    bob = ServiceClient(address, client="bob")
    outcomes = {}

    def run_as(name: str, client: ServiceClient) -> None:
        outcomes[name] = client.run(
            sweep=sweep,
            on_event=lambda e: print(
                f"  [{name}] {e['kind']:9s} cell {e['index']} "
                f"({e['done']}/{e['total']})"
            ),
        )

    threads = [
        threading.Thread(target=run_as, args=(name, client))
        for name, client in (("alice", alice), ("bob", bob))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    for name, outcome in sorted(outcomes.items()):
        ack, job = outcome["submit"], outcome["job"]
        print(
            f"{name}: submitted as {ack['status']!r} -> job {job['id']} "
            f"{job['state']}, scores "
            f"{[r['score'] for r in outcome['reports']]}"
        )
    stats = service.service_stats()
    print(
        f"\none search ran for two submissions: "
        f"searches_started={stats['searches_started']}, "
        f"attached={stats['attached']}\n"
    )

    # Round three: everything is in the store now.  Re-running the sweep is
    # instant (every cell answers with a `cached` event, no search), and a
    # single-spec submission short-circuits at submit time: the ack itself
    # says `cached` and the job is born complete.
    rerun = alice.run(sweep=sweep)
    print(
        f"sweep re-run: {rerun['submit']['status']!r} ack, "
        f"{rerun['counts']['cached']}/{rerun['counts']['total']} cells cached"
    )
    one = alice.run(sweep.base.replace(seed=0))
    print(
        f"single-spec re-run: {one['submit']['status']!r} ack — "
        f"served from the store at submit time, score {one['reports'][0]['score']}"
    )

    print("\nshutting down (draining)...")
    alice.shutdown(drain=True)
    server.wait()
    print("done — run me again and even the first submission comes back cached.")


if __name__ == "__main__":
    main()
