"""Declarative sweeps with a durable, resumable result store (repro.lab).

Reproduces the shape of Tables II and IV — first-move times of Round-Robin
vs Last-Minute over a grid of client counts — as ONE declarative
:class:`repro.SweepSpec` executed through the engine's streaming batch
layer.  Results land in a content-addressed :class:`repro.ResultStore`, so
running this script a second time executes zero new searches (watch the
``cached`` events), and interrupting it mid-sweep (Ctrl-C) loses nothing:
the next run completes only the missing cells.

Run with:  python examples/sweep_resume.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import Engine, ResultStore, SearchSpec, SweepSpec
from repro.analysis.tables import pivot_table
from repro.analysis.timefmt import format_hms
from repro.experiments import calibrated_cost_model
from repro.lab import rows_from_reports, write_csv

STORE_DIR = Path(tempfile.gettempdir()) / "repro-sweep-demo"


def main() -> None:
    # One declarative object for the whole grid: dispatcher × client count.
    # Every cell shares the master seed, so the engine's job cache executes
    # each search job exactly once however many topologies replay it.
    sweep = SweepSpec(
        base=SearchSpec(workload="morpion-small", backend="sim-cluster", max_steps=1),
        axes={"dispatcher": ("rr", "lm"), "n_clients": (1, 4, 8, 16)},
        name="rr-vs-lm-first-move",
    )
    store = ResultStore(STORE_DIR)
    engine = Engine(cost_model=calibrated_cost_model("morpion-small"))

    print(f"Sweep {sweep.name!r}: {len(sweep)} cells -> store {STORE_DIR}")
    print("(re-run this script: every cell below turns 'cached'; Ctrl-C then re-run:")
    print(" only the missing cells execute)\n")

    def show(event) -> None:
        cell = f"dispatcher={event.spec.dispatcher} clients={event.spec.n_clients}"
        if event.kind == "started":
            print(f"  [{event.done + 1}/{event.total}] running {cell} ...")
        elif event.terminal:
            print(f"  [{event.done}/{event.total}] {event.kind:9s} {cell}")

    reports = engine.run_many(sweep, store=store, on_event=show)

    # Flat rows -> paper-style table, straight from the export layer.
    rows = rows_from_reports(reports, store=store)
    print()
    print(
        pivot_table(
            rows,
            title="First move times (simulated) — Round-Robin vs Last-Minute",
            index="n_clients",
            column="dispatcher",
            value="simulated_seconds",
            row_label="clients",
            fmt=format_hms,
        ).render()
    )
    csv_path = STORE_DIR / "rows.csv"
    write_csv(rows, csv_path)
    print(f"\nrows exported to {csv_path}")
    print(f"store now holds {len(store)} result(s); delete {STORE_DIR} to start fresh")


if __name__ == "__main__":
    main()
