"""Quickstart: sequential Nested Monte-Carlo Search on Morpion Solitaire.

Runs the paper's sequential algorithm (Section III) at levels 0-2 on a
scaled-down Morpion board, compares it against the flat Monte-Carlo baseline,
renders the best grid found, and finishes with the unified API: the same
search moved onto the simulated cluster by changing one field of a
:class:`repro.SearchSpec`.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro import Engine, MorpionState, SearchSpec, SeedSequence, flat_monte_carlo, nmcs, sample
from repro.games.morpion import render_state
from repro.games.morpion.geometry import cross_points


def main() -> None:
    # A line-length-4 board with the compact 12-circle cross: the same rules as
    # the paper's 5D game, small enough for a laptop demo.
    def fresh_state() -> MorpionState:
        return MorpionState(line_length=4, initial_points=cross_points(3), max_moves=25)

    print("Morpion Solitaire (disjoint rules, line length 4)")
    print(f"initial legal moves: {len(fresh_state().legal_moves())}\n")

    # Level 0: a single random playout (the paper's `sample` function).
    playout = sample(fresh_state(), seeds=SeedSequence(0))
    print(f"random playout score:            {playout.score:4.0f} moves")

    # Flat Monte-Carlo baseline: best of 4 playouts per candidate move.
    flat = flat_monte_carlo(fresh_state(), playouts_per_move=4, seeds=SeedSequence(0))
    print(f"flat Monte-Carlo (4 samples):    {flat.score:4.0f} moves")

    # Nested Monte-Carlo Search, levels 1 and 2.
    best = None
    for level in (1, 2):
        start = time.perf_counter()
        result = nmcs(fresh_state(), level=level, seed=0)
        elapsed = time.perf_counter() - start
        print(
            f"NMCS level {level}:                    {result.score:4.0f} moves "
            f"({result.work.playouts} playouts, {elapsed:.1f}s)"
        )
        best = result if best is None or result.score > best.score else best

    print("\nBest grid found (initial circles 'o', played circles numbered):\n")
    print(render_state(best.final_state(fresh_state())))

    # The unified API: one spec per scenario, one field per difference.  The
    # calibrated cost model puts the scaled workload on the paper's timescale
    # (without it the demo-sized jobs are dominated by simulated latency).
    from repro.experiments import calibrated_cost_model

    engine = Engine(cost_model=calibrated_cost_model("morpion-small"))
    spec = SearchSpec(workload="morpion-small", algorithm="nmcs", max_steps=1)
    sequential = engine.run(spec)
    cluster = engine.run(spec.replace(backend="sim-cluster", dispatcher="lm", n_clients=8))
    print(
        f"\nUnified API, first move at level {sequential.level}: "
        f"sequential {sequential.simulated_seconds:.1f}s simulated vs "
        f"{cluster.simulated_seconds:.1f}s on 8 Last-Minute clients "
        f"(same score: {sequential.score == cluster.score})"
    )

    # Sweeps are declarative too: a SweepSpec is a base spec plus axes, and
    # the engine's batch layer runs the whole grid in one call (attach a
    # repro.ResultStore to make it durable and resumable — see
    # examples/sweep_resume.py and docs/SWEEPS.md).
    from repro import SweepSpec

    sweep = SweepSpec(
        base=spec.replace(backend="sim-cluster", dispatcher="lm"),
        axes={"n_clients": (1, 4, 8)},
    )
    reports = engine.run_many(sweep)
    curve = ", ".join(f"{r.spec.n_clients}: {r.simulated_seconds:.1f}s" for r in reports)
    print(f"Sweep over clients (one SweepSpec, one run_many): {curve}")


if __name__ == "__main__":
    main()
