"""Reproduce the paper's cluster speedup curve on the simulated cluster.

Runs the Round-Robin and Last-Minute parallel NMCS for the first move of a
scaled Morpion game on 1 to 64 simulated clients (Tables II and IV of the
paper) and prints the resulting times and speedups.  The searches are really
executed; elapsed time is simulated through the calibrated cost model, which
is how a pure-Python reproduction can exercise a 64-core cluster.

Run with:  python examples/cluster_speedup.py
"""

from __future__ import annotations

from repro import CachingJobExecutor
from repro.analysis.timefmt import format_hms
from repro.experiments import calibrated_cost_model, run_client_sweep
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("morpion-small")
    # run_client_sweep drives every cell through repro.api (one SearchSpec per
    # cluster size on a shared Engine); the caching executor makes the whole
    # sweep execute each search job exactly once.
    executor = CachingJobExecutor()
    cost_model = calibrated_cost_model(workload, master_seed=0)

    for dispatcher in ("rr", "lm"):
        sweep = run_client_sweep(
            dispatcher,
            experiment="first_move",
            workload=workload,
            levels=[workload.low_level],
            client_counts=[1, 4, 8, 16, 32, 64],
            master_seed=0,
            executor=executor,
            cost_model=cost_model,
        )
        print(sweep.render())
        level = workload.low_level
        print("speedups:", ", ".join(f"{c}: {s:.1f}x" for c, s in sweep.speedups[level].items()))
        print()

    print(
        "Paper reference (full 5D board, level 3 first move, Round-Robin):\n"
        "  64 clients: 10s   (speedup ~56)\n"
        "  32 clients: 20s   (speedup ~30)\n"
        "   1 client : 9m07s"
    )


if __name__ == "__main__":
    main()
