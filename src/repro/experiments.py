"""Experiment runners regenerating every table and figure of the paper.

Each ``run_table*`` / ``run_figure*`` function executes the corresponding
experiment at a chosen scale (see :mod:`repro.workloads`) and returns both the
raw measurements and a :class:`repro.analysis.tables.Table` formatted like the
paper.  The benchmark harness (``benchmarks/``) and the command-line interface
(``python -m repro``) are thin wrappers around these functions, so the exact
same code path produces the numbers reported in EXPERIMENTS.md.

Scaling note (also in DESIGN.md): the default workload is a scaled Morpion
Solitaire whose levels 2/3 stand in for the paper's levels 3/4.  Durations are
simulated through the work→time cost model; speedups and orderings are the
quantities compared against the paper.

Every runner executes its searches through the unified :mod:`repro.api`
facade: each table cell is one :class:`~repro.api.SearchSpec` handed to a
shared :class:`~repro.api.Engine`, so the experiments exercise exactly the
code path users of the public API get.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.speedup import speedup, speedup_table
from repro.analysis.stats import Summary, summarize
from repro.analysis.tables import Table, pivot_table
from repro.analysis.timefmt import format_hms
from repro.analysis.commpattern import CommunicationSummary, analyze_communications, verify_pattern
from repro.api import Engine, RunReport, SearchSpec, to_jsonable
from repro.cluster.network import NetworkModel
from repro.cluster.topology import ClusterSpec
from repro.games.base import GameState
from repro.games.morpion.render import render_state
from repro.games.morpion.state import MorpionState
from repro.lab.export import rows_from_reports
from repro.lab.store import ResultStore
from repro.lab.sweep import SweepSpec
from repro.parallel.config import DispatcherKind
from repro.parallel.jobs import CachingJobExecutor, JobExecutor
from repro.timemodel.cost import CostModel
from repro.workloads import WORKLOADS, Workload, get_workload

__all__ = [
    "ExperimentResult",
    "SweepResult",
    "calibrated_cost_model",
    "run_table1_sequential",
    "client_sweep_spec",
    "run_client_sweep",
    "run_table6_heterogeneous",
    "run_figure_communications",
    "run_figure1_record",
    "DEFAULT_CLIENT_COUNTS",
]

#: Client counts of Tables II–V.
DEFAULT_CLIENT_COUNTS: Tuple[int, ...] = (1, 4, 8, 16, 32, 64)

#: The paper's sequential level-3 first-move time (Table I): 8m03s on 1.86 GHz.
_PAPER_LEVEL3_FIRST_MOVE_SECONDS = 483.0


def _registered_workload(workload: "Workload | str") -> Workload:
    """Resolve a workload for a sweep, requiring it to be registry-backed.

    Sweep cells resolve their state by *name* (specs are serialisable, game
    states are not), so an unregistered ``Workload`` object would only fail
    mid-sweep with an opaque lookup error; reject it upfront instead.
    """
    if isinstance(workload, str):
        return get_workload(workload)
    if WORKLOADS.get(workload.name) is not workload:
        raise ValueError(
            f"sweeps resolve workloads by name, and {workload.name!r} is not the "
            "registered workload of that name; add it to repro.workloads.WORKLOADS "
            "(or run the cells individually via Engine.run(spec, state=...))"
        )
    return workload


def calibrated_cost_model(
    workload: "Workload | str",
    master_seed: int = 0,
    reference_seconds: float = _PAPER_LEVEL3_FIRST_MOVE_SECONDS,
    freq_ghz: float = 1.86,
    level: Optional[int] = None,
) -> CostModel:
    """Calibrate the work→time mapping so the scaled workload sits on the paper's timescale.

    The sequential first move at the workload's *low* level (the stand-in for
    the paper's level 3) is executed once; the cost model is then chosen so
    that this search takes ``reference_seconds`` on a ``freq_ghz`` core —
    exactly the paper's Table I entry.  This keeps the ratio between client
    job durations and network latency in the regime of the original cluster,
    which is what the speedup shape depends on; the absolute simulated numbers
    then read on the same scale as the published tables.
    """
    from repro.timemodel.cost import calibrate_from_reference

    wl = get_workload(workload) if isinstance(workload, str) else workload
    level = level if level is not None else wl.low_level
    reference = Engine().run(
        SearchSpec(workload=wl.name, level=level, seed=master_seed, max_steps=1),
        state=wl.state(),
    )
    return calibrate_from_reference(reference.work_units, reference_seconds, freq_ghz)


@dataclass
class ExperimentResult:
    """A rendered table plus the raw numbers it was built from."""

    table: Table
    data: Dict = field(default_factory=dict)

    def render(self) -> str:
        return self.table.render()

    def json_payload(self) -> Dict[str, Any]:
        """The raw measurements as JSON-serialisable data (for ``--json`` output)."""
        return {"title": self.table.title, "data": to_jsonable(self.data)}


@dataclass
class SweepResult(ExperimentResult):
    """A client-count sweep (Tables II–V): times and speedups per level."""

    times: Dict[int, Dict[int, float]] = field(default_factory=dict)  # level -> clients -> s
    speedups: Dict[int, Dict[int, float]] = field(default_factory=dict)

    def json_payload(self) -> Dict[str, Any]:
        payload = super().json_payload()
        payload["times"] = to_jsonable(self.times)
        payload["speedups"] = to_jsonable(self.speedups)
        return payload


# --------------------------------------------------------------------------- #
# Table I — sequential algorithm
# --------------------------------------------------------------------------- #
def run_table1_sequential(
    workload: "Workload | str" = "morpion-bench",
    levels: Optional[Sequence[int]] = None,
    master_seed: int = 0,
    freq_ghz: float = 1.86,
    cost_model: Optional[CostModel] = None,
    rollout_levels: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    """Sequential NMCS times for the first move and a full rollout per level.

    ``rollout_levels`` restricts the (much more expensive) full-rollout column
    to a subset of ``levels``; omitted levels show ``—`` in the table, like the
    missing entries of the paper's own tables.
    """
    wl = get_workload(workload) if isinstance(workload, str) else workload
    levels = list(levels) if levels is not None else [wl.low_level, wl.high_level]
    rollout_levels = list(rollout_levels) if rollout_levels is not None else list(levels)
    engine = Engine(cost_model=cost_model or CostModel())
    base = SearchSpec(workload=wl.name, seed=master_seed, freq_ghz=freq_ghz)
    table = Table(
        title="Table I — times for the sequential algorithm",
        columns=["first move", "one rollout"],
        row_label="level",
    )
    data: Dict[int, Dict[str, float]] = {}
    for level in levels:
        first = engine.run(base.replace(level=level, max_steps=1), state=wl.state())
        cells = {"first move": format_hms(first.simulated_seconds)}
        data[level] = {
            "first_move": first.simulated_seconds,
            "first_move_work": first.work_units,
        }
        if level in rollout_levels:
            roll = engine.run(base.replace(level=level, max_steps=None), state=wl.state())
            data[level]["rollout"] = roll.simulated_seconds
            data[level]["rollout_work"] = roll.work_units
            data[level]["rollout_score"] = roll.score
            cells["one rollout"] = format_hms(roll.simulated_seconds)
        table.add_row(str(level), **cells)
    ratios = {}
    if len(levels) >= 2:
        lo, hi = levels[0], levels[-1]
        if data[lo]["first_move"] > 0:
            ratios["high_over_low_first_move"] = data[hi]["first_move"] / data[lo]["first_move"]
    for level in levels:
        if "rollout" in data[level] and data[level]["first_move"] > 0:
            ratios[f"rollout_over_first_move_level{level}"] = (
                data[level]["rollout"] / data[level]["first_move"]
            )
    return ExperimentResult(table=table, data={"levels": data, "ratios": ratios})


# --------------------------------------------------------------------------- #
# Tables II–V — client-count sweeps
# --------------------------------------------------------------------------- #
def client_sweep_spec(
    dispatcher: "DispatcherKind | str",
    experiment: str = "first_move",
    workload: "Workload | str" = "morpion-bench",
    levels: Optional[Sequence[int]] = None,
    client_counts: Sequence[int] = DEFAULT_CLIENT_COUNTS,
    master_seed: int = 0,
    n_medians: int = 40,
    use_paper_mix: bool = True,
) -> SweepSpec:
    """The declarative :class:`SweepSpec` behind Tables II–V.

    ``experiment`` is ``"first_move"`` (Tables II / IV) or ``"rollout"``
    (Tables III / V).  The grid iterates clients (descending, as the paper's
    tables are printed) × level, all cells sharing the master seed so the
    engine's job cache executes each search job exactly once.
    """
    if experiment not in ("first_move", "rollout"):
        raise ValueError(
            f"unknown experiment {experiment!r}; valid values: 'first_move' (Tables II/IV), "
            "'rollout' (Tables III/V)"
        )
    dispatcher = DispatcherKind.parse(dispatcher)
    wl = _registered_workload(workload)
    levels = list(levels) if levels is not None else [wl.low_level, wl.high_level]
    return SweepSpec(
        base=SearchSpec(
            workload=wl.name,
            backend="sim-cluster",
            dispatcher=dispatcher.value,
            cluster="paper-mix" if use_paper_mix else "homogeneous",
            n_medians=n_medians,
            seed=master_seed,
            max_steps=1 if experiment == "first_move" else None,
        ),
        axes={
            "n_clients": tuple(sorted(client_counts, reverse=True)),
            "level": tuple(levels),
        },
        name=f"{dispatcher.value}-{experiment}",
    )


def run_client_sweep(
    dispatcher: "DispatcherKind | str",
    experiment: str = "first_move",
    workload: "Workload | str" = "morpion-bench",
    levels: Optional[Sequence[int]] = None,
    client_counts: Sequence[int] = DEFAULT_CLIENT_COUNTS,
    master_seed: int = 0,
    executor: Optional[JobExecutor] = None,
    cost_model: Optional[CostModel] = None,
    network: Optional[NetworkModel] = None,
    n_medians: int = 40,
    use_paper_mix: bool = True,
    title: Optional[str] = None,
    store: Optional[ResultStore] = None,
) -> SweepResult:
    """Tables II–V: parallel times for a sweep of client counts.

    Builds the :func:`client_sweep_spec` grid and executes it through the
    engine's batch layer.  Passing a shared :class:`CachingJobExecutor`
    makes the whole sweep execute each search job exactly once; passing a
    :class:`~repro.lab.store.ResultStore` additionally makes the sweep
    durable — cells already in the store are not re-executed, and an
    interrupted sweep resumes from where it stopped.
    """
    sweep = client_sweep_spec(
        dispatcher,
        experiment=experiment,
        workload=workload,
        levels=levels,
        client_counts=client_counts,
        master_seed=master_seed,
        n_medians=n_medians,
        use_paper_mix=use_paper_mix,
    )
    dispatcher = DispatcherKind.parse(dispatcher)
    levels = list(sweep.axes["level"])
    engine = Engine(
        executor=executor if executor is not None else CachingJobExecutor(),
        cost_model=cost_model,
        network=network,
    )
    reports = engine.run_many(sweep, store=store)

    name = "Round-Robin" if dispatcher is DispatcherKind.ROUND_ROBIN else "Last-Minute"
    what = "First move" if experiment == "first_move" else "Rollout"
    table = pivot_table(
        rows_from_reports(reports),
        title=title or f"{what} times for the {name} algorithm",
        index="n_clients",
        column="level",
        value="simulated_seconds",
        row_label="clients",
        fmt=format_hms,
        column_fmt=lambda level: f"level {level}",
    )
    times: Dict[int, Dict[int, float]] = {lvl: {} for lvl in levels}
    scores: Dict[int, float] = {}
    for run in reports:
        times[run.level][run.spec.n_clients] = run.simulated_seconds
        scores[run.level] = run.score
    speedups = {
        level: speedup_table(times[level]) if 1 in times[level] else {}
        for level in levels
    }
    return SweepResult(
        table=table,
        data={"scores": scores, "dispatcher": dispatcher.value, "experiment": experiment},
        times=times,
        speedups=speedups,
    )


# --------------------------------------------------------------------------- #
# Table VI — heterogeneous repartitions
# --------------------------------------------------------------------------- #
def run_table6_heterogeneous(
    workload: "Workload | str" = "morpion-bench",
    levels: Optional[Sequence[int]] = None,
    configurations: Sequence[Tuple[str, int, int]] = (("16x4+16x2", 16, 16), ("8x4+8x2", 8, 8)),
    master_seed: int = 0,
    executor: Optional[JobExecutor] = None,
    cost_model: Optional[CostModel] = None,
    network: Optional[NetworkModel] = None,
    n_medians: int = 40,
    store: Optional[ResultStore] = None,
) -> ExperimentResult:
    """Table VI: first-move times of LM vs RR on oversubscribed heterogeneous clusters.

    Each configuration ``(label, n_over, n_reg)`` builds ``n_over`` dual-core
    PCs running 4 clients each plus ``n_reg`` PCs running 2 clients each.
    The whole table is one declarative :class:`SweepSpec` (cluster ×
    dispatcher × level) run through the engine's batch layer; a
    :class:`~repro.lab.store.ResultStore` makes it durable and resumable.
    """
    wl = _registered_workload(workload)
    levels = list(levels) if levels is not None else [wl.low_level, wl.high_level]
    engine = Engine(
        executor=executor if executor is not None else CachingJobExecutor(),
        cost_model=cost_model,
        network=network,
    )
    descriptors = {
        label: f"heterogeneous:{n_over}x4+{n_reg}x2" for label, n_over, n_reg in configurations
    }
    sweep = SweepSpec(
        base=SearchSpec(
            workload=wl.name,
            backend="sim-cluster",
            n_medians=n_medians,
            seed=master_seed,
            max_steps=1,
        ),
        axes={
            # fromkeys dedupes: two labels naming the same repartition share cells
            "cluster": tuple(dict.fromkeys(descriptors.values())),
            "dispatcher": (DispatcherKind.LAST_MINUTE.value, DispatcherKind.ROUND_ROBIN.value),
            "level": tuple(levels),
        },
        name="table6-heterogeneous",
    )
    reports = engine.run_many(sweep, store=store)

    table = Table(
        title="Table VI — first move times on an heterogeneous cluster",
        columns=["alg"] + [f"level {lvl}" for lvl in levels],
        row_label="clients",
    )
    by_cell: Dict[Tuple[str, str], Dict[int, float]] = {}
    for run in reports:
        alg = "LM" if run.spec.dispatcher == DispatcherKind.LAST_MINUTE.value else "RR"
        by_cell.setdefault((run.spec.cluster, alg), {})[run.level] = run.simulated_seconds
    data: Dict[Tuple[str, str], Dict[int, float]] = {}
    for label, _, _ in configurations:
        for alg in ("LM", "RR"):
            entry = by_cell[(descriptors[label], alg)]
            data[(label, alg)] = entry
            cells = {"alg": alg}
            for level in levels:
                cells[f"level {level}"] = format_hms(entry[level])
            table.add_row(label, **cells)
    advantages = {}
    for label, _, _ in configurations:
        for level in levels:
            rr = data[(label, "RR")][level]
            lm = data[(label, "LM")][level]
            if lm > 0:
                advantages[f"{label}_level{level}_rr_over_lm"] = rr / lm
    return ExperimentResult(table=table, data={"times": data, "advantages": advantages})


# --------------------------------------------------------------------------- #
# Figures 2–5 — communication patterns
# --------------------------------------------------------------------------- #
def run_figure_communications(
    dispatcher: "DispatcherKind | str",
    workload: "Workload | str" = "morpion-small",
    level: Optional[int] = None,
    n_clients: int = 8,
    master_seed: int = 0,
    executor: Optional[JobExecutor] = None,
) -> ExperimentResult:
    """Figures 2–5: classify the messages of a run and measure client overlap."""
    dispatcher = DispatcherKind.parse(dispatcher)
    wl = get_workload(workload) if isinstance(workload, str) else workload
    level = level if level is not None else wl.low_level
    engine = Engine(executor=executor)
    report = engine.run(
        SearchSpec(
            workload=wl.name,
            backend="sim-cluster",
            dispatcher=dispatcher.value,
            cluster="homogeneous",
            n_clients=n_clients,
            level=level,
            seed=master_seed,
            max_steps=1,
        ),
        state=wl.state(),
    )
    run = report.raw
    summary = analyze_communications(run.trace)
    problems = verify_pattern(summary, dispatcher)
    name = "Round-Robin (figures 2-3)" if dispatcher is DispatcherKind.ROUND_ROBIN else "Last-Minute (figures 4-5)"
    table = Table(
        title=f"Communication pattern of the {name} algorithm",
        columns=["count"],
        row_label="communication",
    )
    for kind in sorted(summary.counts):
        table.add_row(kind, count=str(summary.counts[kind]))
    table.add_row("max concurrent client computations", count=str(summary.max_client_concurrency))
    table.add_row("mean concurrent client computations", count=f"{summary.mean_client_concurrency:.2f}")
    return ExperimentResult(
        table=table,
        data={"summary": summary, "violations": problems, "simulated_seconds": run.simulated_seconds},
    )


# --------------------------------------------------------------------------- #
# Figure 1 — record grid
# --------------------------------------------------------------------------- #
def run_figure1_record(
    workload: "Workload | str" = "morpion-4d",
    level: Optional[int] = None,
    dispatcher: "DispatcherKind | str" = DispatcherKind.LAST_MINUTE,
    n_clients: int = 16,
    master_seed: int = 0,
    executor: Optional[JobExecutor] = None,
    use_parallel: bool = True,
) -> ExperimentResult:
    """Figure 1: run a (parallel) search for a long Morpion sequence and render it.

    The default scale searches the 4D board; the paper-scale 5D hunt is the
    same code with the ``paper-scale`` workload.
    """
    wl = get_workload(workload) if isinstance(workload, str) else workload
    level = level if level is not None else wl.high_level
    state = wl.state()
    if not isinstance(state, MorpionState):
        raise ValueError("figure 1 requires a Morpion workload")
    engine = Engine(executor=executor)
    if use_parallel and level >= 2:
        spec = SearchSpec(
            workload=wl.name,
            backend="sim-cluster",
            dispatcher=DispatcherKind.parse(dispatcher).value,
            cluster="homogeneous",
            n_clients=n_clients,
            level=level,
            seed=master_seed,
        )
    else:
        spec = SearchSpec(workload=wl.name, level=max(level, 1), seed=master_seed)
    report = engine.run(spec, state=state)
    result = report.raw.result if report.backend == "sim-cluster" else report.raw
    seconds = report.simulated_seconds
    final = result.final_state(state)
    grid = render_state(final)
    table = Table(
        title=f"Figure 1 — best sequence found ({int(result.score)} moves)",
        columns=["value"],
        row_label="item",
    )
    table.add_row("score (moves played)", value=str(int(result.score)))
    table.add_row("search level", value=str(level))
    table.add_row("simulated time", value=format_hms(seconds))
    return ExperimentResult(table=table, data={"grid": grid, "result": result, "seconds": seconds})
