"""Deterministic pseudo-random number management.

The parallel algorithms of the paper distribute *jobs* (lower level nested
searches) over client processes.  For the reproduction we need two properties
that the original C/MPI implementation obtained implicitly:

* **Determinism** — a run with a given master seed must be repeatable so that
  tests and benchmarks are stable.
* **Placement independence** — the *result* of a job must not depend on which
  client executes it (only its *timing* does).  Otherwise comparing the
  Round-Robin and the Last-Minute schedulers would compare different searches
  rather than different schedules.

Both are obtained by deriving each job's seed from stable identifiers
(level, step in the game, candidate move index, ...) rather than from the
executing process.  :func:`derive_seed` implements a stable 64-bit mixing of a
master seed with any number of integer/string labels, and :func:`spawn_rng`
returns a :class:`random.Random` seeded with it.

``random.Random`` is used (instead of ``numpy.random``) because playouts make
millions of tiny ``randrange`` calls over small move lists, where the pure
Python Mersenne Twister is both faster per call and simpler to reason about.
"""

from __future__ import annotations

import hashlib
import random
import struct
from typing import Iterable, Union

__all__ = ["derive_seed", "spawn_rng", "SeedSequence"]

Label = Union[int, str, bytes]

_MASK64 = (1 << 64) - 1


def _mix_label(h: "hashlib._Hash", label: Label) -> None:
    """Feed one label into the hash in a type-tagged, unambiguous encoding."""
    if isinstance(label, bool):  # bool is an int subclass; tag it distinctly
        h.update(b"b")
        h.update(b"\x01" if label else b"\x00")
    elif isinstance(label, int):
        if -(1 << 127) <= label < (1 << 127):
            h.update(b"i")
            # Two's-complement 128-bit encoding keeps negative labels unambiguous.
            h.update(label.to_bytes(16, "little", signed=True))
        else:
            # Arbitrary-width integers: length-prefixed two's complement under a
            # distinct tag, so seeds for the common 128-bit range are unchanged.
            nbytes = label.bit_length() // 8 + 1
            h.update(b"I")
            h.update(struct.pack("<Q", nbytes))
            h.update(label.to_bytes(nbytes, "little", signed=True))
    elif isinstance(label, str):
        data = label.encode("utf-8")
        h.update(b"s")
        h.update(struct.pack("<Q", len(data)))
        h.update(data)
    elif isinstance(label, bytes):
        h.update(b"y")
        h.update(struct.pack("<Q", len(label)))
        h.update(label)
    else:  # pragma: no cover - defensive
        raise TypeError(f"unsupported seed label type: {type(label)!r}")


def derive_seed(master_seed: int, *labels: Label) -> int:
    """Derive a stable 64-bit seed from ``master_seed`` and ``labels``.

    The derivation is independent of Python's hash randomisation (it uses
    BLAKE2b), of the platform word size and of the process that calls it.

    Parameters
    ----------
    master_seed:
        The run-level seed chosen by the user.
    labels:
        Any number of ints / strings / bytes identifying the consumer
        (e.g. ``("job", root_move_index, median_step, candidate_index)``).
    """
    h = hashlib.blake2b(digest_size=8)
    _mix_label(h, int(master_seed))
    for label in labels:
        _mix_label(h, label)
    return int.from_bytes(h.digest(), "little") & _MASK64


def spawn_rng(master_seed: int, *labels: Label) -> random.Random:
    """Return a :class:`random.Random` seeded with :func:`derive_seed`."""
    return random.Random(derive_seed(master_seed, *labels))


class SeedSequence:
    """A small convenience wrapper bundling a master seed with a path of labels.

    ``SeedSequence(seed, "rr").child("job", 3).rng()`` gives the same generator
    everywhere, whichever process asks for it.
    """

    __slots__ = ("master_seed", "path")

    def __init__(self, master_seed: int, *path: Label) -> None:
        self.master_seed = int(master_seed)
        self.path: tuple[Label, ...] = tuple(path)

    def child(self, *labels: Label) -> "SeedSequence":
        """Return a new sequence with ``labels`` appended to the path."""
        return SeedSequence(self.master_seed, *self.path, *labels)

    def seed(self) -> int:
        """The derived 64-bit integer seed for this path."""
        return derive_seed(self.master_seed, *self.path)

    def rng(self) -> random.Random:
        """A fresh generator seeded for this path."""
        return random.Random(self.seed())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeedSequence({self.master_seed}, path={self.path!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SeedSequence):
            return NotImplemented
        return self.master_seed == other.master_seed and self.path == other.path

    def __hash__(self) -> int:
        return hash((self.master_seed, self.path))


def interleave(seeds: Iterable[int]) -> int:
    """Combine several seeds into one (order-sensitive).

    Useful when a reproducible component is itself parameterised by several
    already-derived seeds.
    """
    combined = 0x9E3779B97F4A7C15
    for i, s in enumerate(seeds):
        combined = derive_seed(combined, i, int(s))
    return combined
