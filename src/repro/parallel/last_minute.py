"""Front-end for the Last-Minute parallel algorithm (Section IV-B).

.. deprecated:: 1.1
    :func:`run_last_minute` is a shim over the unified API; new code should
    run ``SearchSpec(backend="sim-cluster", dispatcher="lm", ...)`` through
    :class:`repro.api.Engine`.
"""

from __future__ import annotations

import warnings
from typing import Optional

from repro.cluster.network import NetworkModel
from repro.cluster.topology import ClusterSpec
from repro.games.base import GameState
from repro.parallel.config import DispatcherKind, ParallelConfig
from repro.parallel.driver import ParallelRunResult, run_parallel_nmcs
from repro.parallel.jobs import JobExecutor
from repro.timemodel.cost import CostModel

__all__ = ["run_last_minute"]


def run_last_minute(
    state: GameState,
    level: int,
    cluster: ClusterSpec,
    master_seed: int = 0,
    n_medians: int = 40,
    max_root_steps: Optional[int] = None,
    executor: Optional[JobExecutor] = None,
    cost_model: Optional[CostModel] = None,
    network: Optional[NetworkModel] = None,
    memorize_best_sequence: bool = True,
    fifo_jobs: bool = False,
) -> ParallelRunResult:
    """Run parallel NMCS with the Last-Minute dispatcher on ``cluster``.

    .. deprecated:: 1.1  Shim over :class:`repro.api.Engine` (see module docstring).
    """
    from repro.api import Engine, SearchSpec

    warnings.warn(
        "run_last_minute is deprecated; use repro.api.Engine().run("
        "SearchSpec(backend='sim-cluster', dispatcher='lm', ...))",
        DeprecationWarning,
        stacklevel=2,
    )
    spec = SearchSpec(
        backend="sim-cluster",
        dispatcher=DispatcherKind.LAST_MINUTE.value,
        level=level,
        seed=master_seed,
        max_steps=max_root_steps,
        n_clients=cluster.n_clients,
        n_medians=n_medians,
        memorize_best_sequence=memorize_best_sequence,
        params={"lm_fifo_jobs": fifo_jobs},
    )
    engine = Engine(executor=executor, cost_model=cost_model, network=network)
    return engine.run(spec, state=state, cluster=cluster).raw
