"""Front-end for the Last-Minute parallel algorithm (Section IV-B)."""

from __future__ import annotations

from typing import Optional

from repro.cluster.network import NetworkModel
from repro.cluster.topology import ClusterSpec
from repro.games.base import GameState
from repro.parallel.config import DispatcherKind, ParallelConfig
from repro.parallel.driver import ParallelRunResult, run_parallel_nmcs
from repro.parallel.jobs import JobExecutor
from repro.timemodel.cost import CostModel

__all__ = ["run_last_minute"]


def run_last_minute(
    state: GameState,
    level: int,
    cluster: ClusterSpec,
    master_seed: int = 0,
    n_medians: int = 40,
    max_root_steps: Optional[int] = None,
    executor: Optional[JobExecutor] = None,
    cost_model: Optional[CostModel] = None,
    network: Optional[NetworkModel] = None,
    memorize_best_sequence: bool = True,
    fifo_jobs: bool = False,
) -> ParallelRunResult:
    """Run parallel NMCS with the Last-Minute dispatcher on ``cluster``."""
    config = ParallelConfig(
        level=level,
        dispatcher=DispatcherKind.LAST_MINUTE,
        n_medians=n_medians,
        max_root_steps=max_root_steps,
        master_seed=master_seed,
        memorize_best_sequence=memorize_best_sequence,
        lm_fifo_jobs=fifo_jobs,
    )
    return run_parallel_nmcs(state, config, cluster, executor, cost_model, network)
