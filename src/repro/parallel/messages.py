"""Typed message payloads exchanged by the four process roles.

The paper (Section IV, figures 2–5) distinguishes the communications:

* (a) root → median: ask for a nested search at the lower level;
* (b) median → dispatcher → median, then median → client: obtain a client and
  ship it a position to evaluate;
* (c) client → median: the result of the client's search;
* (c') client → dispatcher: the client announces it is free (Last-Minute only);
* (d) median → root: the result of the median's game.

Each of these is a dataclass below.  Message tags separate the request and
result planes so that a process never mistakes a new task for a pending
result (a median may be assigned a new root task while still collecting
client results for the previous one when there are fewer medians than legal
moves).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.games.base import GameState, Move
from repro.prng import SeedSequence

__all__ = [
    "TAG_TASK",
    "TAG_RESULT",
    "TAG_DISPATCH",
    "TAG_CONTROL",
    "MedianTask",
    "MedianResult",
    "DispatchRequest",
    "DispatchReply",
    "ClientJob",
    "ClientResult",
    "ClientFree",
    "Shutdown",
    "estimate_state_size",
]

#: Tag for new work assignments (root→median, median→client).
TAG_TASK = 1
#: Tag for results travelling upwards (client→median, median→root).
TAG_RESULT = 2
#: Tag for dispatcher traffic (median→dispatcher, client→dispatcher, replies).
TAG_DISPATCH = 3
#: Tag for control messages (shutdown).
TAG_CONTROL = 4


def estimate_state_size(state: GameState) -> float:
    """Rough wire size (bytes) of a game position.

    Positions are shipped as a compact description whose size grows with the
    number of moves already played; the constant models the fixed overhead of
    the initial position and the message envelope.  Only the network delay
    depends on this value, and for the paper's workloads that delay is
    latency-dominated, so a rough estimate is sufficient.
    """
    return 512.0 + 16.0 * state.moves_played()


@dataclass(frozen=True)
class MedianTask:
    """Root → median: evaluate one candidate move of the root's game (comm. a)."""

    root_step: int
    candidate_index: int
    move: Move
    position: GameState  # the root position *after* ``move`` has been played
    level: int  # nesting level of the search the median must perform
    seeds: SeedSequence


@dataclass(frozen=True)
class MedianResult:
    """Median → root: result of the median's game for one candidate (comm. d)."""

    root_step: int
    candidate_index: int
    move: Move
    score: float
    sequence: Tuple[Move, ...]  # includes ``move`` as its first element
    client_work_units: float = 0.0


@dataclass(frozen=True)
class DispatchRequest:
    """Median → dispatcher: which client should run my next job? (comm. b)

    ``moves_played`` is the number of moves already played in the position to
    analyse — the Last-Minute dispatcher uses it to order pending jobs by
    expected remaining computation time (fewer moves played = longer job).
    """

    median: str
    moves_played: int


@dataclass(frozen=True)
class DispatchReply:
    """Dispatcher → median: use this client for your job (comm. b)."""

    client: str


@dataclass(frozen=True)
class ClientJob:
    """Median → client: run a nested rollout from ``position`` (comm. b).

    The position already contains the median's candidate move (the paper's
    ``p = play(position, m)``); ``move`` is that candidate move, echoed back
    in the result so the median can splice sequences without bookkeeping.
    """

    job_id: Tuple
    position: GameState
    move: Move
    level: int
    seeds: SeedSequence
    reply_to: str


@dataclass(frozen=True)
class ClientResult:
    """Client → median: score and sequence of the client's search (comm. c)."""

    job_id: Tuple
    move: Move
    score: float
    sequence: Tuple[Move, ...]  # moves from the job position (excludes ``move``)
    work_units: float
    client: str


@dataclass(frozen=True)
class ClientFree:
    """Client → dispatcher: this client is now free (comm. c', Last-Minute only)."""

    client: str


@dataclass(frozen=True)
class Shutdown:
    """Control message terminating the receiving process' main loop."""

    reason: str = "end of search"
