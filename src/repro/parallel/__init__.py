"""Parallel Nested Monte-Carlo Search (Section IV of the paper).

Two execution substrates are provided:

* the **simulated cluster** (:func:`run_parallel_nmcs`,
  :func:`run_round_robin`, :func:`run_last_minute`) reproduces the paper's
  cluster-scale experiments — root / median / dispatcher / client processes,
  Round-Robin and Last-Minute dispatching, heterogeneous nodes — with real
  search results and simulated wall-clock time;
* the **local executors** (:func:`multiprocessing_nmcs`, :func:`threaded_nmcs`)
  run the root-level fan-out with genuine OS-level parallelism on the local
  machine.

Both substrates are exposed as backends of the unified :mod:`repro.api`
facade (``sim-cluster``, ``multiprocessing``, ``threads``); the experiment
front-ends here (:func:`first_move_experiment`, :func:`rollout_experiment`,
:func:`run_round_robin`, :func:`run_last_minute`) are deprecated shims over
that API.
"""

from repro.parallel.config import DispatcherKind, ParallelConfig
from repro.parallel.jobs import (
    JobOutcome,
    JobExecutor,
    DirectJobExecutor,
    CachingJobExecutor,
    PooledJobExecutor,
)
from repro.parallel.pool import PersistentWorkerPool, shared_pool, close_shared_pool
from repro.parallel.driver import (
    ParallelRunResult,
    SequentialRunResult,
    run_parallel_nmcs,
    first_move_experiment,
    rollout_experiment,
    sequential_reference,
)
from repro.parallel.round_robin import run_round_robin
from repro.parallel.last_minute import run_last_minute
from repro.parallel.multiproc import MultiprocessResult, multiprocessing_nmcs
from repro.parallel.threads import ThreadedResult, threaded_nmcs

__all__ = [
    "DispatcherKind",
    "ParallelConfig",
    "JobOutcome",
    "JobExecutor",
    "DirectJobExecutor",
    "CachingJobExecutor",
    "PooledJobExecutor",
    "PersistentWorkerPool",
    "shared_pool",
    "close_shared_pool",
    "ParallelRunResult",
    "SequentialRunResult",
    "run_parallel_nmcs",
    "first_move_experiment",
    "rollout_experiment",
    "sequential_reference",
    "run_round_robin",
    "run_last_minute",
    "MultiprocessResult",
    "multiprocessing_nmcs",
    "ThreadedResult",
    "threaded_nmcs",
]
