"""Thread-based parallel NMCS — the GIL ablation.

This executor is intentionally *not* the recommended way to parallelise the
search: CPython's global interpreter lock serialises pure-Python compute, so
a thread pool gives essentially no speedup for NMCS playouts.  It exists so
that the ablation benchmark can measure that limitation directly — it is the
reason the cluster-scale experiments of this reproduction run on a simulated
cluster (documented in DESIGN.md) and the local real-parallel path uses
processes (:mod:`repro.parallel.multiproc`).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.nested import candidate_evaluations, evaluate_move
from repro.core.result import BestTracker, SearchResult
from repro.games.base import GameState, Move
from repro.prng import SeedSequence

__all__ = ["ThreadedResult", "threaded_nmcs"]


@dataclass
class ThreadedResult:
    """Result of a thread-pool run, with wall-clock timing."""

    result: SearchResult
    wall_seconds: float
    n_workers: int
    n_evaluations: int

    @property
    def score(self) -> float:
        return self.result.score


def threaded_nmcs(
    state: GameState,
    level: int,
    master_seed: int = 0,
    n_workers: int = 4,
    max_steps: Optional[int] = None,
    seed_label: str = "nmcs",
) -> ThreadedResult:
    """Root-level parallel NMCS on a thread pool (GIL-bound, see module docstring)."""
    if level < 1:
        raise ValueError("level must be >= 1")
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    seeds = SeedSequence(master_seed, seed_label)
    start = time.perf_counter()
    n_evaluations = 0

    position = state.copy()
    best = BestTracker()
    played: List[Move] = []
    step = 0
    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        while True:
            evaluations = candidate_evaluations(position, level, step, seeds)
            if not evaluations:
                break
            futures = [
                pool.submit(evaluate_move, position, move, level - 1, child_seeds)
                for _, move, child_seeds in evaluations
            ]
            n_evaluations += len(futures)
            for future in futures:
                result = future.result()
                best.offer(result.score, tuple(played) + tuple(result.sequence))
            chosen = best.moves[len(played)]
            position.apply(chosen)
            played.append(chosen)
            step += 1
            if max_steps is not None and step >= max_steps:
                break

    if best.has_sequence():
        score, moves = best.best()
    else:
        score, moves = state.score(), ()
    wall = time.perf_counter() - start
    return ThreadedResult(
        result=SearchResult(score=score, sequence=tuple(moves), level=level),
        wall_seconds=wall,
        n_workers=n_workers,
        n_evaluations=n_evaluations,
    )
