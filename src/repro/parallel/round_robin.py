"""Front-end for the Round-Robin parallel algorithm (Section IV-A)."""

from __future__ import annotations

from typing import Optional

from repro.cluster.network import NetworkModel
from repro.cluster.topology import ClusterSpec
from repro.games.base import GameState
from repro.parallel.config import DispatcherKind, ParallelConfig
from repro.parallel.driver import ParallelRunResult, run_parallel_nmcs
from repro.parallel.jobs import JobExecutor
from repro.timemodel.cost import CostModel

__all__ = ["run_round_robin"]


def run_round_robin(
    state: GameState,
    level: int,
    cluster: ClusterSpec,
    master_seed: int = 0,
    n_medians: int = 40,
    max_root_steps: Optional[int] = None,
    executor: Optional[JobExecutor] = None,
    cost_model: Optional[CostModel] = None,
    network: Optional[NetworkModel] = None,
    memorize_best_sequence: bool = True,
) -> ParallelRunResult:
    """Run parallel NMCS with the Round-Robin dispatcher on ``cluster``."""
    config = ParallelConfig(
        level=level,
        dispatcher=DispatcherKind.ROUND_ROBIN,
        n_medians=n_medians,
        max_root_steps=max_root_steps,
        master_seed=master_seed,
        memorize_best_sequence=memorize_best_sequence,
    )
    return run_parallel_nmcs(state, config, cluster, executor, cost_model, network)
