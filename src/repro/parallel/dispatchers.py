"""The Round-Robin and Last-Minute dispatcher processes (Section IV).

The dispatcher's job is to tell median processes which client to use for each
lower-level search:

* the **Round-Robin** dispatcher answers every request immediately with the
  next client in a fixed cyclic order, regardless of whether that client is
  busy (jobs then queue at the client);
* the **Last-Minute** dispatcher keeps a list of free clients and a list of
  pending jobs.  Clients announce themselves when they become free
  (communication c' of Figure 4).  A freed client is assigned to the pending
  job with the *smallest number of moves played*, i.e. the job expected to
  take the longest, so slow or oversubscribed clients never hold the longest
  work — which is why the Last-Minute algorithm behaves better on
  heterogeneous clusters (Table VI).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

from repro.parallel.config import ParallelConfig
from repro.parallel.messages import (
    TAG_DISPATCH,
    ClientFree,
    DispatchReply,
    DispatchRequest,
    Shutdown,
)
from repro.parallel.roles import SMALL_MESSAGE_BYTES

__all__ = ["round_robin_dispatcher", "last_minute_dispatcher", "PendingJob"]


def round_robin_dispatcher(ctx, client_names: List[str]) -> Generator:
    """The Round-Robin dispatcher (paper pseudo-code, Section IV-A).

    ``client = first client; while true: receive median; send client; advance``.
    """
    if not client_names:
        raise ValueError("the dispatcher needs at least one client")
    index = 0
    served = 0
    while True:
        message = yield ctx.recv(tag=TAG_DISPATCH)
        payload = message.payload
        if isinstance(payload, Shutdown):
            return served
        if isinstance(payload, ClientFree):
            # Round-Robin ignores availability notifications (clients only
            # send them in Last-Minute mode, but tolerate stray ones).
            continue
        request: DispatchRequest = payload
        reply = DispatchReply(client=client_names[index])
        index = (index + 1) % len(client_names)
        served += 1
        yield ctx.send(request.median, reply, tag=TAG_DISPATCH, size_bytes=SMALL_MESSAGE_BYTES)


@dataclass
class PendingJob:
    """A median request the Last-Minute dispatcher could not serve immediately."""

    median: str
    moves_played: int
    arrival: int  # FIFO tie-breaker / ablation ordering


def last_minute_dispatcher(
    ctx,
    client_names: List[str],
    fifo_jobs: bool = False,
) -> Generator:
    """The Last-Minute dispatcher (paper pseudo-code, Section IV-B).

    Maintains ``listFreeClients`` (initially every client) and ``jobs``.  On a
    client notification: serve the pending job with the smallest number of
    moves played (longest expected remaining computation), or park the client.
    On a median request: hand out a free client, or queue the job.

    ``fifo_jobs`` is the ablation switch of DESIGN.md: when True, pending jobs
    are served in arrival order instead of longest-expected-first.
    """
    if not client_names:
        raise ValueError("the dispatcher needs at least one client")
    free_clients: List[str] = list(client_names)
    # Min-heap keyed (moves_played, arrival) — or (arrival,) for the FIFO
    # ablation.  The arrival counter is unique, so keys are a total order
    # (the PendingJob payload is never compared) and pop order matches the
    # old min()+remove() scan exactly, in O(log n) instead of O(n).
    jobs: List[Tuple[Tuple[int, ...], PendingJob]] = []
    arrival_counter = 0
    served = 0

    def job_key(moves_played: int, arrival: int) -> Tuple[int, ...]:
        return (arrival,) if fifo_jobs else (moves_played, arrival)

    def pick_job() -> PendingJob:
        return heapq.heappop(jobs)[1]

    while True:
        message = yield ctx.recv(tag=TAG_DISPATCH)
        payload = message.payload
        if isinstance(payload, Shutdown):
            return served
        if isinstance(payload, ClientFree):
            if jobs:
                job = pick_job()
                served += 1
                yield ctx.send(
                    job.median,
                    DispatchReply(client=payload.client),
                    tag=TAG_DISPATCH,
                    size_bytes=SMALL_MESSAGE_BYTES,
                )
            else:
                free_clients.append(payload.client)
        elif isinstance(payload, DispatchRequest):
            if free_clients:
                client = free_clients.pop(0)
                served += 1
                yield ctx.send(
                    payload.median,
                    DispatchReply(client=client),
                    tag=TAG_DISPATCH,
                    size_bytes=SMALL_MESSAGE_BYTES,
                )
            else:
                job = PendingJob(
                    median=payload.median,
                    moves_played=payload.moves_played,
                    arrival=arrival_counter,
                )
                heapq.heappush(jobs, (job_key(job.moves_played, job.arrival), job))
                arrival_counter += 1
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"dispatcher received unexpected payload {payload!r}")
