"""Driver orchestrating a parallel NMCS run on the simulated cluster.

:func:`run_parallel_nmcs` builds the simulation (nodes, root, medians,
dispatcher, clients), runs it until the root finishes its game and returns a
:class:`ParallelRunResult` bundling the search result, the simulated elapsed
time and the execution trace.  It is the kernel underneath the ``sim-cluster``
backend of :mod:`repro.api`.

The convenience front-ends reproducing the paper's experiment types —
:func:`first_move_experiment`, :func:`rollout_experiment` and
:func:`sequential_reference` — are kept as deprecated shims over the unified
API; new code should describe the scenario with a
:class:`repro.api.SearchSpec` and run it through :class:`repro.api.Engine`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.network import NetworkModel
from repro.cluster.simulator import Kernel, KernelStats
from repro.cluster.topology import ClusterSpec, homogeneous_cluster
from repro.cluster.trace import Trace
from repro.core.counters import WorkCounter
from repro.core.nested import nested_search
from repro.core.result import SearchResult
from repro.games.base import GameState
from repro.parallel.config import DispatcherKind, ParallelConfig
from repro.parallel.dispatchers import last_minute_dispatcher, round_robin_dispatcher
from repro.parallel.jobs import CachingJobExecutor, DirectJobExecutor, JobExecutor
from repro.obs import span as _obs_span
from repro.parallel.messages import TAG_DISPATCH, TAG_TASK
from repro.parallel.roles import client_process, median_name, median_process, root_process
from repro.prng import SeedSequence
from repro.timemodel.cost import CostModel

__all__ = [
    "ParallelRunResult",
    "SequentialRunResult",
    "run_parallel_nmcs",
    "first_move_experiment",
    "rollout_experiment",
    "sequential_reference",
]

DISPATCHER_NAME = "dispatcher"
ROOT_NAME = "root"


@dataclass
class ParallelRunResult:
    """Everything a benchmark needs to know about one simulated parallel run."""

    result: SearchResult
    simulated_seconds: float
    trace: Trace
    config: ParallelConfig
    cluster: ClusterSpec
    total_client_work: float
    n_jobs: int
    #: Event-loop diagnostics of the simulated run (events fired/cancelled,
    #: peak heap size, wall-clock per simulated second).
    kernel_stats: Optional[KernelStats] = None

    @property
    def score(self) -> float:
        return self.result.score

    def client_utilisation(self) -> float:
        """Fraction of total client-seconds actually spent computing."""
        if self.simulated_seconds <= 0 or self.cluster.n_clients == 0:
            return 0.0
        busy = self.trace.busy_time("client")
        return busy / (self.simulated_seconds * self.cluster.n_clients)


@dataclass
class SequentialRunResult:
    """The sequential algorithm run through the same cost model."""

    result: SearchResult
    simulated_seconds: float
    work_units: float
    freq_ghz: float


def run_parallel_nmcs(
    state: GameState,
    config: ParallelConfig,
    cluster: ClusterSpec,
    executor: Optional[JobExecutor] = None,
    cost_model: Optional[CostModel] = None,
    network: Optional[NetworkModel] = None,
) -> ParallelRunResult:
    """Run one parallel NMCS search on the simulated ``cluster``.

    Parameters
    ----------
    state:
        The initial position of the top-level game.
    config:
        Search parameters (level, dispatcher, medians, seeds, ...).
    cluster:
        Cluster topology (nodes, client placement).
    executor:
        Job executor used by the simulated clients; pass a shared
        :class:`~repro.parallel.jobs.CachingJobExecutor` to amortise the real
        search work across several topologies of the same workload.
    cost_model / network:
        Simulation parameters; defaults model the paper's hardware.
    """
    if cluster.n_clients < 1:
        raise ValueError("the cluster must host at least one client process")
    executor = executor if executor is not None else CachingJobExecutor()
    with _obs_span(
        "parallel.setup",
        dispatcher=config.dispatcher.value,
        n_clients=cluster.n_clients,
        n_medians=config.n_medians,
    ):
        kernel = Kernel(cost_model=cost_model, network=network)
        kernel.add_nodes(cluster.nodes)

        client_names = cluster.client_names()
        median_names = [median_name(i) for i in range(config.n_medians)]

        # Dispatcher and medians live on the server node, as in the paper.
        if config.dispatcher is DispatcherKind.ROUND_ROBIN:
            kernel.spawn(DISPATCHER_NAME, cluster.server_node, round_robin_dispatcher, client_names)
        else:
            kernel.spawn(
                DISPATCHER_NAME,
                cluster.server_node,
                last_minute_dispatcher,
                client_names,
                config.lm_fifo_jobs,
            )
        for name in median_names:
            kernel.spawn(name, cluster.server_node, median_process, config, DISPATCHER_NAME, ROOT_NAME)
        for placement in cluster.clients:
            kernel.spawn(
                placement.client_name,
                placement.node_name,
                client_process,
                config,
                executor,
                DISPATCHER_NAME,
            )

        shutdown_plan: List[Tuple[str, int]] = (
            [(name, TAG_TASK) for name in median_names]
            + [(name, TAG_TASK) for name in client_names]
            + [(DISPATCHER_NAME, TAG_DISPATCH)]
        )
        kernel.spawn(
            ROOT_NAME,
            cluster.server_node,
            root_process,
            state,
            config,
            median_names,
            shutdown_plan,
        )

    with _obs_span("parallel.kernel_run", dispatcher=config.dispatcher.value):
        kernel.run(until_process=ROOT_NAME)
    root = kernel.process(ROOT_NAME)
    if root.exception is not None:  # pragma: no cover - defensive
        raise root.exception
    result: SearchResult = root.return_value
    finish_time = root.finished_at if root.finished_at is not None else kernel.now

    trace = kernel.trace
    total_client_work = trace.total_work("client")
    n_jobs = len(trace.computes_by_process("client"))
    return ParallelRunResult(
        result=result,
        simulated_seconds=finish_time,
        trace=trace,
        config=config,
        cluster=cluster,
        total_client_work=total_client_work,
        n_jobs=n_jobs,
        kernel_stats=kernel.stats(),
    )


def _cluster_experiment_shim(
    what: str,
    max_steps: Optional[int],
    state: GameState,
    level: int,
    dispatcher: "DispatcherKind | str",
    cluster: ClusterSpec,
    master_seed: int,
    n_medians: int,
    executor: Optional[JobExecutor],
    cost_model: Optional[CostModel],
    network: Optional[NetworkModel],
    memorize_best_sequence: bool,
) -> ParallelRunResult:
    """Delegate a legacy experiment front-end through the unified API."""
    from repro.api import Engine, SearchSpec

    warnings.warn(
        f"{what} is deprecated; use repro.api.Engine().run(SearchSpec(backend='sim-cluster', ...))",
        DeprecationWarning,
        stacklevel=3,
    )
    spec = SearchSpec(
        backend="sim-cluster",
        level=level,
        seed=master_seed,
        max_steps=max_steps,
        dispatcher=DispatcherKind.parse(dispatcher).value,
        n_clients=cluster.n_clients,
        n_medians=n_medians,
        memorize_best_sequence=memorize_best_sequence,
    )
    engine = Engine(executor=executor, cost_model=cost_model, network=network)
    return engine.run(spec, state=state, cluster=cluster).raw


def first_move_experiment(
    state: GameState,
    level: int,
    dispatcher: "DispatcherKind | str",
    cluster: ClusterSpec,
    master_seed: int = 0,
    n_medians: int = 40,
    executor: Optional[JobExecutor] = None,
    cost_model: Optional[CostModel] = None,
    network: Optional[NetworkModel] = None,
    memorize_best_sequence: bool = True,
) -> ParallelRunResult:
    """The paper's "first move" experiment: stop after the root's first move.

    .. deprecated:: 1.1
        Shim over :class:`repro.api.Engine`; run a
        :class:`~repro.api.SearchSpec` with ``max_steps=1`` instead.
    """
    return _cluster_experiment_shim(
        "first_move_experiment", 1, state, level, dispatcher, cluster,
        master_seed, n_medians, executor, cost_model, network, memorize_best_sequence,
    )


def rollout_experiment(
    state: GameState,
    level: int,
    dispatcher: "DispatcherKind | str",
    cluster: ClusterSpec,
    master_seed: int = 0,
    n_medians: int = 40,
    executor: Optional[JobExecutor] = None,
    cost_model: Optional[CostModel] = None,
    network: Optional[NetworkModel] = None,
    memorize_best_sequence: bool = True,
) -> ParallelRunResult:
    """The paper's "one rollout" experiment: play the root's game to the end.

    .. deprecated:: 1.1
        Shim over :class:`repro.api.Engine`; run a
        :class:`~repro.api.SearchSpec` with ``max_steps=None`` instead.
    """
    return _cluster_experiment_shim(
        "rollout_experiment", None, state, level, dispatcher, cluster,
        master_seed, n_medians, executor, cost_model, network, memorize_best_sequence,
    )


def sequential_reference(
    state: GameState,
    level: int,
    master_seed: int = 0,
    max_steps: Optional[int] = None,
    freq_ghz: float = 1.86,
    cost_model: Optional[CostModel] = None,
    seed_label: str = "nmcs",
) -> SequentialRunResult:
    """Run the *sequential* algorithm and express its duration via the cost model.

    This is the Table I baseline: the time the search would take on a single
    core of the given frequency under the same work→time mapping used for the
    simulated cluster, making sequential and parallel times directly
    comparable (their ratio is the speedup).

    .. deprecated:: 1.1
        Shim over :class:`repro.api.Engine`; run a
        :class:`~repro.api.SearchSpec` with ``backend="sequential"`` instead.
    """
    from repro.api import Engine, SearchSpec

    warnings.warn(
        "sequential_reference is deprecated; use repro.api.Engine().run(SearchSpec(...))",
        DeprecationWarning,
        stacklevel=2,
    )
    if seed_label != "nmcs":
        # The unified API fixes the label per algorithm; honour custom labels
        # through the kernel directly.
        cost_model = cost_model if cost_model is not None else CostModel()
        counter = WorkCounter()
        result = nested_search(
            state, level, SeedSequence(master_seed, seed_label), counter=counter, max_steps=max_steps
        )
        seconds = cost_model.seconds_for(counter.moves, freq_ghz)
        return SequentialRunResult(
            result=result,
            simulated_seconds=seconds,
            work_units=float(counter.moves),
            freq_ghz=freq_ghz,
        )
    report = Engine(cost_model=cost_model).run(
        SearchSpec(level=level, seed=master_seed, max_steps=max_steps, freq_ghz=freq_ghz),
        state=state,
    )
    return SequentialRunResult(
        result=report.raw,
        simulated_seconds=report.simulated_seconds,
        work_units=report.work_units,
        freq_ghz=freq_ghz,
    )
