"""Real shared-memory parallel NMCS using persistent worker processes.

The simulated cluster (see :mod:`repro.parallel.driver`) reproduces the
*cluster-scale* results of the paper; this module provides genuine wall-clock
parallelism on the local machine, mirroring the root-level fan-out of the
paper: at every step of the top-level game, the lower-level evaluation of
each candidate move is executed by a pool of worker processes.

Because every worker is a separate OS process with its own interpreter, this
path is not limited by the GIL (unlike :mod:`repro.parallel.threads`, kept for
the ablation that quantifies that limitation).  It follows the same seed
derivation as the sequential algorithm, so — like the simulated cluster — it
returns exactly the same result as :func:`repro.core.nested.nested_search`
with the same master seed.

Positions are shipped to the workers as compact binary wire frames
(:meth:`repro.games.base.GameState.encode`) through a
:class:`repro.parallel.pool.PersistentWorkerPool` instead of per-job pickled
state objects; by default searches share the process-wide pool
(:func:`repro.parallel.pool.shared_pool`), so repeated searches reuse the
same worker processes instead of forking a fresh pool per call.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.nested import candidate_evaluations
from repro.core.result import BestTracker, SearchResult
from repro.games.base import GameState, Move
from repro.parallel.pool import PersistentWorkerPool, shared_pool
from repro.prng import SeedSequence

__all__ = ["MultiprocessResult", "multiprocessing_nmcs", "pool_evaluate"]


@dataclass
class MultiprocessResult:
    """Result of a real parallel run, with wall-clock timing."""

    result: SearchResult
    wall_seconds: float
    n_workers: int
    n_evaluations: int

    @property
    def score(self) -> float:
        return self.result.score


def pool_evaluate(
    pool: PersistentWorkerPool,
    state: GameState,
    level: int,
    step: int,
    seeds: SeedSequence,
) -> List[Tuple[int, float, Tuple[Move, ...]]]:
    """Evaluate every candidate move of ``state`` in parallel on ``pool``.

    Returns ``(candidate_index, score, sequence)`` triples in candidate order.
    """
    evaluations = candidate_evaluations(state, level, step, seeds)
    if not evaluations:
        return []
    outcomes = pool.evaluate_candidates(state, evaluations, level - 1)
    return [(index, score, sequence) for index, score, sequence, _ in outcomes]


def multiprocessing_nmcs(
    state: GameState,
    level: int,
    master_seed: int = 0,
    n_workers: Optional[int] = None,
    max_steps: Optional[int] = None,
    seed_label: str = "nmcs",
    start_method: Optional[str] = None,
    pool: Optional[PersistentWorkerPool] = None,
) -> MultiprocessResult:
    """Root-level parallel NMCS on persistent worker processes.

    Parameters
    ----------
    n_workers:
        Number of worker processes (defaults to the CPU count).
    max_steps:
        Stop after this many root moves (``1`` = first-move experiment).
    start_method:
        ``multiprocessing`` start method.  When given, a dedicated pool with
        that start method is created for this call; otherwise the
        process-wide shared pool is used (and kept alive for later calls).
    pool:
        An explicit :class:`~repro.parallel.pool.PersistentWorkerPool` to run
        on (the caller keeps ownership; ``n_workers``/``start_method`` are
        ignored).
    """
    if level < 1:
        raise ValueError("level must be >= 1")
    seeds = SeedSequence(master_seed, seed_label)
    own_pool: Optional[PersistentWorkerPool] = None
    if pool is None:
        if start_method is not None:
            pool = own_pool = PersistentWorkerPool(n_workers=n_workers, start_method=start_method)
        else:
            pool = shared_pool(n_workers)
    start = time.perf_counter()
    n_evaluations = 0

    try:
        position = state.copy()
        best = BestTracker()
        played: List[Move] = []
        step = 0
        while True:
            outcomes = pool_evaluate(pool, position, level, step, seeds)
            if not outcomes:
                break
            n_evaluations += len(outcomes)
            for _, score, sequence in outcomes:
                best.offer(score, tuple(played) + tuple(sequence))
            chosen = best.moves[len(played)]
            position.apply(chosen)
            played.append(chosen)
            step += 1
            if max_steps is not None and step >= max_steps:
                break
    finally:
        if own_pool is not None:
            own_pool.close()

    if best.has_sequence():
        score, moves = best.best()
    else:
        score, moves = state.score(), ()
    wall = time.perf_counter() - start
    return MultiprocessResult(
        result=SearchResult(score=score, sequence=tuple(moves), level=level),
        wall_seconds=wall,
        n_workers=pool.n_workers,
        n_evaluations=n_evaluations,
    )
