"""Real shared-memory parallel NMCS using ``multiprocessing``.

The simulated cluster (see :mod:`repro.parallel.driver`) reproduces the
*cluster-scale* results of the paper; this module provides genuine wall-clock
parallelism on the local machine, mirroring the root-level fan-out of the
paper: at every step of the top-level game, the lower-level evaluation of
each candidate move is executed by a pool of worker processes.

Because every worker is a separate OS process with its own interpreter, this
path is not limited by the GIL (unlike :mod:`repro.parallel.threads`, kept for
the ablation that quantifies that limitation).  It follows the same seed
derivation as the sequential algorithm, so — like the simulated cluster — it
returns exactly the same result as :func:`repro.core.nested.nested_search`
with the same master seed.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.nested import candidate_evaluations, evaluate_move
from repro.core.result import BestTracker, SearchResult
from repro.games.base import GameState, Move
from repro.prng import SeedSequence

__all__ = ["MultiprocessResult", "multiprocessing_nmcs", "pool_evaluate"]


@dataclass
class MultiprocessResult:
    """Result of a real parallel run, with wall-clock timing."""

    result: SearchResult
    wall_seconds: float
    n_workers: int
    n_evaluations: int

    @property
    def score(self) -> float:
        return self.result.score


def _evaluate_job(args: Tuple[GameState, Move, int, SeedSequence]) -> Tuple[float, Tuple[Move, ...]]:
    """Worker-side evaluation of one candidate move (runs in a separate process)."""
    state, move, level, seeds = args
    result = evaluate_move(state, move, level, seeds)
    return result.score, tuple(result.sequence)


def pool_evaluate(
    pool,
    state: GameState,
    level: int,
    step: int,
    seeds: SeedSequence,
    chunksize: int = 1,
) -> List[Tuple[int, float, Tuple[Move, ...]]]:
    """Evaluate every candidate move of ``state`` in parallel on ``pool``.

    Returns ``(candidate_index, score, sequence)`` triples in candidate order.
    """
    evaluations = candidate_evaluations(state, level, step, seeds)
    if not evaluations:
        return []
    jobs = [(state, move, level - 1, child_seeds) for _, move, child_seeds in evaluations]
    outcomes = pool.map(_evaluate_job, jobs, chunksize=chunksize)
    return [
        (i, score, sequence)
        for (i, _, _), (score, sequence) in zip(evaluations, outcomes)
    ]


def multiprocessing_nmcs(
    state: GameState,
    level: int,
    master_seed: int = 0,
    n_workers: Optional[int] = None,
    max_steps: Optional[int] = None,
    seed_label: str = "nmcs",
    start_method: Optional[str] = None,
) -> MultiprocessResult:
    """Root-level parallel NMCS on a local process pool.

    Parameters
    ----------
    n_workers:
        Number of worker processes (defaults to the CPU count).
    max_steps:
        Stop after this many root moves (``1`` = first-move experiment).
    start_method:
        ``multiprocessing`` start method; the platform default is used when
        omitted (``fork`` on Linux, which is the cheapest).
    """
    if level < 1:
        raise ValueError("level must be >= 1")
    n_workers = n_workers if n_workers is not None else (os.cpu_count() or 1)
    seeds = SeedSequence(master_seed, seed_label)
    context = multiprocessing.get_context(start_method) if start_method else multiprocessing
    start = time.perf_counter()
    n_evaluations = 0

    position = state.copy()
    best = BestTracker()
    played: List[Move] = []
    step = 0
    with context.Pool(processes=n_workers) as pool:
        while True:
            outcomes = pool_evaluate(pool, position, level, step, seeds)
            if not outcomes:
                break
            n_evaluations += len(outcomes)
            for _, score, sequence in outcomes:
                best.offer(score, tuple(played) + tuple(sequence))
            chosen = best.moves[len(played)]
            position.apply(chosen)
            played.append(chosen)
            step += 1
            if max_steps is not None and step >= max_steps:
                break

    if best.has_sequence():
        score, moves = best.best()
    else:
        score, moves = state.score(), ()
    wall = time.perf_counter() - start
    return MultiprocessResult(
        result=SearchResult(score=score, sequence=tuple(moves), level=level),
        wall_seconds=wall,
        n_workers=n_workers,
        n_evaluations=n_evaluations,
    )
