"""The root, median and client process roles (Section IV of the paper).

Each role is a generator function run inside the simulated cluster (see
:mod:`repro.cluster.process`).  The pseudo-code of the paper maps to these
functions as follows:

* the **root process** plays a game at the highest nesting level; at each
  step it sends the position after every candidate move to a median process
  and waits for all their answers;
* a **median process** receives such a position and plays a game one level
  below; at each of *its* steps it asks the dispatcher for a client for every
  candidate move, ships the resulting positions to those clients, collects
  the scores, plays the best move and finally reports the game's result back
  to the root;
* a **client process** receives positions and runs a nested rollout at the
  predefined level (``config.client_level``), optionally notifying the
  dispatcher that it is free again (Last-Minute algorithm) before returning
  the score.

The root and median games use the same best-sequence memorisation as the
sequential ``nested`` function when ``config.memorize_best_sequence`` is set
(the default), which makes the parallel search return exactly the result of
the sequential search it parallelises.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.core.nested import candidate_evaluations
from repro.core.result import BestTracker, SearchResult
from repro.games.base import GameState, Move
from repro.parallel.config import DispatcherKind, ParallelConfig
from repro.parallel.jobs import JobExecutor
from repro.parallel.messages import (
    TAG_CONTROL,
    TAG_DISPATCH,
    TAG_RESULT,
    TAG_TASK,
    ClientFree,
    ClientJob,
    ClientResult,
    DispatchRequest,
    DispatchReply,
    MedianResult,
    MedianTask,
    Shutdown,
    estimate_state_size,
)
from repro.prng import SeedSequence

__all__ = [
    "root_process",
    "median_process",
    "client_process",
    "median_name",
    "client_result_size",
    "SMALL_MESSAGE_BYTES",
]

#: Wire size of small fixed-format messages (scores, dispatcher traffic).
SMALL_MESSAGE_BYTES = 64.0


def median_name(index: int) -> str:
    """Canonical name of the ``index``-th median process."""
    return f"median-{index:03d}"


def client_result_size(sequence: Sequence[Move]) -> float:
    """Wire size of a result message carrying ``sequence``."""
    return SMALL_MESSAGE_BYTES + 16.0 * len(sequence)


# --------------------------------------------------------------------------- #
# Root process
# --------------------------------------------------------------------------- #
def root_process(
    ctx,
    state: GameState,
    config: ParallelConfig,
    median_names: List[str],
    shutdown_plan: List[Tuple[str, int]],
) -> Generator:
    """The root process: plays the top-level game by delegating to medians.

    ``shutdown_plan`` lists ``(process_name, tag)`` pairs to notify once the
    game is over, using the tag that process listens on.  Returns (as the
    generator's return value) the :class:`SearchResult` of the top-level
    game, exactly like :func:`repro.core.nested.nested_search`.
    """
    seeds = SeedSequence(config.master_seed, config.seed_label)
    position = state.copy()
    best = BestTracker()
    played: List[Move] = []
    step = 0

    while True:
        evaluations = candidate_evaluations(position, config.level, step, seeds)
        if not evaluations:
            break
        # -- communication (a): one candidate position per median, round-robin.
        pending: Dict[int, Move] = {}
        for i, move, child_seeds in evaluations:
            target = median_names[i % len(median_names)]
            child = position.play(move)
            task = MedianTask(
                root_step=step,
                candidate_index=i,
                move=move,
                position=child,
                level=config.level - 1,
                seeds=child_seeds,
            )
            yield ctx.send(target, task, tag=TAG_TASK, size_bytes=estimate_state_size(child))
            pending[i] = move
        # Trying every candidate move costs the root one move application each.
        yield ctx.compute(len(evaluations))

        # -- communication (d): wait for every median answer of this step.
        answers: Dict[int, MedianResult] = {}
        while len(answers) < len(pending):
            message = yield ctx.recv(tag=TAG_RESULT)
            result: MedianResult = message.payload
            if result.root_step != step:  # pragma: no cover - defensive
                raise RuntimeError("median answered for a different root step")
            answers[result.candidate_index] = result

        # Offer the answers in candidate order so tie-breaking matches the
        # sequential algorithm whatever order the answers arrived in.
        for i in sorted(answers):
            best.offer(answers[i].score, tuple(played) + tuple(answers[i].sequence))

        if config.memorize_best_sequence:
            chosen = best.moves[len(played)]
        else:
            best_index = max(sorted(answers), key=lambda i: answers[i].score)
            chosen = answers[best_index].move
        position.apply(chosen)
        yield ctx.compute(1)
        played.append(chosen)
        step += 1
        if config.max_root_steps is not None and step >= config.max_root_steps:
            break

    # Terminate every other process: the search is over.
    for target, tag in shutdown_plan:
        yield ctx.send(target, Shutdown(), tag=tag, size_bytes=SMALL_MESSAGE_BYTES)

    if config.memorize_best_sequence and best.has_sequence():
        score, moves = best.best()
    elif best.has_sequence():
        score, moves = position.score(), tuple(played)
    else:
        score, moves = state.score(), ()
    return SearchResult(score=score, sequence=tuple(moves), level=config.level)


# --------------------------------------------------------------------------- #
# Median process
# --------------------------------------------------------------------------- #
def _median_play_game(
    ctx,
    start: GameState,
    level: int,
    seeds: SeedSequence,
    config: ParallelConfig,
    dispatcher: str,
) -> Generator:
    """Play one game at ``level`` by delegating candidate evaluations to clients.

    This is the distributed equivalent of
    :func:`repro.core.nested.nested_search` — same seed derivation, same
    best-sequence memorisation — with every ``evaluate_move`` shipped to a
    client chosen by the dispatcher.  Returns
    ``(score, moves, client_work_units)``.
    """
    position = start.copy()
    best = BestTracker()
    played: List[Move] = []
    step = 0
    total_client_work = 0.0

    while True:
        evaluations = candidate_evaluations(position, level, step, seeds)
        if not evaluations:
            break
        pending: Dict[Tuple, int] = {}
        for i, move, child_seeds in evaluations:
            # -- communication (b): ask the dispatcher for a client...
            request = DispatchRequest(median=ctx.name, moves_played=position.moves_played())
            yield ctx.send(dispatcher, request, tag=TAG_DISPATCH, size_bytes=SMALL_MESSAGE_BYTES)
            reply_msg = yield ctx.recv(source=dispatcher, tag=TAG_DISPATCH)
            reply: DispatchReply = reply_msg.payload
            # ...then ship it the position to evaluate.
            child = position.play(move)
            job_id = (ctx.name, step, i)
            job = ClientJob(
                job_id=job_id,
                position=child,
                move=move,
                level=level - 1,
                seeds=child_seeds,
                reply_to=ctx.name,
            )
            yield ctx.send(reply.client, job, tag=TAG_TASK, size_bytes=estimate_state_size(child))
            pending[job_id] = i
        yield ctx.compute(len(evaluations))

        # -- communication (c): collect one result per shipped job.
        answers: Dict[int, ClientResult] = {}
        while len(answers) < len(pending):
            message = yield ctx.recv(tag=TAG_RESULT)
            result: ClientResult = message.payload
            if result.job_id not in pending:  # pragma: no cover - defensive
                raise RuntimeError(f"unexpected client result {result.job_id!r}")
            answers[pending[result.job_id]] = result
            total_client_work += result.work_units

        for i in sorted(answers):
            result = answers[i]
            best.offer(result.score, tuple(played) + (result.move,) + tuple(result.sequence))

        if config.memorize_best_sequence:
            chosen = best.moves[len(played)]
        else:
            best_index = max(sorted(answers), key=lambda i: answers[i].score)
            chosen = answers[best_index].move
        position.apply(chosen)
        yield ctx.compute(1)
        played.append(chosen)
        step += 1

    if best.has_sequence():
        score, moves = best.best()
    else:
        score, moves = start.score(), ()
    return score, tuple(moves), total_client_work


def median_process(ctx, config: ParallelConfig, dispatcher: str, root: str = "root") -> Generator:
    """A median process: serve root tasks until told to shut down.

    (The paper's median pseudo-code, lines 1–12.)  Tasks and the shutdown
    message both arrive with ``TAG_TASK``; results the median is waiting for
    arrive with ``TAG_RESULT`` — keeping the two planes on separate tags means
    a new root task queued behind a busy median is never mistaken for a
    client result.
    """
    while True:
        message = yield ctx.recv(tag=TAG_TASK)
        payload = message.payload
        if isinstance(payload, Shutdown):
            return None
        task: MedianTask = payload
        score, moves, client_work = yield from _median_play_game(
            ctx, task.position, task.level, task.seeds, config, dispatcher
        )
        result = MedianResult(
            root_step=task.root_step,
            candidate_index=task.candidate_index,
            move=task.move,
            score=score,
            sequence=(task.move,) + tuple(moves),
            client_work_units=client_work,
        )
        yield ctx.send(root, result, tag=TAG_RESULT, size_bytes=client_result_size(result.sequence))


# --------------------------------------------------------------------------- #
# Client process
# --------------------------------------------------------------------------- #
def client_process(
    ctx,
    config: ParallelConfig,
    executor: JobExecutor,
    dispatcher: str,
) -> Generator:
    """A client process: run nested rollouts at the predefined level.

    (The paper's client pseudo-code, lines 1–6.)
    """
    notify_dispatcher = config.dispatcher is DispatcherKind.LAST_MINUTE
    while True:
        message = yield ctx.recv(tag=TAG_TASK)
        payload = message.payload
        if isinstance(payload, Shutdown):
            return None
        job: ClientJob = payload
        outcome = executor.execute(job.position, job.level, job.seeds)
        # The search really ran (outcome is exact); its *duration* is simulated
        # by the node executing this many work units at its current share.
        yield ctx.compute(outcome.work_units)
        if notify_dispatcher:
            yield ctx.send(
                dispatcher,
                ClientFree(client=ctx.name),
                tag=TAG_DISPATCH,
                size_bytes=SMALL_MESSAGE_BYTES,
            )
        result = ClientResult(
            job_id=job.job_id,
            move=job.move,
            score=outcome.score,
            sequence=tuple(outcome.sequence),
            work_units=outcome.work_units,
            client=ctx.name,
        )
        yield ctx.send(
            job.reply_to, result, tag=TAG_RESULT, size_bytes=client_result_size(result.sequence)
        )
