"""A persistent, pickle-free worker pool for the real parallel executors.

The original :mod:`repro.parallel.multiproc` spun up a fresh
``multiprocessing.Pool`` per search call and shipped every job as a pickled
``(state, move, level, seeds)`` tuple — re-pickling the *whole* game state
(sets, dicts, a numpy matrix for TSP) once per candidate move.  This module
replaces that with:

* **Persistent workers** — processes are spawned once and reused across
  batches, steps and whole searches (see :func:`shared_pool` for a
  process-wide singleton).
* **Compact wire forms** — positions cross the process boundary as the
  game's own binary ``encode()`` frame (see :mod:`repro.games.base`), not as
  a pickled object graph; games without a registered wire kind transparently
  fall back to pickle payloads inside the same framing.
* **Worker-side decode caching** — every candidate evaluation of a step
  shares one encoded blob, so each worker decodes a given position at most
  once and replays cheap ``copy()`` calls for the rest of the batch.

Moves and result sequences travel as plain nested tuples (namedtuple moves
compare equal to their tuple form, and every kernel's ``apply`` coerces
plain tuples), and seeds travel as ``(master_seed, path)`` label tuples, so
no game or library class is ever serialised on the hot path.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import queue as _queue
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.counters import WorkCounter
from repro.core.nested import evaluate_move, nested_search
from repro.core.sample import sample
from repro.games.base import GameState, Move, decode_state
from repro.prng import SeedSequence

__all__ = ["PersistentWorkerPool", "shared_pool", "close_shared_pool"]

#: Worker-side decoded-position cache size (distinct encoded blobs).
_DECODE_CACHE_LIMIT = 64


def _plain(move: Any) -> Any:
    """Convert a move to plain nested tuples (identity for ints/strings)."""
    if isinstance(move, tuple):
        return tuple(_plain(v) for v in move)
    return move


def _worker_main(tasks: Any, results: Any) -> None:
    """Worker loop: decode positions from wire frames and evaluate candidates."""
    decode_cache: Dict[bytes, GameState] = {}
    while True:
        message = tasks.get()
        if message is None:
            break
        job_id, blob, kind, move, level, master_seed, path = message
        try:
            state = decode_cache.get(blob)
            if state is None:
                if len(decode_cache) >= _DECODE_CACHE_LIMIT:
                    decode_cache.clear()
                state = decode_cache[blob] = decode_state(blob)
            seeds = SeedSequence(master_seed, *path)
            if kind == "eval":
                result = evaluate_move(state, move, level, seeds)
                work_units = float(result.work.moves)
            else:  # "search": a full client job from the decoded position
                counter = WorkCounter()
                if level <= 0:
                    result = sample(state, seeds=seeds, counter=counter)
                else:
                    result = nested_search(state, level, seeds, counter=counter)
                work_units = float(counter.moves)
            sequence = tuple(_plain(m) for m in result.sequence)
            results.put(("ok", job_id, result.score, sequence, work_units))
        except BaseException as exc:  # surface instead of deadlocking the caller
            results.put(("err", job_id, f"{type(exc).__name__}: {exc}", (), 0.0))


class PersistentWorkerPool:
    """A pool of long-lived evaluation workers fed by compact wire frames.

    Unlike ``multiprocessing.Pool``, the pool is meant to outlive a single
    search: create it once (or use :func:`shared_pool`) and every
    :meth:`evaluate_candidates` call reuses the same worker processes.
    """

    def __init__(self, n_workers: Optional[int] = None, start_method: Optional[str] = None):
        if n_workers is not None and n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers if n_workers is not None else (os.cpu_count() or 1)
        context = multiprocessing.get_context(start_method) if start_method else multiprocessing
        self._tasks = context.Queue()
        self._results = context.Queue()
        self._workers = [
            context.Process(target=_worker_main, args=(self._tasks, self._results), daemon=True)
            for _ in range(self.n_workers)
        ]
        for w in self._workers:
            w.start()
        self._next_id = 0
        self._closed = False
        #: total candidate evaluations executed (for reporting)
        self.jobs_executed = 0

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def evaluate_candidates(
        self,
        state: GameState,
        evaluations: Sequence[Tuple[int, Move, SeedSequence]],
        level: int,
    ) -> List[Tuple[int, float, Tuple[Move, ...], float]]:
        """Evaluate candidate moves of ``state`` at ``level`` on the workers.

        ``evaluations`` are ``(candidate_index, move, child_seeds)`` triples
        (the shape produced by
        :func:`repro.core.nested.candidate_evaluations`); the result is
        ``(candidate_index, score, sequence, work_units)`` in input order.
        The position is encoded **once** and shared by every candidate's
        message; per-candidate messages (rather than per-worker chunks) keep
        the load balanced when playout costs vary wildly.
        """
        if self._closed:
            raise RuntimeError("the worker pool has been closed")
        if not evaluations:
            return []
        blob = state.encode()
        pending: Dict[int, int] = {}
        for index, move, child_seeds in evaluations:
            job_id = self._next_id
            self._next_id += 1
            pending[job_id] = index
            self._tasks.put(
                (job_id, blob, "eval", _plain(move), level, child_seeds.master_seed, child_seeds.path)
            )
        outcomes: Dict[int, Tuple[float, Tuple[Move, ...], float]] = {}
        while pending:
            try:
                status, job_id, score, sequence, work_units = self._results.get(timeout=600.0)
            except _queue.Empty:
                self._reap()
                raise RuntimeError("worker pool timed out waiting for results")
            if status != "ok":
                self._reap()
                raise RuntimeError(f"worker job failed: {score}")
            outcomes[pending.pop(job_id)] = (score, sequence, work_units)
        self.jobs_executed += len(evaluations)
        return [
            (index, *outcomes[index])
            for index, _, _ in evaluations
        ]

    def evaluate_one(self, state: GameState, move: Move, level: int, seeds: SeedSequence) -> Tuple[float, Tuple[Move, ...], float]:
        """Evaluate a single candidate (``(score, sequence, work_units)``)."""
        ((_, score, sequence, work_units),) = self.evaluate_candidates(
            state, [(0, move, seeds)], level
        )
        return score, sequence, work_units

    def run_search(
        self, state: GameState, level: int, seeds: SeedSequence
    ) -> Tuple[float, Tuple[Move, ...], float]:
        """Run one full client job — a level-``level`` search from ``state`` —
        on a worker, returning ``(score, sequence, work_units)``.

        This is the unit shape of :class:`repro.parallel.jobs.JobExecutor`,
        so the simulated cluster's real work can be executed out-of-process
        through the same wire protocol (see
        :class:`repro.parallel.jobs.PooledJobExecutor`).
        """
        if self._closed:
            raise RuntimeError("the worker pool has been closed")
        job_id = self._next_id
        self._next_id += 1
        self._tasks.put(
            (job_id, state.encode(), "search", None, level, seeds.master_seed, seeds.path)
        )
        while True:
            try:
                status, got_id, score, sequence, work_units = self._results.get(timeout=600.0)
            except _queue.Empty:
                self._reap()
                raise RuntimeError("worker pool timed out waiting for results")
            if status != "ok":
                self._reap()
                raise RuntimeError(f"worker job failed: {score}")
            if got_id == job_id:
                self.jobs_executed += 1
                return score, sequence, work_units

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def alive(self) -> bool:
        """True while the pool is open and every worker process lives."""
        return not self._closed and all(w.is_alive() for w in self._workers)

    def _reap(self) -> None:
        for w in self._workers:
            if w.is_alive():
                w.terminate()
        self._closed = True

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            try:
                self._tasks.put(None)
            except (OSError, ValueError):  # pragma: no cover - defensive
                break
        for w in self._workers:
            w.join(timeout=5.0)
            if w.is_alive():  # pragma: no cover - defensive
                w.terminate()
        self._tasks.close()
        self._results.close()

    def __enter__(self) -> "PersistentWorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - defensive
        try:
            self.close()
        except Exception:
            pass


_SHARED: Optional[PersistentWorkerPool] = None


def shared_pool(n_workers: Optional[int] = None) -> PersistentWorkerPool:
    """The process-wide persistent pool, (re)created on size change or death.

    This is what makes the pool *persistent across searches*: every caller
    that does not manage its own pool shares these workers, so repeated
    searches / benchmark iterations pay the process spawn cost once.
    """
    global _SHARED
    wanted = n_workers if n_workers is not None else (os.cpu_count() or 1)
    if _SHARED is None or not _SHARED.alive or _SHARED.n_workers != wanted:
        if _SHARED is not None:
            _SHARED.close()
        _SHARED = PersistentWorkerPool(n_workers=wanted)
    return _SHARED


def close_shared_pool() -> None:
    """Tear down the process-wide pool (also registered at interpreter exit)."""
    global _SHARED
    if _SHARED is not None:
        _SHARED.close()
        _SHARED = None


atexit.register(close_shared_pool)
