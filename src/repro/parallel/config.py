"""Configuration of a parallel Nested Monte-Carlo Search run."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["DispatcherKind", "ParallelConfig"]


class DispatcherKind(str, enum.Enum):
    """Which dispatcher algorithm assigns clients to median jobs (Section IV)."""

    ROUND_ROBIN = "round_robin"
    LAST_MINUTE = "last_minute"

    @classmethod
    def parse(cls, value: "DispatcherKind | str") -> "DispatcherKind":
        if isinstance(value, DispatcherKind):
            return value
        normalized = str(value).strip().lower().replace("-", "_")
        aliases = {
            "round_robin": cls.ROUND_ROBIN,
            "rr": cls.ROUND_ROBIN,
            "last_minute": cls.LAST_MINUTE,
            "lm": cls.LAST_MINUTE,
        }
        if normalized not in aliases:
            raise ValueError(f"unknown dispatcher kind {value!r}")
        return aliases[normalized]


@dataclass(frozen=True)
class ParallelConfig:
    """Parameters of one parallel NMCS run.

    Attributes
    ----------
    level:
        Total nesting level of the search (the root plays at this level).
        Must be at least 2 for the three-tier root/median/client architecture.
    dispatcher:
        Round-Robin or Last-Minute client dispatching.
    n_medians:
        Number of median processes.  The paper runs 40, "greater than the
        number of possible moves"; fewer medians serialise the root fan-out
        (this is one of the ablations).
    max_root_steps:
        ``None`` plays the root's game to the end (the paper's "one rollout"
        experiments); ``1`` stops after the first move (the "first move"
        experiments).
    memorize_best_sequence:
        When True (default) the root and median games follow the globally
        best sequence exactly like the sequential ``nested`` function, so a
        parallel run returns the same result as the sequential search.  When
        False they re-decide from the current step's answers only, which is
        what the paper's root/median pseudo-code literally does.
    master_seed / seed_label:
        Together they form the root :class:`~repro.prng.SeedSequence`; the
        defaults match :func:`repro.core.nested.nmcs` so that sequential and
        parallel runs with the same ``master_seed`` are comparable.
    lm_fifo_jobs:
        Ablation switch: when True the Last-Minute dispatcher serves pending
        jobs first-come-first-served instead of longest-expected-first.
    """

    level: int = 3
    dispatcher: DispatcherKind = DispatcherKind.ROUND_ROBIN
    n_medians: int = 40
    max_root_steps: Optional[int] = None
    memorize_best_sequence: bool = True
    master_seed: int = 0
    seed_label: str = "nmcs"
    lm_fifo_jobs: bool = False

    def __post_init__(self) -> None:
        if self.level < 2:
            raise ValueError(
                "parallel NMCS needs level >= 2 (root, median and client tiers)"
            )
        if self.n_medians < 1:
            raise ValueError("n_medians must be >= 1")
        if self.max_root_steps is not None and self.max_root_steps < 1:
            raise ValueError("max_root_steps must be >= 1 when given")

    @property
    def client_level(self) -> int:
        """The nesting level of the searches executed by client processes."""
        return self.level - 2

    def with_dispatcher(self, dispatcher: "DispatcherKind | str") -> "ParallelConfig":
        """A copy of this configuration with a different dispatcher."""
        from dataclasses import replace

        return replace(self, dispatcher=DispatcherKind.parse(dispatcher))
