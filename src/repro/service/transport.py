"""Asyncio JSONL transport: the socket front-end of a :class:`SearchService`.

:class:`ServiceServer` runs an asyncio event loop on a dedicated thread and
speaks the protocol of :mod:`repro.service.protocol` over TCP or a unix
socket.  The split of labour with the threaded core is deliberate:

* **fast verbs** (submit/status/jobs/cancel) only take locks, so they run on
  a worker thread via ``run_in_executor`` and return one response line;
* **subscribe** bridges the job's blocking event stream into the loop by
  polling :meth:`repro.service.jobs.Job.next_events` in the executor —
  events are written as they arrive, any number of connections may follow
  the same job;
* **shutdown** answers first, then drains the service and stops the loop.

The server binds ``port=0`` to an ephemeral port and reports the bound
address from :meth:`start`, which is what the tests and ``--ready-file`` use.
"""

from __future__ import annotations

import asyncio
import functools
import threading
from typing import Any, Dict, Optional

from repro.obs import get_registry as _obs_registry
from repro.service.core import SearchService
from repro.service.protocol import VERBS, decode_line, encode_line, error_payload

__all__ = ["ServiceServer"]

#: Seconds each executor poll waits for new job events before rechecking.
_SUBSCRIBE_POLL_S = 0.25


class ServiceServer:
    """Serve one :class:`SearchService` over TCP (``host:port``) or unix socket."""

    def __init__(
        self,
        service: SearchService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        socket_path: Optional[str] = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.address: Optional[str] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> str:
        """Start serving on a background thread; returns the bound address.

        The service's worker pool is started too, so a
        ``ServiceServer(SearchService(...)).start()`` is fully live.
        """
        if self._thread is not None:
            raise RuntimeError("server already started")
        self.service.start()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-service-transport", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        assert self.address is not None
        return self.address

    def wait(self) -> None:
        """Block until the server stops (shutdown verb or :meth:`stop`)."""
        if self._thread is not None:
            self._thread.join()

    def stop(self) -> None:
        """Stop the transport (idempotent); does not shut the service down."""
        loop, stop_event = self._loop, self._stop_event
        if loop is not None and stop_event is not None and loop.is_running():
            loop.call_soon_threadsafe(stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        except BaseException as exc:  # startup failures reach start()'s caller
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()
            else:
                raise
        finally:
            loop.close()

    async def _main(self) -> None:
        self._stop_event = asyncio.Event()
        if self.socket_path is not None:
            server = await asyncio.start_unix_server(self._handle, path=self.socket_path)
            self.address = f"unix:{self.socket_path}"
        else:
            server = await asyncio.start_server(self._handle, self.host, self.port)
            bound = server.sockets[0].getsockname()
            self.address = f"{bound[0]}:{bound[1]}"
        self._ready.set()
        async with server:
            await self._stop_event.wait()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                if not line.strip():
                    continue
                try:
                    request = decode_line(line)
                except ValueError as exc:
                    writer.write(encode_line(error_payload(str(exc))))
                else:
                    try:
                        await self._dispatch(request, writer)
                    except (ValueError, KeyError) as exc:
                        message = exc.args[0] if exc.args else str(exc)
                        writer.write(encode_line(error_payload(str(message))))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away mid-stream; nothing to clean up
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _call(self, fn: Any, *args: Any, **kwargs: Any) -> Any:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, functools.partial(fn, *args, **kwargs))

    async def _dispatch(
        self, request: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        op = request.get("op")
        if op == "ping":
            writer.write(encode_line({"ok": True, "pong": True}))
            return
        if op == "submit":
            payload = request.get("spec") if "spec" in request else request.get("sweep")
            if payload is None:
                raise ValueError("submit needs a 'spec' or 'sweep' document")
            ack = await self._call(
                self.service.submit,
                payload,
                client=str(request.get("client", "anon")),
                priority=int(request.get("priority", 0)),
            )
            writer.write(encode_line({"ok": True, **ack}))
            return
        if op == "status":
            snapshot = self.service.status(self._job_id(request))
            if snapshot is None:
                raise KeyError(f"unknown job {request.get('job_id')!r}")
            writer.write(encode_line({"ok": True, "job": snapshot}))
            return
        if op == "jobs":
            writer.write(
                encode_line(
                    {
                        "ok": True,
                        "jobs": self.service.jobs(),
                        "stats": self.service.service_stats(),
                    }
                )
            )
            return
        if op == "cancel":
            snapshot = await self._call(self.service.cancel, self._job_id(request))
            if snapshot is None:
                raise KeyError(f"unknown job {request.get('job_id')!r}")
            writer.write(encode_line({"ok": True, "job": snapshot}))
            return
        if op == "subscribe":
            await self._subscribe(request, writer)
            return
        if op == "metrics":
            fmt = request.get("format", "json")
            registry = _obs_registry()
            if fmt == "prometheus":
                text = await self._call(registry.render_prometheus)
                writer.write(encode_line({"ok": True, "text": text}))
            elif fmt == "json":
                snapshot = await self._call(registry.snapshot)
                writer.write(
                    encode_line(
                        {
                            "ok": True,
                            "metrics": snapshot,
                            "service": self.service.service_stats(),
                        }
                    )
                )
            else:
                raise ValueError(
                    f"unknown metrics format {fmt!r}; use 'json' or 'prometheus'"
                )
            return
        if op == "shutdown":
            drain = bool(request.get("drain", True))
            writer.write(encode_line({"ok": True, "shutting_down": True, "drain": drain}))
            await writer.drain()
            await self._call(self.service.shutdown, drain=drain)
            assert self._stop_event is not None
            self._stop_event.set()
            return
        raise ValueError(f"unknown op {op!r}; known ops: {', '.join(VERBS)}")

    @staticmethod
    def _job_id(request: Dict[str, Any]) -> str:
        job_id = request.get("job_id")
        if not isinstance(job_id, str) or not job_id:
            raise ValueError(f"{request.get('op')} needs a 'job_id' string")
        return job_id

    async def _subscribe(
        self, request: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        job = self.service.job(self._job_id(request))
        if job is None:
            raise KeyError(f"unknown job {request.get('job_id')!r}")
        replay = bool(request.get("replay", True))
        cursor = 0
        if not replay:
            _, cursor, _ = job.next_events(cursor=0, timeout=0)
        while True:
            batch, cursor, drained = await self._call(
                job.next_events, cursor, timeout=_SUBSCRIBE_POLL_S
            )
            for event in batch:
                writer.write(encode_line({"ok": True, "event": event}))
            if batch:
                await writer.drain()
            if drained:
                writer.write(
                    encode_line({"ok": True, "done": True, "job": job.snapshot()})
                )
                return
