"""Per-client token-bucket rate limiting for the service's submission path.

A classic token bucket: each client owns a bucket of capacity ``burst`` that
refills continuously at ``rate`` tokens per second; every submission spends
one token, and a submission that finds the bucket empty is *rejected* (the
service answers ``rejected/rate_limited`` — it never blocks the transport).

The clock is injectable so tests can drive refill deterministically instead
of sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.obs import metrics as _obs_metrics

__all__ = ["TokenBucket", "ClientRateLimiter"]

# Telemetry (no-op unless repro.obs is enabled).
_RATE_DENIED = _obs_metrics.counter(
    "repro_service_rate_limited_total",
    "submissions denied by the per-client token bucket, by client",
    labelnames=("client",),
)


class TokenBucket:
    """One client's bucket: ``burst`` capacity, ``rate`` tokens/second refill."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate < 0:
            raise ValueError("rate must be >= 0")
        if burst <= 0:
            raise ValueError("burst must be > 0")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = burst
        self._last = clock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Spend ``tokens`` if available; never blocks."""
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + self.rate * (now - self._last))
        self._last = now
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False


class ClientRateLimiter:
    """Lazily-created per-client :class:`TokenBucket`\\ s behind one lock.

    ``rate=None`` disables limiting entirely (every :meth:`allow` returns
    ``True`` and no state is kept).  ``burst`` defaults to ``max(1, rate)``
    so a fresh client can always submit at least one job immediately.
    """

    def __init__(
        self,
        rate: Optional[float] = None,
        burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate is not None and rate < 0:
            raise ValueError("rate must be >= 0 when given")
        self.rate = rate
        self.burst = burst if burst is not None else (max(1.0, rate) if rate else 1.0)
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: Dict[str, TokenBucket] = {}

    def allow(self, client: str) -> bool:
        """Whether ``client`` may submit now (spends one token when limited)."""
        if self.rate is None:
            return True
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = self._buckets[client] = TokenBucket(
                    self.rate, self.burst, self._clock
                )
            allowed = bucket.try_acquire()
        if not allowed:
            _RATE_DENIED.labels(client=client).inc()
        return allowed
