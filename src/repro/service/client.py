"""Blocking client library for the service's JSONL protocol.

:class:`ServiceClient` talks to a running ``repro serve`` over TCP or a unix
socket.  Each verb opens its own short-lived connection (``subscribe`` holds
it open for the event stream), so one client object is safe to share across
threads — there is no connection state to corrupt.

>>> client = ServiceClient("127.0.0.1:7171")                  # doctest: +SKIP
>>> outcome = client.run({"workload": "leftmove", "max_steps": 1})  # doctest: +SKIP
>>> outcome["report"]["score"]                                 # doctest: +SKIP
"""

from __future__ import annotations

import socket
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Union

from repro.service.protocol import decode_line, encode_line, parse_address

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A response-level failure (``ok: false`` or a rejected submission)."""


class ServiceClient:
    """Client for a running :class:`~repro.service.transport.ServiceServer`.

    Parameters
    ----------
    address:
        ``"host:port"`` or ``"unix:<path>"``.
    client:
        The client identity submitted with each job — the unit of the
        server's rate limiting and queue fairness.
    timeout:
        Socket timeout (seconds) for request/response verbs.  ``subscribe``
        ignores it (events may be minutes apart on long sweeps).
    """

    def __init__(
        self, address: str, *, client: str = "anon", timeout: Optional[float] = 30.0
    ) -> None:
        self.address = address
        self.client = client
        self.timeout = timeout
        parse_address(address)  # fail fast on typos

    # ------------------------------------------------------------------ #
    # Low-level plumbing
    # ------------------------------------------------------------------ #
    def _connect(self, timeout: Optional[float]) -> socket.socket:
        family, target = parse_address(self.address)
        if family == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(target)
        return sock

    def _request(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        """One request, one response line, connection closed."""
        with self._connect(self.timeout) as sock:
            sock.sendall(encode_line(payload))
            with sock.makefile("rb") as reader:
                line = reader.readline()
        if not line:
            raise ServiceError("connection closed before a response arrived")
        response = decode_line(line)
        if not response.get("ok"):
            raise ServiceError(response.get("error", "unknown service error"))
        return response

    def _request_stream(self, payload: Mapping[str, Any]) -> Iterator[Dict[str, Any]]:
        """One request, many response lines (until the ``done`` frame)."""
        with self._connect(None) as sock:
            sock.sendall(encode_line(payload))
            with sock.makefile("rb") as reader:
                for line in reader:
                    response = decode_line(line)
                    if not response.get("ok"):
                        raise ServiceError(response.get("error", "unknown service error"))
                    yield response
                    if response.get("done"):
                        return
        raise ServiceError("event stream ended without a 'done' frame")

    # ------------------------------------------------------------------ #
    # Verbs
    # ------------------------------------------------------------------ #
    def ping(self) -> bool:
        return bool(self._request({"op": "ping"}).get("pong"))

    def submit(
        self,
        spec: Optional[Union[Mapping[str, Any], Any]] = None,
        *,
        sweep: Optional[Union[Mapping[str, Any], Any]] = None,
        priority: int = 0,
        client: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Submit a spec or sweep; returns the server's acknowledgement.

        ``spec``/``sweep`` accept plain dicts or ``SearchSpec``/``SweepSpec``
        objects (anything with ``to_dict``).  Exactly one must be given.
        A *rejected* ack is returned, not raised — backpressure is an
        expected answer the caller should handle (retry, shed, report).
        """
        if (spec is None) == (sweep is None):
            raise ValueError("submit takes exactly one of spec= or sweep=")
        request: Dict[str, Any] = {
            "op": "submit",
            "client": client if client is not None else self.client,
            "priority": priority,
        }
        if spec is not None:
            request["spec"] = spec.to_dict() if hasattr(spec, "to_dict") else dict(spec)
        else:
            request["sweep"] = sweep.to_dict() if hasattr(sweep, "to_dict") else dict(sweep)
        response = self._request(request)
        response.pop("ok", None)
        return response

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request({"op": "status", "job_id": job_id})["job"]

    def jobs(self) -> Dict[str, Any]:
        """``{"jobs": [...snapshots...], "stats": {...}}`` from the server."""
        response = self._request({"op": "jobs"})
        return {"jobs": response["jobs"], "stats": response["stats"]}

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request({"op": "cancel", "job_id": job_id})["job"]

    def metrics(self, format: Optional[str] = None) -> Dict[str, Any]:
        """The server's telemetry.

        Default (JSON) form: ``{"metrics": <registry snapshot>, "service":
        <service_stats>}``.  ``format="prometheus"`` returns ``{"text": ...}``
        in Prometheus text exposition format.
        """
        request: Dict[str, Any] = {"op": "metrics"}
        if format is not None:
            request["format"] = format
        response = self._request(request)
        response.pop("ok", None)
        return response

    def shutdown(self, drain: bool = True) -> Dict[str, Any]:
        return self._request({"op": "shutdown", "drain": drain})

    def subscribe(
        self, job_id: str, *, replay: bool = True
    ) -> Iterator[Dict[str, Any]]:
        """Yield the job's wire-form events; the final ``done`` frame's job
        snapshot is not yielded (use :meth:`wait` to get it)."""
        for frame in self._request_stream(
            {"op": "subscribe", "job_id": job_id, "replay": replay}
        ):
            if frame.get("done"):
                return
            yield frame["event"]

    def wait(
        self,
        job_id: str,
        *,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        """Follow ``job_id`` to the end; returns the collected outcome.

        The outcome is ``{"job": <final snapshot>, "counts": {...},
        "reports": [...]}`` — ``reports`` holds the wire-form
        :class:`~repro.api.RunReport` dict of every cached/completed cell in
        cell order (decode with ``RunReport.from_dict`` when objects are
        needed).
        """
        reports: Dict[int, Dict[str, Any]] = {}
        final: Optional[Dict[str, Any]] = None
        for frame in self._request_stream(
            {"op": "subscribe", "job_id": job_id, "replay": True}
        ):
            if frame.get("done"):
                final = frame["job"]
                break
            event = frame["event"]
            if on_event is not None:
                on_event(event)
            if event.get("report") is not None:
                reports[event["index"]] = event["report"]
        if final is None:
            raise ServiceError("event stream ended without a 'done' frame")
        ordered: List[Dict[str, Any]] = [reports[i] for i in sorted(reports)]
        return {"job": final, "counts": final["cells"], "reports": ordered}

    def run(
        self,
        spec: Optional[Union[Mapping[str, Any], Any]] = None,
        *,
        sweep: Optional[Union[Mapping[str, Any], Any]] = None,
        priority: int = 0,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        """Submit and wait: the blocking convenience wrapper.

        Returns :meth:`wait`'s outcome plus ``"submit"`` (the ack), so the
        caller can see whether the job was fresh, cached, or attached to an
        in-flight duplicate.  Raises :class:`ServiceError` if the submission
        was rejected (rate limit, full queue, shutdown).
        """
        ack = self.submit(spec, sweep=sweep, priority=priority)
        if ack.get("status") == "rejected":
            raise ServiceError(f"submission rejected: {ack.get('reason')}")
        outcome = self.wait(ack["job_id"], on_event=on_event)
        outcome["submit"] = ack
        return outcome
