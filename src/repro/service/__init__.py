"""``repro.service`` — search-as-a-service: an async job server over the Engine.

The paper's whole architecture is a client/server system that keeps many
workers saturated with playout jobs; this package is that architecture for
the *library itself*.  A long-running :class:`SearchService` accepts
:class:`~repro.api.SearchSpec` / :class:`~repro.lab.sweep.SweepSpec`
submissions from any number of clients and multiplexes them onto a
persistent worker pool, with:

* a bounded, client-fair, priority :class:`~repro.service.queue.JobQueue`
  (overload answers *rejected/queue_full* — backpressure, not buffering);
* two-level deduplication against the content-addressed
  :class:`~repro.lab.store.ResultStore` (cache hit → immediate result,
  zero searches) and against in-flight jobs (identical submission →
  subscribe to the running job, exactly one search executes);
* per-client token-bucket rate limiting
  (:mod:`repro.service.ratelimit`) and cooperative cancellation (the
  ``threading.Event`` plumbing ``Engine.stream`` already honours);
* a subscription layer replaying/streaming wire-form
  :class:`~repro.api.RunEvent`\\ s to any number of subscribers per job;
* a newline-delimited-JSON transport: :class:`ServiceServer` (asyncio, TCP
  or unix socket), :class:`ServiceClient`, and the ``repro serve`` /
  ``repro submit`` / ``repro jobs`` CLI commands.

See ``docs/SERVICE.md`` for the architecture and wire protocol.

>>> from repro.service import SearchService, ServiceClient, ServiceServer
>>> server = ServiceServer(SearchService())           # doctest: +SKIP
>>> address = server.start()                          # doctest: +SKIP
>>> ServiceClient(address).run({"workload": "leftmove", "max_steps": 1})  # doctest: +SKIP
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.core import SearchService, ServiceConfig
from repro.service.jobs import Job, JobState
from repro.service.queue import JobQueue, QueueFull
from repro.service.ratelimit import ClientRateLimiter, TokenBucket
from repro.service.transport import ServiceServer

__all__ = [
    "SearchService",
    "ServiceConfig",
    "ServiceServer",
    "ServiceClient",
    "ServiceError",
    "Job",
    "JobState",
    "JobQueue",
    "QueueFull",
    "TokenBucket",
    "ClientRateLimiter",
]
