"""The service core: a scheduler multiplexing submissions onto worker pools.

:class:`SearchService` is the long-running heart of ``repro serve``:

* submissions (:class:`~repro.api.SearchSpec` or
  :class:`~repro.lab.sweep.SweepSpec`, as objects or plain dicts) enter
  through :meth:`SearchService.submit`, which applies — in order — the
  per-client token-bucket **rate limit**, **deduplication** and the bounded
  **job queue** (rejection = backpressure, never blocking);
* dedup is two-level, mirroring the content-addressed
  :class:`~repro.lab.store.ResultStore`: a single-spec submission whose
  record already exists resolves *immediately* to a completed job carrying a
  ``cached`` event (zero searches), and a submission whose content key
  matches a queued/running job **attaches** to it — the second client
  subscribes to the first job's event stream and exactly one search executes;
* persistent worker threads pop jobs under the queue's fairness policy and
  drive them through :meth:`repro.api.Engine.stream` (so per-cell store
  caching, resume and cooperative cancellation via the job's
  ``threading.Event`` all come from the engine layer);
* every :class:`~repro.api.RunEvent` is published onto the job's history,
  which any number of subscribers replay/follow (see
  :class:`repro.service.jobs.Job`).

The service is transport-agnostic: in-process callers use it directly (see
``tests/test_service.py``), the asyncio JSONL server wraps it
(:mod:`repro.service.transport`).
"""

from __future__ import annotations

import hashlib
import itertools
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Union

from repro.api import Engine, RunEvent, SearchSpec
from repro.lab.keys import spec_key
from repro.lab.store import ResultStore
from repro.lab.sweep import SweepSpec
from repro.obs import metrics as _obs_metrics
from repro.service.jobs import Job, JobState
from repro.service.queue import JobQueue, QueueFull
from repro.service.ratelimit import ClientRateLimiter

__all__ = ["SearchService", "ServiceConfig", "Submission"]

# Telemetry (no-ops unless repro.obs is enabled).
_SUBMISSIONS = _obs_metrics.counter(
    "repro_service_submissions_total",
    "submission acknowledgements, by client and ack status",
    labelnames=("client", "status"),
)
_REJECTIONS = _obs_metrics.counter(
    "repro_service_rejections_total",
    "rejected submissions, by reason",
    labelnames=("reason",),
)

#: What submit() accepts.
Submission = Union[SearchSpec, SweepSpec, Mapping[str, Any]]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of a :class:`SearchService`.

    ``rate``/``burst`` configure the per-client token bucket (submissions per
    second / bucket capacity); ``rate=None`` disables rate limiting.
    ``queue_depth`` bounds pending jobs — submissions beyond it are rejected
    with ``queue_full`` (backpressure).  ``drain_timeout`` caps how long
    :meth:`SearchService.shutdown` waits for in-flight work.

    ``cell_executor``/``cell_workers`` choose how each job's *cells* execute
    inside the engine: the default (``"thread"``, ``None``) runs cells
    inline on the job's worker thread; ``cell_executor="process"`` ships
    CPU-bound cells to the persistent worker-process pool
    (``repro serve --processes N``), with child telemetry merged back so
    ``repro stats`` stays truthful.  Jobs still run one-at-a-time per pool
    batch, so two service workers never interleave result frames.
    """

    n_workers: int = 2
    queue_depth: int = 64
    rate: Optional[float] = None
    burst: Optional[float] = None
    poll_interval: float = 0.05
    drain_timeout: float = 60.0
    cell_executor: str = "thread"
    cell_workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be > 0")
        if self.cell_executor not in ("thread", "process"):
            raise ValueError(
                f"unknown cell_executor {self.cell_executor!r}; use 'thread' or 'process'"
            )
        if self.cell_workers is not None and self.cell_workers < 1:
            raise ValueError("cell_workers must be >= 1 when given")


class SearchService:
    """An async search-as-a-service job scheduler over one :class:`Engine`."""

    def __init__(
        self,
        engine: Optional[Engine] = None,
        store: Optional[ResultStore] = None,
        config: Optional[ServiceConfig] = None,
        clock: Any = time.monotonic,
    ) -> None:
        self.engine = engine if engine is not None else Engine()
        self.store = store
        self.config = config if config is not None else ServiceConfig()
        # The same salted view Engine.stream consults/writes, so the submit
        # path's cache probe and the execution path can never disagree.
        self._store_view = self.engine._store_for(store)
        self._limiter = ClientRateLimiter(self.config.rate, self.config.burst, clock)
        self._queue = JobQueue(self.config.queue_depth)
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        #: content key -> job id, for queued/running jobs only
        self._inflight: Dict[str, str] = {}
        self._running = 0
        self._ids = itertools.count(1)
        self._workers: List[threading.Thread] = []
        self._stopping = threading.Event()
        self._exit = threading.Event()
        self._started = False
        self.stats = {
            "submitted": 0,
            "queued": 0,
            "cached": 0,
            "attached": 0,
            "rejected_rate_limited": 0,
            "rejected_queue_full": 0,
            "rejected_shutting_down": 0,
            "searches_started": 0,
        }

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "SearchService":
        """Spawn the worker pool (idempotent); returns ``self`` for chaining."""
        with self._lock:
            if self._started:
                return self
            self._started = True
            for n in range(self.config.n_workers):
                thread = threading.Thread(
                    target=self._worker, name=f"repro-service-worker-{n}", daemon=True
                )
                thread.start()
                self._workers.append(thread)
        return self

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting submissions and wind the pool down.

        ``drain=True`` lets queued and running jobs finish (bounded by
        ``timeout``, default ``config.drain_timeout``); ``drain=False``
        cancels everything still pending first (running jobs stop at their
        next cell boundary — cancellation is cooperative).
        """
        self._stopping.set()
        if not drain:
            with self._lock:
                pending = [job for job in self._jobs.values() if not job.terminal]
            for job in pending:
                self._cancel_job(job)
        deadline = time.monotonic() + (
            timeout if timeout is not None else self.config.drain_timeout
        )
        while time.monotonic() < deadline:
            with self._lock:
                idle = not self._inflight and self._running == 0
            if idle:
                break
            time.sleep(self.config.poll_interval)
        self._exit.set()
        for thread in self._workers:
            thread.join(timeout=max(0.0, deadline - time.monotonic()) + 1.0)

    def __enter__(self) -> "SearchService":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown(drain=False)

    # ------------------------------------------------------------------ #
    # Submission path
    # ------------------------------------------------------------------ #
    def submit(
        self, payload: Submission, *, client: str = "anon", priority: int = 0
    ) -> Dict[str, Any]:
        """Admit one submission; returns the acknowledgement payload.

        The ack's ``status`` is one of:

        * ``"queued"`` — a new job was created and enqueued;
        * ``"cached"`` — the single-spec result already sat in the store;
          the returned job is complete with one ``cached`` event, zero
          searches executed;
        * ``"attached"`` — an identical submission is already queued or
          running; ``job_id`` names *that* job (subscribe to it for events);
        * ``"rejected"`` — with ``reason`` ``rate_limited`` / ``queue_full``
          / ``shutting_down``; no job was created.

        Raises ``ValueError`` on malformed payloads (unknown spec fields,
        bad axis values, ...), which transports surface as error responses.
        """
        with self._lock:
            self.stats["submitted"] += 1
        if self._stopping.is_set():
            return self._reject(client, "shutting_down")
        if not self._limiter.allow(client):
            return self._reject(client, "rate_limited")
        kind, payload, key, total_cells = self._normalise(payload)
        with self._lock:
            inflight_id = self._inflight.get(key)
            if inflight_id is not None:
                job = self._jobs[inflight_id]
                job.attached += 1
                self.stats["attached"] += 1
                _SUBMISSIONS.labels(client=client, status="attached").inc()
                return {
                    "status": "attached",
                    "job_id": job.id,
                    "state": job.state.value,
                    "key": key,
                }
        if kind == "search" and self._store_view is not None:
            report = self._store_view.get(self._pin(payload))
            if report is not None:
                return self._cached_job(payload, key, client, priority, report)
        job = Job(
            f"job-{next(self._ids)}",
            client=client,
            kind=kind,
            payload=payload,
            key=key,
            priority=priority,
            total_cells=total_cells,
        )
        with self._lock:
            # Re-check under the lock: an identical submission may have won
            # the race between the check above and here.
            inflight_id = self._inflight.get(key)
            if inflight_id is not None:
                existing = self._jobs[inflight_id]
                existing.attached += 1
                self.stats["attached"] += 1
                _SUBMISSIONS.labels(client=client, status="attached").inc()
                return {
                    "status": "attached",
                    "job_id": existing.id,
                    "state": existing.state.value,
                    "key": key,
                }
            try:
                self._queue.push(job)
            except QueueFull:
                self.stats["rejected_queue_full"] += 1
                _SUBMISSIONS.labels(client=client, status="rejected").inc()
                _REJECTIONS.labels(reason="queue_full").inc()
                return {
                    "status": "rejected",
                    "reason": "queue_full",
                    "queue_depth": self.config.queue_depth,
                }
            self._jobs[job.id] = job
            self._inflight[key] = job.id
            self.stats["queued"] += 1
        _SUBMISSIONS.labels(client=client, status="queued").inc()
        return {"status": "queued", "job_id": job.id, "state": job.state.value, "key": key}

    def _reject(self, client: str, reason: str) -> Dict[str, Any]:
        with self._lock:
            self.stats[f"rejected_{reason}"] += 1
        _SUBMISSIONS.labels(client=client, status="rejected").inc()
        _REJECTIONS.labels(reason=reason).inc()
        return {"status": "rejected", "reason": reason}

    def _cached_job(
        self,
        spec: SearchSpec,
        key: str,
        client: str,
        priority: int,
        report: Any,
    ) -> Dict[str, Any]:
        """A pre-completed job for a store hit: one ``cached`` event, no search."""
        pinned = self._pin(spec)
        job = Job(
            f"job-{next(self._ids)}",
            client=client,
            kind="search",
            payload=spec,
            key=key,
            priority=priority,
            total_cells=1,
        )
        job.publish(RunEvent("cached", 0, 1, pinned, report=report, done=1).to_dict())
        job.finish(JobState.COMPLETED)
        with self._lock:
            self._jobs[job.id] = job
            self.stats["cached"] += 1
        _SUBMISSIONS.labels(client=client, status="cached").inc()
        return {"status": "cached", "job_id": job.id, "state": job.state.value, "key": key}

    def _pin(self, spec: SearchSpec) -> SearchSpec:
        """The spec as the batch layer would store it (engine cost model pinned)."""
        return self.engine._storable_spec(spec)

    def _normalise(self, payload: Submission) -> Any:
        """``(kind, payload, content_key, total_cells)`` of a submission.

        Dicts turn into :class:`SweepSpec` when they look like a sweep
        document (``axes``/``base`` keys), :class:`SearchSpec` otherwise.
        The content key matches what the execution path will consult: for a
        search, the store key of the *pinned* spec; for a sweep, a digest of
        its canonical document under the same salt.
        """
        if isinstance(payload, Mapping):
            if "axes" in payload or "base" in payload:
                payload = SweepSpec.from_dict(payload)
            else:
                payload = SearchSpec.from_dict(payload)
        if isinstance(payload, SweepSpec):
            salt = self._store_view.salt if self._store_view is not None else None
            return "sweep", payload, self._sweep_key(payload, salt), len(payload)
        if isinstance(payload, SearchSpec):
            pinned = self._pin(payload)
            if self._store_view is not None:
                key = self._store_view.key(pinned)
            else:
                key = spec_key(pinned)
            return "search", payload, key, 1
        raise ValueError(
            f"cannot submit {type(payload).__name__}; expected a SearchSpec, "
            "a SweepSpec, or a dict form of either"
        )

    @staticmethod
    def _sweep_key(sweep: SweepSpec, salt: Optional[str]) -> str:
        h = hashlib.blake2b(digest_size=20)
        if salt is not None:
            h.update(salt.encode("utf-8"))
        h.update(b"\x00sweep\x00")
        h.update(sweep.to_json().encode("utf-8"))
        return h.hexdigest()

    # ------------------------------------------------------------------ #
    # Introspection / control
    # ------------------------------------------------------------------ #
    def job(self, job_id: str) -> Optional[Job]:
        """The live :class:`Job` record, or ``None`` for unknown ids."""
        with self._lock:
            return self._jobs.get(job_id)

    def status(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The snapshot payload of one job, or ``None`` for unknown ids."""
        job = self.job(job_id)
        return None if job is None else job.snapshot()

    def jobs(self) -> List[Dict[str, Any]]:
        """Snapshots of every job this service has seen, in submission order."""
        with self._lock:
            records = list(self._jobs.values())
        return [job.snapshot() for job in records]

    def service_stats(self) -> Dict[str, Any]:
        """Counter snapshot plus live queue/worker occupancy."""
        with self._lock:
            stats = dict(self.stats)
            stats["running"] = self._running
            stats["inflight"] = len(self._inflight)
        stats["queue_size"] = len(self._queue)
        stats["n_workers"] = self.config.n_workers
        return stats

    def subscribe(
        self, job_id: str, *, replay: bool = True
    ) -> Iterator[Dict[str, Any]]:
        """Wire-form events of ``job_id`` until it drains (replay + live).

        Raises ``KeyError`` for unknown jobs (transports turn that into an
        error response).
        """
        job = self.job(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        return job.stream(replay=replay)

    def cancel(self, job_id: str) -> Optional[Dict[str, Any]]:
        """Cooperatively cancel a job; returns its snapshot (None if unknown).

        A queued job turns terminal immediately; a running job stops at its
        next cell boundary (the engine checks the flag before starting each
        cell — a cell mid-search finishes first).
        """
        job = self.job(job_id)
        if job is None:
            return None
        self._cancel_job(job)
        return job.snapshot()

    def _cancel_job(self, job: Job) -> None:
        job.cancel_event.set()
        with self._lock:
            if job.state is JobState.QUEUED:
                job.finish(JobState.CANCELLED)
                if self._inflight.get(job.key) == job.id:
                    del self._inflight[job.key]

    # ------------------------------------------------------------------ #
    # Worker pool
    # ------------------------------------------------------------------ #
    def _worker(self) -> None:
        while not self._exit.is_set():
            job = self._queue.pop(timeout=self.config.poll_interval)
            if job is None:
                continue
            if job.terminal:  # cancelled while queued; lazily dropped here
                continue
            with self._lock:
                self._running += 1
                self.stats["searches_started"] += 1
            try:
                self._execute(job)
            finally:
                with self._lock:
                    self._running -= 1
                    if self._inflight.get(job.key) == job.id:
                        del self._inflight[job.key]

    def _execute(self, job: Job) -> None:
        """Drive one job through the engine's streaming batch layer."""
        job.mark_running()
        batch: Any = job.payload if job.kind == "sweep" else [job.payload]
        last_error: Optional[str] = None
        try:
            for event in self.engine.stream(
                batch,
                store=self.store,
                error_policy="skip",
                max_workers=self.config.cell_workers,
                executor=self.config.cell_executor,
                cancel=job.cancel_event,
            ):
                if event.kind == "failed" and event.error is not None:
                    last_error = f"{type(event.error).__name__}: {event.error}"
                job.publish(event.to_dict())
        except Exception as exc:  # malformed payloads the engine rejects late
            job.finish(JobState.FAILED, error=f"{type(exc).__name__}: {exc}")
            return
        if job.cancel_event.is_set():
            job.finish(JobState.CANCELLED)
        elif job.counts["failed"] and not (
            job.counts["completed"] or job.counts["cached"]
        ):
            job.finish(JobState.FAILED, error=last_error)
        else:
            # Partial failures under error_policy="skip" leave the job
            # completed; the per-cell failed events carry the detail.
            job.finish(JobState.COMPLETED, error=last_error)
