"""Job records: one submission's lifecycle, event history and subscriptions.

A :class:`Job` is the unit the service schedules: a single
:class:`~repro.api.SearchSpec` or a whole :class:`~repro.lab.sweep.SweepSpec`,
identified by a content key (see ``SearchService``), owning a cooperative
cancellation flag and an append-only history of wire-form
:class:`~repro.api.RunEvent` dicts.

The history doubles as the subscription layer: any number of subscribers read
the same list through private cursors (:meth:`Job.next_events` /
:meth:`Job.stream`), so a subscriber that attaches late — e.g. the second
client of a deduplicated submission — replays everything the job already
emitted before following it live.  One condition variable per job wakes every
subscriber on publish and on the terminal transition.
"""

from __future__ import annotations

import enum
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs import metrics as _obs_metrics

__all__ = ["Job", "JobState"]

# Telemetry (no-ops unless repro.obs is enabled).
_QUEUE_WAIT = _obs_metrics.histogram(
    "repro_service_queue_wait_seconds",
    "time a job spent queued before a worker picked it up",
)
_JOB_SECONDS = _obs_metrics.histogram(
    "repro_service_job_seconds",
    "submit-to-terminal latency of service jobs, by terminal state",
    labelnames=("state",),
)
_JOBS_FINISHED = _obs_metrics.counter(
    "repro_service_jobs_finished_total",
    "jobs that reached a terminal state, by client and state",
    labelnames=("client", "state"),
)


class JobState(str, enum.Enum):
    """Lifecycle: ``queued`` → ``running`` → one of the three terminal states."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States after which a job's history can no longer grow.
TERMINAL_STATES = frozenset(
    {JobState.COMPLETED, JobState.FAILED, JobState.CANCELLED}
)


class Job:
    """One scheduled submission and everything observable about it."""

    def __init__(
        self,
        job_id: str,
        *,
        client: str,
        kind: str,
        payload: Any,
        key: str,
        priority: int = 0,
        total_cells: int = 1,
    ) -> None:
        self.id = job_id
        self.client = client
        #: ``"search"`` (one SearchSpec) or ``"sweep"`` (a SweepSpec).
        self.kind = kind
        self.payload = payload
        #: Content key used for dedup (spec/sweep hash under the store salt).
        self.key = key
        self.priority = priority
        self.total_cells = total_cells
        #: Submissions coalesced onto this job (1 = just the original).
        self.attached = 1
        self.cancel_event = threading.Event()
        self.state = JobState.QUEUED
        self.error: Optional[str] = None
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.counts = {"cached": 0, "completed": 0, "failed": 0}
        self._events: List[Dict[str, Any]] = []
        self._cond = threading.Condition()

    # ------------------------------------------------------------------ #
    # State transitions (driven by the scheduler/worker)
    # ------------------------------------------------------------------ #
    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def mark_running(self) -> None:
        with self._cond:
            self.state = JobState.RUNNING
            self.started_at = time.time()
            _QUEUE_WAIT.observe(self.started_at - self.submitted_at)
            self._cond.notify_all()

    def publish(self, event: Dict[str, Any]) -> None:
        """Append one wire-form event and wake every subscriber."""
        with self._cond:
            self._events.append(event)
            kind = event.get("kind")
            if kind in self.counts:
                self.counts[kind] += 1
            self._cond.notify_all()

    def finish(self, state: JobState, error: Optional[str] = None) -> None:
        """Enter a terminal state (idempotent) and release all subscribers."""
        if state not in TERMINAL_STATES:
            raise ValueError(f"finish() needs a terminal state, got {state!r}")
        with self._cond:
            if self.terminal:
                return
            self.state = state
            if error is not None:
                self.error = error
            self.finished_at = time.time()
            _JOB_SECONDS.labels(state=state.value).observe(
                self.finished_at - self.submitted_at
            )
            _JOBS_FINISHED.labels(client=self.client, state=state.value).inc()
            self._cond.notify_all()

    # ------------------------------------------------------------------ #
    # Subscription side
    # ------------------------------------------------------------------ #
    def next_events(
        self, cursor: int, timeout: Optional[float] = None
    ) -> Tuple[List[Dict[str, Any]], int, bool]:
        """Events after ``cursor``: ``(batch, new_cursor, job_is_drained)``.

        Blocks up to ``timeout`` (forever when ``None``) until there is
        something past the cursor or the job turns terminal.  ``drained`` is
        only ``True`` once the job is terminal *and* the caller has consumed
        its whole history — the end-of-stream condition.
        """
        with self._cond:
            if cursor >= len(self._events) and not self.terminal:
                self._cond.wait(timeout)
            batch = list(self._events[cursor:])
            new_cursor = cursor + len(batch)
            drained = self.terminal and new_cursor >= len(self._events)
            return batch, new_cursor, drained

    def stream(
        self, *, replay: bool = True, poll: float = 0.5
    ) -> Iterator[Dict[str, Any]]:
        """Yield wire-form events until the job is terminal and drained.

        ``replay=True`` starts from the beginning of the history (late
        subscribers see everything); ``replay=False`` follows live only.
        ``poll`` bounds each wait so a subscriber never deadlocks on a missed
        notification.
        """
        with self._cond:
            cursor = 0 if replay else len(self._events)
        while True:
            batch, cursor, drained = self.next_events(cursor, timeout=poll)
            for event in batch:
                yield event
            if drained:
                return

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready status payload (the ``status``/``jobs`` verb schema).

        ``queue_wait_seconds`` and ``wall_seconds`` are live while the job is
        still queued/running (measured up to now) and final once terminal.  A
        job that reached a terminal state without ever starting (store-cached
        submissions, cancellations while queued) spent its whole life in the
        queue: its wait is submit→finish and its wall time 0.
        """
        with self._cond:
            done = sum(self.counts.values())
            now = time.time()
            if self.started_at is not None:
                queue_wait = self.started_at - self.submitted_at
                wall_end = self.finished_at if self.finished_at is not None else now
                wall = wall_end - self.started_at
            elif self.finished_at is not None:
                queue_wait = self.finished_at - self.submitted_at
                wall = 0.0
            else:
                queue_wait = now - self.submitted_at
                wall = 0.0
            return {
                "id": self.id,
                "client": self.client,
                "kind": self.kind,
                "state": self.state.value,
                "priority": self.priority,
                "key": self.key,
                "attached": self.attached,
                "cells": {"total": self.total_cells, "done": done, **self.counts},
                "submitted_at": self.submitted_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "queue_wait_seconds": queue_wait,
                "wall_seconds": wall,
                "error": self.error,
            }
