"""The service's wire protocol: newline-delimited JSON over a byte stream.

Framing
-------
One JSON object per line (``\\n`` terminated, UTF-8).  Clients write
*request* lines; the server answers each request with one or more *response*
lines on the same connection, in order.  Every response carries ``ok``
(bool); failures carry ``error`` (str).  A connection may issue any number of
requests sequentially.

Requests name their verb with ``op``:

=============  ============================================================
``submit``     ``{"op": "submit", "spec": {...}}`` or ``{"sweep": {...}}``,
               optional ``client`` (str) / ``priority`` (int).  One
               response: the acknowledgement (``status`` =
               queued/cached/attached/rejected, ``job_id`` when a job
               exists — see ``SearchService.submit``).
``status``     ``{"op": "status", "job_id": "..."}`` → ``{"ok", "job"}``.
``jobs``       ``{"op": "jobs"}`` → ``{"ok", "jobs": [...], "stats"}``.
``subscribe``  ``{"op": "subscribe", "job_id": "...", "replay": true}`` →
               a stream of ``{"ok", "event": {...}}`` lines (wire-form
               :class:`~repro.api.RunEvent` dicts, replayed from the start
               when ``replay``), terminated by ``{"ok", "done": true,
               "job": {...}}``.
``cancel``     ``{"op": "cancel", "job_id": "..."}`` → ``{"ok", "job"}``.
``shutdown``   ``{"op": "shutdown", "drain": true}`` → ``{"ok",
               "shutting_down": true}``; the server drains and stops.
``ping``       ``{"op": "ping"}`` → ``{"ok", "pong": true}``.
``metrics``    ``{"op": "metrics"}`` → ``{"ok", "metrics": {...},
               "service": {...}}`` (the :mod:`repro.obs` registry snapshot
               plus ``SearchService.service_stats()``);
               ``{"op": "metrics", "format": "prometheus"}`` → ``{"ok",
               "text": "..."}`` in Prometheus text exposition format.
=============  ============================================================

This module also owns address parsing: ``"host:port"`` for TCP,
``"unix:<path>"`` for unix-domain sockets.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Tuple, Union

__all__ = [
    "VERBS",
    "decode_line",
    "encode_line",
    "error_payload",
    "parse_address",
]

#: The verbs a server understands (documented above and in docs/SERVICE.md).
VERBS = ("submit", "status", "subscribe", "cancel", "jobs", "metrics", "shutdown", "ping")


def encode_line(payload: Mapping[str, Any]) -> bytes:
    """One wire frame: compact JSON + newline, UTF-8."""
    return json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8") + b"\n"


def decode_line(line: Union[bytes, str]) -> Dict[str, Any]:
    """Parse one frame; raises ``ValueError`` unless it is a JSON object."""
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"bad JSON frame: {exc}") from None
    if not isinstance(payload, dict):
        raise ValueError("a wire frame must be a JSON object")
    return payload


def error_payload(message: str) -> Dict[str, Any]:
    """The uniform failure response."""
    return {"ok": False, "error": message}


def parse_address(address: str) -> Tuple[str, Any]:
    """``("unix", path)`` or ``("tcp", (host, port))`` from an address string.

    Accepted forms: ``unix:/run/repro.sock`` and ``host:port`` (the host may
    be empty — ``":7171"`` — meaning localhost).
    """
    if address.startswith("unix:"):
        path = address[len("unix:"):]
        if not path:
            raise ValueError("unix address needs a path: 'unix:/some/socket'")
        return "unix", path
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"bad address {address!r}; expected 'host:port' or 'unix:<path>'"
        )
    return "tcp", (host or "127.0.0.1", int(port))
