"""Bounded, client-fair, priority job queue for the service scheduler.

The paper's architecture lives or dies by keeping many workers saturated
without letting any one submitter monopolise the cluster.  :class:`JobQueue`
encodes that policy:

* **bounded depth** — :meth:`push` raises :class:`QueueFull` once ``maxsize``
  jobs are pending.  The service surfaces that as a *backpressure rejection*
  (the client is told to retry later) instead of queueing unboundedly;
* **per-client fairness** — pending jobs are bucketed by client and clients
  are served round-robin, so a client that submits 100 jobs cannot starve a
  client that submits 1;
* **priorities** — within one client's bucket, lower ``priority`` values pop
  first and ties break FIFO (a monotonic sequence number — never the job
  object — is the heap tie-breaker).

The queue stores jobs that may be cancelled while queued; it does not try to
remove them (that would be O(n) in a heap).  Consumers skip jobs that are
already terminal when popped — see ``SearchService._worker``.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.obs import metrics as _obs_metrics

__all__ = ["JobQueue", "QueueFull"]

# Telemetry (no-ops unless repro.obs is enabled).
_QUEUE_DEPTH = _obs_metrics.gauge(
    "repro_service_queue_depth", "jobs currently pending in the service queue"
)
_QUEUE_PUSHED = _obs_metrics.counter(
    "repro_service_queue_pushed_total", "jobs accepted into the service queue"
)


class QueueFull(RuntimeError):
    """Raised by :meth:`JobQueue.push` when the queue is at its depth bound."""


class JobQueue:
    """A thread-safe bounded queue with per-client fairness and priorities.

    Any object with ``client`` (str) and ``priority`` (int) attributes can be
    queued; the service queues :class:`repro.service.jobs.Job` instances.
    """

    def __init__(self, maxsize: int = 64) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        #: client -> min-heap of (priority, seq, job)
        self._buckets: Dict[str, List[Tuple[int, int, Any]]] = {}
        #: round-robin order over clients that currently have pending jobs
        self._rotation: Deque[str] = deque()
        self._seq = itertools.count()
        self._size = 0

    def __len__(self) -> int:
        with self._lock:
            return self._size

    def push(self, job: Any) -> None:
        """Enqueue ``job``; raises :class:`QueueFull` at the depth bound."""
        with self._not_empty:
            if self._size >= self.maxsize:
                raise QueueFull(
                    f"job queue is full ({self.maxsize} pending); retry later"
                )
            bucket = self._buckets.get(job.client)
            if bucket is None:
                bucket = self._buckets[job.client] = []
                self._rotation.append(job.client)
            heapq.heappush(bucket, (job.priority, next(self._seq), job))
            self._size += 1
            _QUEUE_PUSHED.inc()
            _QUEUE_DEPTH.set(self._size)
            self._not_empty.notify()

    def pop(self, timeout: Optional[float] = None) -> Optional[Any]:
        """The next job under the fairness policy, or ``None`` on timeout.

        Clients are served round-robin: each pop takes the best (priority,
        FIFO) job of the least-recently-served client with pending work.
        """
        with self._not_empty:
            if not self._not_empty.wait_for(lambda: self._size > 0, timeout):
                return None
            client = self._rotation.popleft()
            bucket = self._buckets[client]
            _, _, job = heapq.heappop(bucket)
            if bucket:
                self._rotation.append(client)
            else:
                del self._buckets[client]
            self._size -= 1
            _QUEUE_DEPTH.set(self._size)
            return job
