"""Cost model mapping executed search work to simulated wall-clock time."""

from repro.timemodel.cost import CostModel, calibrate_from_reference

__all__ = ["CostModel", "calibrate_from_reference"]
