"""Cost model: work units -> simulated seconds.

The unit of work is one primitive move application (see
:mod:`repro.core.counters`).  A node of frequency ``f`` GHz executes
``units_per_ghz_per_second * f`` work units per second per core, so the
simulated duration of a job is::

    seconds = work_units / (units_per_ghz_per_second * freq_ghz * share)

where ``share`` accounts for core oversubscription (handled by
:class:`repro.cluster.node.Node`).

Calibration
-----------
The default rate is chosen so that a *standard 5D Morpion* level-3 "first
move" search — about 170 million move applications when run with this
library's playout statistics — takes roughly the 8 minutes the paper reports
on a single 1.86 GHz core (Table I).  The absolute value is irrelevant for
every speedup reported in EXPERIMENTS.md (speedups are time ratios on the
same workload), but keeping the calibrated figure makes the simulated tables
read on the same scale as the paper's.

:func:`calibrate_from_reference` recalibrates the rate from any measured
(work, reference-seconds, frequency) triple, e.g. from the sequential Table I
run of the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = [
    "CostModel",
    "calibrate_from_reference",
    "DEFAULT_UNITS_PER_GHZ",
    "CALIBRATED_UNITS_PER_GHZ",
    "calibrated_units_per_ghz",
]

#: Default work-unit rate: move applications per second per GHz of clock.
#: Chosen so a 1.86 GHz node performs ~650k move applications per second,
#: in the ballpark of the authors' C implementation on their hardware.
DEFAULT_UNITS_PER_GHZ: float = 350_000.0

#: Per-workload rates measured with the rollout profiler on this library's
#: own kernels (``repro profile``, see benchmarks/results/BENCH_rollout_hotpath.json):
#: ``measured units/s ÷ REFERENCE_FREQ_GHZ`` from the committed pre-refactor
#: baseline.  These are *pinned as data* on each registered workload
#: (``Workload.units_per_ghz``) for consumers that want the simulated clock
#: to track what the Python kernels actually cost, e.g. profiler drift
#: reports.  The :class:`CostModel` default stays at
#: :data:`DEFAULT_UNITS_PER_GHZ` — the kernel-regression goldens
#: (Tables II–VI) are expressed on that paper-calibrated scale and must not
#: move when the kernels get faster.
CALIBRATED_UNITS_PER_GHZ: Dict[str, float] = {
    "morpion-bench": 2271.2,
    "samegame": 792.5,
    "tsp": 22261.8,
    "sop": 8339.5,
    "weakschur": 38250.9,
    "leftmove": 49304.8,
}


def calibrated_units_per_ghz(workload_name: str) -> Optional[float]:
    """The measured per-GHz work rate for a named workload, if calibrated."""
    return CALIBRATED_UNITS_PER_GHZ.get(workload_name)


@dataclass(frozen=True)
class CostModel:
    """Converts work units into simulated seconds for a node frequency."""

    units_per_ghz_per_second: float = DEFAULT_UNITS_PER_GHZ

    def __post_init__(self) -> None:
        if self.units_per_ghz_per_second <= 0:
            raise ValueError("units_per_ghz_per_second must be positive")

    def units_per_second(self, freq_ghz: float) -> float:
        """Work units per second for one computation alone on a core."""
        if freq_ghz <= 0:
            raise ValueError("freq_ghz must be positive")
        return self.units_per_ghz_per_second * freq_ghz

    def seconds_for(self, work_units: float, freq_ghz: float) -> float:
        """Uncontended duration of ``work_units`` on a ``freq_ghz`` core."""
        if work_units < 0:
            raise ValueError("work_units must be non-negative")
        return work_units / self.units_per_second(freq_ghz)

    def work_for(self, seconds: float, freq_ghz: float) -> float:
        """Inverse of :meth:`seconds_for` (useful for synthetic workloads)."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        return seconds * self.units_per_second(freq_ghz)


def calibrate_from_reference(
    work_units: float, reference_seconds: float, freq_ghz: float = 1.86
) -> CostModel:
    """Build a cost model such that ``work_units`` takes ``reference_seconds``.

    Typical use: run the sequential level-3 first-move search once, take its
    work counter, and calibrate so that it maps to the paper's 8m03s — then
    every simulated table is expressed on the paper's time scale.
    """
    if work_units <= 0 or reference_seconds <= 0:
        raise ValueError("work_units and reference_seconds must be positive")
    rate = work_units / (reference_seconds * freq_ghz)
    return CostModel(units_per_ghz_per_second=rate)
