"""Morpion Solitaire game state (disjoint and touching variants).

The state keeps, besides the occupied cells, an **incrementally maintained**
set of legal moves: after each move only the lines through the new point can
become legal and only moves conflicting with the new point / the newly used
points or segments can become illegal.  A full re-scan
(:meth:`MorpionState.recompute_legal_moves`) is kept for cross-checking in the
property-based tests.

A move is a :class:`MorpionMove` ``(point, direction_index, start)``: the new
circle ``point`` and the line identified by its starting cell ``start`` and
its canonical direction index.  Two moves placing the same point but drawing
different lines are distinct moves, exactly as in the paper-and-pencil game.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Iterable, List, NamedTuple, Optional, Sequence, Set, Tuple

from repro.games.base import GameState, Move
from repro.games.morpion.geometry import (
    DIRECTIONS,
    Point,
    cross_points,
    line_cells,
    neighbours,
    segment_starts,
)

__all__ = ["MorpionVariant", "MorpionMove", "MorpionState"]


class MorpionVariant(str, enum.Enum):
    """Rule variant: how two lines of the same direction may interact."""

    #: Lines of the same direction may not share any point (paper's variant).
    DISJOINT = "disjoint"
    #: Lines of the same direction may share endpoints but not segments.
    TOUCHING = "touching"

    @classmethod
    def parse(cls, value: "MorpionVariant | str") -> "MorpionVariant":
        """Accept either an enum member or its string value ("5D"/"5T" aliases too)."""
        if isinstance(value, MorpionVariant):
            return value
        normalized = str(value).strip().lower()
        aliases = {
            "disjoint": cls.DISJOINT,
            "5d": cls.DISJOINT,
            "d": cls.DISJOINT,
            "touching": cls.TOUCHING,
            "5t": cls.TOUCHING,
            "t": cls.TOUCHING,
        }
        if normalized not in aliases:
            raise ValueError(f"unknown Morpion variant {value!r}")
        return aliases[normalized]


class MorpionMove(NamedTuple):
    """A Morpion move: place ``point`` and draw the line ``(start, direction)``."""

    point: Point
    direction: int  # index into geometry.DIRECTIONS
    start: Point

    def cells(self, line_length: int) -> Tuple[Point, ...]:
        """The cells of the drawn line."""
        return line_cells(self.start, DIRECTIONS[self.direction], line_length)


class MorpionState(GameState):
    """A Morpion Solitaire position.

    Parameters
    ----------
    line_length:
        Number of circles per line (5 for the standard game, 4 for the
        scaled-down boards used in fast experiments).
    variant:
        :class:`MorpionVariant` (or its string form).
    initial_points:
        Optional explicit starting circles; defaults to the standard cross for
        the chosen ``line_length``.
    max_moves:
        Optional cap on the game length: once this many moves have been
        played the position is terminal even if further lines could be drawn.
        The full game has no such cap; the cap exists so that tests and
        CI-sized benchmark workloads can bound the cost of a playout while
        keeping the branching structure of the real game.
    """

    __slots__ = (
        "line_length",
        "variant",
        "max_moves",
        "_initial",
        "_occupied",
        "_candidates",
        "_used",
        "_legal",
        "_history",
    )

    def __init__(
        self,
        line_length: int = 5,
        variant: "MorpionVariant | str" = MorpionVariant.DISJOINT,
        initial_points: Optional[Iterable[Point]] = None,
        max_moves: Optional[int] = None,
    ) -> None:
        if line_length < 3:
            raise ValueError("line_length must be at least 3")
        if max_moves is not None and max_moves < 0:
            raise ValueError("max_moves must be non-negative when given")
        self.line_length = line_length
        self.variant = MorpionVariant.parse(variant)
        self.max_moves = max_moves
        pts = set(initial_points) if initial_points is not None else cross_points(line_length)
        if not pts:
            raise ValueError("the initial position needs at least one circle")
        self._initial: FrozenSet[Point] = frozenset(pts)
        self._occupied: Set[Point] = set(pts)
        self._candidates: Set[Point] = set()
        for p in pts:
            for q in neighbours(p):
                if q not in self._occupied:
                    self._candidates.add(q)
        # Per-direction usage marks: points for DISJOINT, segment starts for TOUCHING.
        self._used: List[Set[Point]] = [set() for _ in DIRECTIONS]
        self._history: List[MorpionMove] = []
        self._legal: Set[MorpionMove] = self._scan_all_legal()

    # ------------------------------------------------------------------ #
    # Rule primitives
    # ------------------------------------------------------------------ #
    def _usage_marks(self, move: MorpionMove) -> Tuple[Point, ...]:
        """The cells this move marks as used in its direction."""
        direction = DIRECTIONS[move.direction]
        if self.variant is MorpionVariant.DISJOINT:
            return line_cells(move.start, direction, self.line_length)
        return segment_starts(move.start, direction, self.line_length)

    def _conflicts(self, move: MorpionMove) -> bool:
        """True if the move's line re-uses a point/segment already used in its direction."""
        used = self._used[move.direction]
        if not used:
            return False
        return any(cell in used for cell in self._usage_marks(move))

    def _window_move(self, start: Point, di: int) -> Optional[MorpionMove]:
        """If the window ``(start, di)`` has exactly one empty cell and no
        conflict, return the corresponding legal move, else ``None``."""
        direction = DIRECTIONS[di]
        cells = line_cells(start, direction, self.line_length)
        empty: Optional[Point] = None
        for cell in cells:
            if cell not in self._occupied:
                if empty is not None:
                    return None  # two empty cells: not playable yet
                empty = cell
        if empty is None:
            return None  # fully occupied window: nothing to place
        move = MorpionMove(empty, di, start)
        if self._conflicts(move):
            return None
        return move

    def _scan_all_legal(self) -> Set[MorpionMove]:
        """Full scan of legal moves (used at construction and for testing)."""
        legal: Set[MorpionMove] = set()
        length = self.line_length
        for p in self._candidates:
            for di, (dx, dy) in enumerate(DIRECTIONS):
                for offset in range(length):
                    start = (p[0] - offset * dx, p[1] - offset * dy)
                    move = self._window_move(start, di)
                    if move is not None and move.point == p:
                        legal.add(move)
        return legal

    def recompute_legal_moves(self) -> List[MorpionMove]:
        """Legal moves recomputed from scratch (ignores the incremental cache)."""
        return sorted(self._scan_all_legal())

    # ------------------------------------------------------------------ #
    # GameState interface
    # ------------------------------------------------------------------ #
    def legal_moves(self) -> List[Move]:
        if self.max_moves is not None and len(self._history) >= self.max_moves:
            return []
        return sorted(self._legal)

    def is_terminal(self) -> bool:
        if self.max_moves is not None and len(self._history) >= self.max_moves:
            return True
        return not self._legal

    def apply(self, move: Move) -> None:
        if self.max_moves is not None and len(self._history) >= self.max_moves:
            raise ValueError("the move cap has been reached; the game is over")
        if not isinstance(move, MorpionMove):
            # Allow plain tuples of the right shape (e.g. after (de)serialisation).
            try:
                move = MorpionMove(*move)  # type: ignore[misc]
            except TypeError as exc:  # pragma: no cover - defensive
                raise ValueError(f"not a Morpion move: {move!r}") from exc
        if move not in self._legal:
            raise ValueError(f"illegal Morpion move {move!r}")
        length = self.line_length
        p = move.point
        new_marks = set(self._usage_marks(move))

        # 1. Occupancy and candidate frontier.
        self._occupied.add(p)
        self._candidates.discard(p)
        for q in neighbours(p):
            if q not in self._occupied:
                self._candidates.add(q)

        # 2. Usage marks for the move's direction.
        self._used[move.direction] |= new_marks

        # 3. Incremental legal-move maintenance.
        #    (a) moves that wanted to place a circle on p are gone;
        #    (b) moves in the same direction that now conflict are gone;
        #    (c) windows through p may have become playable.
        still_legal: Set[MorpionMove] = set()
        for m in self._legal:
            if m.point == p:
                continue
            if m.direction == move.direction and any(
                cell in new_marks for cell in self._usage_marks(m)
            ):
                continue
            still_legal.add(m)
        self._legal = still_legal
        for di, (dx, dy) in enumerate(DIRECTIONS):
            for offset in range(length):
                start = (p[0] - offset * dx, p[1] - offset * dy)
                candidate = self._window_move(start, di)
                if candidate is not None:
                    self._legal.add(candidate)

        self._history.append(move)

    def copy(self) -> "MorpionState":
        clone = MorpionState.__new__(MorpionState)
        clone.line_length = self.line_length
        clone.variant = self.variant
        clone.max_moves = self.max_moves
        clone._initial = self._initial
        clone._occupied = set(self._occupied)
        clone._candidates = set(self._candidates)
        clone._used = [set(u) for u in self._used]
        clone._legal = set(self._legal)
        clone._history = list(self._history)
        return clone

    def score(self) -> float:
        """Morpion's objective: the number of moves played."""
        return float(len(self._history))

    def moves_played(self) -> int:
        return len(self._history)

    # ------------------------------------------------------------------ #
    # Introspection used by rendering, records and tests
    # ------------------------------------------------------------------ #
    def occupied(self) -> FrozenSet[Point]:
        """All circles currently on the grid (initial cross + played moves)."""
        return frozenset(self._occupied)

    def initial_points(self) -> FrozenSet[Point]:
        """The circles of the starting position."""
        return self._initial

    def history(self) -> Tuple[MorpionMove, ...]:
        """The moves played so far, in order."""
        return tuple(self._history)

    def used_marks(self) -> Tuple[FrozenSet[Point], ...]:
        """Per-direction used points (disjoint) or segment starts (touching)."""
        return tuple(frozenset(u) for u in self._used)

    def lines_drawn(self) -> List[Tuple[Point, ...]]:
        """The full cell tuples of every line drawn so far, in play order."""
        return [m.cells(self.line_length) for m in self._history]

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` if an internal invariant is violated.

        Exercised heavily by the property-based tests: the usage marks must be
        consistent with the history, every played point must be occupied, and
        the incremental legal-move cache must equal a full re-scan.
        """
        expected_used: List[Set[Point]] = [set() for _ in DIRECTIONS]
        occupied = set(self._initial)
        for m in self._history:
            assert m.point not in occupied, "move placed a circle on an occupied cell"
            cells = m.cells(self.line_length)
            for cell in cells:
                if cell != m.point:
                    assert cell in occupied, "line drawn through an empty cell"
            direction = DIRECTIONS[m.direction]
            if self.variant is MorpionVariant.DISJOINT:
                marks = set(cells)
            else:
                marks = set(segment_starts(m.start, direction, self.line_length))
            assert not (marks & expected_used[m.direction]), (
                "two lines of the same direction share a forbidden point/segment"
            )
            expected_used[m.direction] |= marks
            occupied.add(m.point)
        assert occupied == self._occupied, "occupancy inconsistent with history"
        assert [set(u) for u in self._used] == expected_used, "usage marks inconsistent"
        assert self._legal == self._scan_all_legal(), "incremental legal moves diverged"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MorpionState(length={self.line_length}, variant={self.variant.value}, "
            f"moves={len(self._history)}, legal={len(self._legal)})"
        )
