"""Morpion Solitaire game state (disjoint and touching variants).

The state keeps, besides the occupied cells, an **incrementally maintained**
set of legal moves: after each move only the lines through the new point can
become legal and only moves conflicting with the new point / the newly used
points or segments can become illegal.  A full re-scan
(:meth:`MorpionState.recompute_legal_moves`) is kept for cross-checking in the
property-based tests.

A move is a :class:`MorpionMove` ``(point, direction_index, start)``: the new
circle ``point`` and the line identified by its starting cell ``start`` and
its canonical direction index.  Two moves placing the same point but drawing
different lines are distinct moves, exactly as in the paper-and-pencil game.

Fast-kernel notes
-----------------
Occupancy and per-direction usage marks live on flat ``bytearray`` grids
(origin-offset, with a margin of at least ``line_length`` around every
occupied cell, regrown on demand as the position spreads), so the window
scans of the incremental update are integer index walks instead of
tuple-hashing set probes.  ``_legal`` maps each legal move to its
precomputed usage-mark ``frozenset``, which turns the conflict pruning in
:meth:`apply` into ``frozenset.isdisjoint`` calls, and the sorted legal list
is cached between moves.  Every apply also journals enough to support
:meth:`undo` in O(line changes).  Move identity, ordering and rng
consumption are bit-identical with the reference implementation; the seeded
playout goldens (``tests/data/playout_golden.json``) pin this.
"""

from __future__ import annotations

import enum
import struct
from typing import Dict, FrozenSet, Iterable, List, NamedTuple, Optional, Set, Tuple

from repro.games.base import GameState, Move
from repro.games.morpion.geometry import (
    DIRECTIONS,
    Point,
    bounding_box,
    cross_points,
    line_cells,
    neighbours,
    segment_starts,
)

__all__ = ["MorpionVariant", "MorpionMove", "MorpionState"]


class MorpionVariant(str, enum.Enum):
    """Rule variant: how two lines of the same direction may interact."""

    #: Lines of the same direction may not share any point (paper's variant).
    DISJOINT = "disjoint"
    #: Lines of the same direction may share endpoints but not segments.
    TOUCHING = "touching"

    @classmethod
    def parse(cls, value: "MorpionVariant | str") -> "MorpionVariant":
        """Accept either an enum member or its string value ("5D"/"5T" aliases too)."""
        if isinstance(value, MorpionVariant):
            return value
        normalized = str(value).strip().lower()
        aliases = {
            "disjoint": cls.DISJOINT,
            "5d": cls.DISJOINT,
            "d": cls.DISJOINT,
            "touching": cls.TOUCHING,
            "5t": cls.TOUCHING,
            "t": cls.TOUCHING,
        }
        if normalized not in aliases:
            raise ValueError(f"unknown Morpion variant {value!r}")
        return aliases[normalized]


class MorpionMove(NamedTuple):
    """A Morpion move: place ``point`` and draw the line ``(start, direction)``."""

    point: Point
    direction: int  # index into geometry.DIRECTIONS
    start: Point

    def cells(self, line_length: int) -> Tuple[Point, ...]:
        """The cells of the drawn line."""
        return line_cells(self.start, DIRECTIONS[self.direction], line_length)


class MorpionState(GameState):
    """A Morpion Solitaire position.

    Parameters
    ----------
    line_length:
        Number of circles per line (5 for the standard game, 4 for the
        scaled-down boards used in fast experiments).
    variant:
        :class:`MorpionVariant` (or its string form).
    initial_points:
        Optional explicit starting circles; defaults to the standard cross for
        the chosen ``line_length``.
    max_moves:
        Optional cap on the game length: once this many moves have been
        played the position is terminal even if further lines could be drawn.
        The full game has no such cap; the cap exists so that tests and
        CI-sized benchmark workloads can bound the cost of a playout while
        keeping the branching structure of the real game.
    """

    WIRE_KIND = "morpion"

    __slots__ = (
        "line_length",
        "variant",
        "max_moves",
        "_initial",
        "_occupied",
        "_used",
        "_legal",
        "_history",
        "_sorted_legal",
        "_journal",
        "_occ",
        "_usedg",
        "_gx0",
        "_gy0",
        "_gx1",
        "_gy1",
        "_gh",
    )

    def __init__(
        self,
        line_length: int = 5,
        variant: "MorpionVariant | str" = MorpionVariant.DISJOINT,
        initial_points: Optional[Iterable[Point]] = None,
        max_moves: Optional[int] = None,
    ) -> None:
        if line_length < 3:
            raise ValueError("line_length must be at least 3")
        if max_moves is not None and max_moves < 0:
            raise ValueError("max_moves must be non-negative when given")
        self.line_length = line_length
        self.variant = MorpionVariant.parse(variant)
        self.max_moves = max_moves
        pts = set(initial_points) if initial_points is not None else cross_points(line_length)
        if not pts:
            raise ValueError("the initial position needs at least one circle")
        self._initial: FrozenSet[Point] = frozenset(pts)
        self._occupied: Set[Point] = set(pts)
        # Per-direction usage marks: points for DISJOINT, segment starts for TOUCHING.
        self._used: List[Set[Point]] = [set() for _ in DIRECTIONS]
        self._history: List[MorpionMove] = []
        self._journal: List[tuple] = []
        self._rebuild_grids()
        self._legal: Dict[MorpionMove, FrozenSet[Point]] = self._scan_all_legal()
        self._sorted_legal: Optional[List[MorpionMove]] = None

    # ------------------------------------------------------------------ #
    # Flat-grid plumbing
    # ------------------------------------------------------------------ #
    def _rebuild_grids(self, extra: Optional[Point] = None) -> None:
        """(Re)allocate the occupancy / usage grids around the current position.

        The pad of ``2 * line_length + 2`` keeps every occupied cell at least
        ``line_length`` away from the grid edge even after another
        ``line_length`` moves toward that edge, so regrows are amortised and
        every window scan through a candidate cell stays in bounds with no
        wraparound between grid columns.
        """
        pts = self._occupied if extra is None else self._occupied | {extra}
        min_x, min_y, max_x, max_y = bounding_box(pts)
        pad = 2 * self.line_length + 2
        self._gx0 = min_x - pad
        self._gy0 = min_y - pad
        self._gx1 = max_x + pad
        self._gy1 = max_y + pad
        self._gh = self._gy1 - self._gy0 + 1
        size = (self._gx1 - self._gx0 + 1) * self._gh
        gx0, gy0, gh = self._gx0, self._gy0, self._gh
        occ = bytearray(size)
        for (x, y) in self._occupied:
            occ[(x - gx0) * gh + (y - gy0)] = 1
        usedg = bytearray(size)
        for di, marks in enumerate(self._used):
            bit = 1 << di
            for (x, y) in marks:
                usedg[(x - gx0) * gh + (y - gy0)] |= bit
        self._occ = occ
        self._usedg = usedg

    def _marks_for(self, move: MorpionMove) -> FrozenSet[Point]:
        return frozenset(self._usage_marks(move))

    # ------------------------------------------------------------------ #
    # Rule primitives
    # ------------------------------------------------------------------ #
    def _usage_marks(self, move: MorpionMove) -> Tuple[Point, ...]:
        """The cells this move marks as used in its direction."""
        direction = DIRECTIONS[move.direction]
        if self.variant is MorpionVariant.DISJOINT:
            return line_cells(move.start, direction, self.line_length)
        return segment_starts(move.start, direction, self.line_length)

    def _conflicts(self, move: MorpionMove) -> bool:
        """True if the move's line re-uses a point/segment already used in its direction."""
        used = self._used[move.direction]
        if not used:
            return False
        return any(cell in used for cell in self._usage_marks(move))

    def _window_move(self, start: Point, di: int) -> Optional[MorpionMove]:
        """If the window ``(start, di)`` has exactly one empty cell and no
        conflict, return the corresponding legal move, else ``None``."""
        length = self.line_length
        dx, dy = DIRECTIONS[di]
        gh = self._gh
        step = dx * gh + dy
        j = (start[0] - self._gx0) * gh + (start[1] - self._gy0)
        occ = self._occ
        empty = -1
        for _ in range(length):
            if not occ[j]:
                if empty >= 0:
                    return None  # two empty cells: not playable yet
                empty = j
            j += step
        if empty < 0:
            return None  # fully occupied window: nothing to place
        usedg = self._usedg
        bit = 1 << di
        j = (start[0] - self._gx0) * gh + (start[1] - self._gy0)
        mark_count = length if self.variant is MorpionVariant.DISJOINT else length - 1
        for _ in range(mark_count):
            if usedg[j] & bit:
                return None
            j += step
        ex, ey = divmod(empty, gh)
        return MorpionMove((ex + self._gx0, ey + self._gy0), di, start)

    def _scan_all_legal(self) -> Dict[MorpionMove, FrozenSet[Point]]:
        """Full scan of legal moves (used at construction and for testing)."""
        legal: Dict[MorpionMove, FrozenSet[Point]] = {}
        length = self.line_length
        occupied = self._occupied
        candidates: Set[Point] = set()
        for pt in occupied:
            for q in neighbours(pt):
                if q not in occupied:
                    candidates.add(q)
        for p in candidates:
            for di, (dx, dy) in enumerate(DIRECTIONS):
                for offset in range(length):
                    start = (p[0] - offset * dx, p[1] - offset * dy)
                    move = self._window_move(start, di)
                    if move is not None and move.point == p:
                        legal[move] = self._marks_for(move)
        return legal

    def recompute_legal_moves(self) -> List[MorpionMove]:
        """Legal moves recomputed from scratch (ignores the incremental cache)."""
        return sorted(self._scan_all_legal())

    # ------------------------------------------------------------------ #
    # GameState interface
    # ------------------------------------------------------------------ #
    def legal_moves(self) -> List[Move]:
        if self.max_moves is not None and len(self._history) >= self.max_moves:
            return []
        cached = self._sorted_legal
        if cached is None:
            cached = self._sorted_legal = sorted(self._legal)
        return list(cached)

    def is_terminal(self) -> bool:
        if self.max_moves is not None and len(self._history) >= self.max_moves:
            return True
        return not self._legal

    def apply(self, move: Move) -> None:
        if self.max_moves is not None and len(self._history) >= self.max_moves:
            raise ValueError("the move cap has been reached; the game is over")
        if not isinstance(move, MorpionMove):
            # Allow plain tuples of the right shape (e.g. after (de)serialisation).
            try:
                move = MorpionMove(*move)  # type: ignore[misc]
            except TypeError as exc:  # pragma: no cover - defensive
                raise ValueError(f"not a Morpion move: {move!r}") from exc
        new_marks = self._legal.get(move)
        if new_marks is None:
            raise ValueError(f"illegal Morpion move {move!r}")
        length = self.line_length
        p = move.point
        x, y = p
        if (
            x - self._gx0 < length
            or self._gx1 - x < length
            or y - self._gy0 < length
            or self._gy1 - y < length
        ):
            self._rebuild_grids(extra=p)
        gx0, gy0, gh = self._gx0, self._gy0, self._gh
        occ = self._occ
        usedg = self._usedg
        idx_p = (x - gx0) * gh + (y - gy0)

        # 1. Occupancy.
        occ[idx_p] = 1
        self._occupied.add(p)

        # 2. Usage marks for the move's direction.
        di = move.direction
        bit = 1 << di
        self._used[di] |= new_marks
        for (qx, qy) in new_marks:
            usedg[(qx - gx0) * gh + (qy - gy0)] |= bit

        # 3. Incremental legal-move maintenance.
        #    (a) moves that wanted to place a circle on p are gone;
        #    (b) moves in the same direction that now conflict are gone;
        #    (c) windows through p may have become playable.
        mark_count = length if self.variant is MorpionVariant.DISJOINT else length - 1
        # A move conflicts with the new line iff it is in the same direction
        # and its marks overlap ``new_marks``.  Every mark set is an
        # arithmetic progression of ``mark_count`` cells from its move's
        # start along the direction vector, so overlap reduces to a
        # colinearity-plus-distance test on the two starts — plain integer
        # arithmetic instead of a set intersection per candidate.
        prev_legal = self._legal
        stx, sty = move.start
        mc = mark_count
        if di == 0:
            self._legal = {
                m: marks
                for m, marks in prev_legal.items()
                if m[0] != p
                and (m[1] != 0 or m[2][1] != sty or not -mc < m[2][0] - stx < mc)
            }
        elif di == 1:
            self._legal = {
                m: marks
                for m, marks in prev_legal.items()
                if m[0] != p
                and (m[1] != 1 or m[2][0] != stx or not -mc < m[2][1] - sty < mc)
            }
        elif di == 2:
            self._legal = {
                m: marks
                for m, marks in prev_legal.items()
                if m[0] != p
                and (
                    m[1] != 2
                    or m[2][0] - stx != m[2][1] - sty
                    or not -mc < m[2][0] - stx < mc
                )
            }
        else:
            self._legal = {
                m: marks
                for m, marks in prev_legal.items()
                if m[0] != p
                and (
                    m[1] != 3
                    or m[2][0] - stx != sty - m[2][1]
                    or not -mc < m[2][0] - stx < mc
                )
            }
        for dii, (dx, dy) in enumerate(DIRECTIONS):
            step = dx * gh + dy
            b = 1 << dii
            span = length * step
            mark_span = mark_count * step
            s = idx_p
            stop = idx_p - span
            while s != stop:
                empty = -1
                j = s
                jend = s + span
                playable = True
                while j != jend:
                    if not occ[j]:
                        if empty >= 0:
                            playable = False
                            break
                        empty = j
                    j += step
                if playable and empty >= 0:
                    j = s
                    jend = s + mark_span
                    while j != jend:
                        if usedg[j] & b:
                            playable = False
                            break
                        j += step
                    if playable:
                        sax = s // gh + gx0
                        say = s % gh + gy0
                        new_move = MorpionMove(
                            (empty // gh + gx0, empty % gh + gy0), dii, (sax, say)
                        )
                        self._legal[new_move] = frozenset(
                            [(sax + i * dx, say + i * dy) for i in range(mark_count)]
                        )
                s -= step

        self._history.append(move)
        # Previous-legal dicts are never mutated after assignment, so keeping a
        # reference is enough to restore them on undo.
        self._journal.append((move, new_marks, prev_legal, self._sorted_legal))
        self._sorted_legal = None

    def can_undo(self) -> bool:
        return True

    def undo(self) -> None:
        """Retract the most recent move (inverse of :meth:`apply`)."""
        if not self._journal:
            raise ValueError("no move to undo")
        move, new_marks, prev_legal, prev_sorted = self._journal.pop()
        self._history.pop()
        p = move.point
        self._occupied.discard(p)
        di = move.direction
        self._used[di] -= new_marks
        gx0, gy0, gh = self._gx0, self._gy0, self._gh
        self._occ[(p[0] - gx0) * gh + (p[1] - gy0)] = 0
        # No other line in this direction uses these cells (that is the rule),
        # so clearing the direction bit on the move's own marks is exact.
        bit = ~(1 << di)
        usedg = self._usedg
        for (qx, qy) in new_marks:
            usedg[(qx - gx0) * gh + (qy - gy0)] &= bit
        self._legal = prev_legal
        self._sorted_legal = prev_sorted

    def copy(self) -> "MorpionState":
        clone = MorpionState.__new__(MorpionState)
        clone.line_length = self.line_length
        clone.variant = self.variant
        clone.max_moves = self.max_moves
        clone._initial = self._initial
        clone._occupied = set(self._occupied)
        clone._used = [set(u) for u in self._used]
        clone._legal = self._legal  # never mutated in place; replaced on apply
        clone._history = list(self._history)
        clone._journal = list(self._journal)
        clone._sorted_legal = self._sorted_legal
        clone._occ = bytearray(self._occ)
        clone._usedg = bytearray(self._usedg)
        clone._gx0 = self._gx0
        clone._gy0 = self._gy0
        clone._gx1 = self._gx1
        clone._gy1 = self._gy1
        clone._gh = self._gh
        return clone

    def score(self) -> float:
        """Morpion's objective: the number of moves played."""
        return float(len(self._history))

    def moves_played(self) -> int:
        return len(self._history)

    # ------------------------------------------------------------------ #
    # Compact wire form: rules header + initial points + history (replayed
    # on decode, which is exact because apply is deterministic).
    # ------------------------------------------------------------------ #
    def encode_payload(self) -> bytes:
        variant_flag = 0 if self.variant is MorpionVariant.DISJOINT else 1
        max_moves = 0 if self.max_moves is None else self.max_moves + 1
        parts = [
            struct.pack(
                "<BBiII",
                self.line_length,
                variant_flag,
                max_moves,
                len(self._initial),
                len(self._history),
            )
        ]
        for (x, y) in sorted(self._initial):
            parts.append(struct.pack("<ii", x, y))
        for m in self._history:
            parts.append(
                struct.pack("<iiBii", m.point[0], m.point[1], m.direction, m.start[0], m.start[1])
            )
        return b"".join(parts)

    @classmethod
    def decode_payload(cls, payload: bytes) -> "MorpionState":
        line_length, variant_flag, max_moves, n_initial, n_history = struct.unpack_from(
            "<BBiII", payload
        )
        offset = struct.calcsize("<BBiII")
        initial = []
        for _ in range(n_initial):
            initial.append(struct.unpack_from("<ii", payload, offset))
            offset += 8
        state = cls(
            line_length=line_length,
            variant=MorpionVariant.TOUCHING if variant_flag else MorpionVariant.DISJOINT,
            initial_points=initial,
            max_moves=None if max_moves == 0 else max_moves - 1,
        )
        move_size = struct.calcsize("<iiBii")
        for _ in range(n_history):
            px, py, di, sx, sy = struct.unpack_from("<iiBii", payload, offset)
            offset += move_size
            state.apply(MorpionMove((px, py), di, (sx, sy)))
        return state

    # ------------------------------------------------------------------ #
    # Introspection used by rendering, records and tests
    # ------------------------------------------------------------------ #
    def occupied(self) -> FrozenSet[Point]:
        """All circles currently on the grid (initial cross + played moves)."""
        return frozenset(self._occupied)

    def initial_points(self) -> FrozenSet[Point]:
        """The circles of the starting position."""
        return self._initial

    def history(self) -> Tuple[MorpionMove, ...]:
        """The moves played so far, in order."""
        return tuple(self._history)

    def used_marks(self) -> Tuple[FrozenSet[Point], ...]:
        """Per-direction used points (disjoint) or segment starts (touching)."""
        return tuple(frozenset(u) for u in self._used)

    def lines_drawn(self) -> List[Tuple[Point, ...]]:
        """The full cell tuples of every line drawn so far, in play order."""
        return [m.cells(self.line_length) for m in self._history]

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` if an internal invariant is violated.

        Exercised heavily by the property-based tests: the usage marks must be
        consistent with the history, every played point must be occupied, and
        the incremental legal-move cache must equal a full re-scan.
        """
        expected_used: List[Set[Point]] = [set() for _ in DIRECTIONS]
        occupied = set(self._initial)
        for m in self._history:
            assert m.point not in occupied, "move placed a circle on an occupied cell"
            cells = m.cells(self.line_length)
            for cell in cells:
                if cell != m.point:
                    assert cell in occupied, "line drawn through an empty cell"
            direction = DIRECTIONS[m.direction]
            if self.variant is MorpionVariant.DISJOINT:
                marks = set(cells)
            else:
                marks = set(segment_starts(m.start, direction, self.line_length))
            assert not (marks & expected_used[m.direction]), (
                "two lines of the same direction share a forbidden point/segment"
            )
            expected_used[m.direction] |= marks
            occupied.add(m.point)
        assert occupied == self._occupied, "occupancy inconsistent with history"
        assert [set(u) for u in self._used] == expected_used, "usage marks inconsistent"
        gx0, gy0, gh = self._gx0, self._gy0, self._gh
        for (x, y) in self._occupied:
            assert self._occ[(x - gx0) * gh + (y - gy0)] == 1, "occupancy grid diverged"
        assert sum(self._occ) == len(self._occupied), "occupancy grid has stray cells"
        for di, marks_set in enumerate(self._used):
            bit = 1 << di
            marked = sum(1 for v in self._usedg if v & bit)
            assert marked == len(marks_set), "usage grid diverged"
            for (x, y) in marks_set:
                assert self._usedg[(x - gx0) * gh + (y - gy0)] & bit, "usage grid missing mark"
        assert self._legal == self._scan_all_legal(), "incremental legal moves diverged"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MorpionState(length={self.line_length}, variant={self.variant.value}, "
            f"moves={len(self._history)}, legal={len(self._legal)})"
        )
