"""Text rendering of Morpion Solitaire grids (Figure 1 of the paper).

Figure 1 of the paper shows a found world-record grid: the initial cross plus
every played circle annotated with its move number.  :func:`render_state`
reproduces that figure as text — initial circles are shown as ``( o)`` and
played circles as their 1-based move number — so that any sequence found by
the library (sequential or parallel search) can be displayed and compared.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.games.morpion.geometry import Point, bounding_box
from repro.games.morpion.state import MorpionMove, MorpionState

__all__ = ["render_grid", "render_state", "render_sequence"]


def render_grid(
    initial: Iterable[Point],
    moves: Sequence[MorpionMove] = (),
    margin: int = 1,
) -> str:
    """Render a grid of initial circles and numbered played circles.

    Parameters
    ----------
    initial:
        The circles of the starting position.
    moves:
        The moves played, in order; move ``i`` is labelled ``i + 1``.
    margin:
        Number of empty cells drawn around the bounding box of the content.
    """
    initial = set(initial)
    labels: Dict[Point, str] = {p: "o" for p in initial}
    for i, move in enumerate(moves):
        labels[move.point] = str(i + 1)
    if not labels:
        return "(empty grid)"
    min_x, min_y, max_x, max_y = bounding_box(labels.keys())
    min_x -= margin
    min_y -= margin
    max_x += margin
    max_y += margin
    width = max(2, max((len(s) for s in labels.values()), default=1))
    cell_format = "{:>%d}" % width
    empty_cell = cell_format.format("." )
    lines = []
    # Render with y increasing downwards (like the paper's figure orientation).
    for y in range(min_y, max_y + 1):
        row = []
        for x in range(min_x, max_x + 1):
            label = labels.get((x, y))
            row.append(cell_format.format(label) if label is not None else empty_cell)
        lines.append(" ".join(row))
    return "\n".join(lines)


def render_state(state: MorpionState, margin: int = 1) -> str:
    """Render a :class:`MorpionState` (initial cross + numbered moves)."""
    return render_grid(state.initial_points(), state.history(), margin=margin)


def render_sequence(
    base_state: MorpionState,
    moves: Sequence[MorpionMove],
    margin: int = 1,
) -> str:
    """Render the grid reached by playing ``moves`` from ``base_state``.

    The moves are replayed (and therefore validated) before rendering; an
    illegal sequence raises ``ValueError`` — the renderer never shows a grid
    that the rules cannot produce.
    """
    state = base_state.copy()
    for move in moves:
        state.apply(move)
    return render_state(state, margin=margin)
