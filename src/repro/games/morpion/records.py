"""Reference scores for Morpion Solitaire (disjoint / 5D version).

These are the scores quoted in the paper (Sections I and V) and are used by
EXPERIMENTS.md and the record-hunt example to put the scores found by this
reproduction into context.  They are *reference data*, not something the
library claims to reach on a laptop: the paper's 80-move sequences required a
level-4 nested search running for days on a 64-core cluster.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.games.morpion.state import MorpionState, MorpionVariant

__all__ = ["RECORD_SCORES", "reference_records", "is_new_record", "best_known_score"]

#: Scores for the standard 5-line disjoint (5D) game, as reported in the paper.
RECORD_SCORES: Dict[str, int] = {
    # Best score obtained by a human player (Demaine et al. 2006, cited as [11]).
    "human": 68,
    # Previous best computer score, obtained with Simulated Annealing
    # (Hyyrö & Poranen 2007, cited as [16]).
    "simulated_annealing": 79,
    # The paper's result: two sequences of 80 moves found by Parallel Nested
    # Monte-Carlo Search at level 4 on the 64-core cluster (Section V, fig. 1).
    "parallel_nmcs_paper": 80,
}


def reference_records() -> Dict[str, int]:
    """A copy of the reference record table for the 5D variant."""
    return dict(RECORD_SCORES)


def best_known_score(variant: "MorpionVariant | str" = MorpionVariant.DISJOINT) -> int:
    """Best score known *at the time of the paper* for the given variant.

    Only the disjoint variant is reported in the paper; for the touching
    variant this returns 0 (meaning: no reference available here).
    """
    variant = MorpionVariant.parse(variant)
    if variant is MorpionVariant.DISJOINT:
        return RECORD_SCORES["parallel_nmcs_paper"]
    return 0


def is_new_record(score: float, variant: "MorpionVariant | str" = MorpionVariant.DISJOINT) -> bool:
    """Would ``score`` have beaten the paper-time record for this variant?"""
    return score > best_known_score(variant)
