"""Morpion Solitaire — the evaluation domain of the paper (Section I and V).

Morpion Solitaire is an NP-hard pencil-and-paper puzzle.  The grid initially
contains a cross of circles; each move adds one circle such that a line of
``line_length`` circles (horizontal, vertical or diagonal) can be drawn
through it, and draws that line.  The goal is to play as many moves as
possible.

Two rule variants are supported:

* **disjoint (5D)** — two lines with the same direction may not share *any*
  point.  This is the variant evaluated in the paper (best human score 68,
  previous computer record 79, the paper's parallel NMCS found 80).
* **touching (5T)** — two lines with the same direction may share an endpoint
  but not a segment.

The implementation is parametrised by ``line_length`` so that scaled-down
boards (e.g. 4D) can be used for fast tests and CI-sized benchmark runs.
"""

from repro.games.morpion.geometry import (
    DIRECTIONS,
    cross_points,
    line_cells,
    segment_starts,
)
from repro.games.morpion.state import MorpionMove, MorpionState, MorpionVariant
from repro.games.morpion.records import reference_records, RECORD_SCORES
from repro.games.morpion.render import render_grid, render_state

__all__ = [
    "DIRECTIONS",
    "cross_points",
    "line_cells",
    "segment_starts",
    "MorpionMove",
    "MorpionState",
    "MorpionVariant",
    "reference_records",
    "RECORD_SCORES",
    "render_grid",
    "render_state",
]
