"""Grid geometry for Morpion Solitaire.

All coordinates are integer ``(x, y)`` pairs.  The board is conceptually
unbounded: moves may extend beyond the initial cross in every direction, as in
the paper-and-pencil game.

Four canonical line directions are used (the four "positive" half-directions);
a line and its reverse are the same line, so restricting to these four removes
duplicates.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

__all__ = [
    "Point",
    "DIRECTIONS",
    "NEIGHBOUR_OFFSETS",
    "line_cells",
    "segment_starts",
    "neighbours",
    "cross_points",
    "bounding_box",
]

Point = Tuple[int, int]

#: The four canonical directions: horizontal, vertical, diagonal, anti-diagonal.
DIRECTIONS: Tuple[Point, ...] = ((1, 0), (0, 1), (1, 1), (1, -1))

#: The eight king-move offsets (used to maintain the candidate-cell frontier).
NEIGHBOUR_OFFSETS: Tuple[Point, ...] = (
    (-1, -1), (-1, 0), (-1, 1),
    (0, -1), (0, 1),
    (1, -1), (1, 0), (1, 1),
)


def line_cells(start: Point, direction: Point, length: int) -> Tuple[Point, ...]:
    """The ``length`` cells of the line starting at ``start`` along ``direction``."""
    sx, sy = start
    dx, dy = direction
    return tuple((sx + i * dx, sy + i * dy) for i in range(length))


def segment_starts(start: Point, direction: Point, length: int) -> Tuple[Point, ...]:
    """The cells that *start* each unit segment of the line (``length - 1`` of them).

    Segment ``i`` joins cell ``i`` to cell ``i+1``; identifying it by its start
    cell (together with the direction) is unambiguous because directions are
    canonical.  These are the objects marked as "used" in the touching (5T)
    variant.
    """
    sx, sy = start
    dx, dy = direction
    return tuple((sx + i * dx, sy + i * dy) for i in range(length - 1))


def neighbours(point: Point) -> Tuple[Point, ...]:
    """The eight neighbouring cells of ``point``."""
    x, y = point
    return tuple((x + ox, y + oy) for ox, oy in NEIGHBOUR_OFFSETS)


def cross_points(line_length: int = 5) -> Set[Point]:
    """The initial cross of circles for a given ``line_length``.

    For ``line_length = 5`` this is the standard 36-point Greek cross used by
    the paper (figure 1); for other lengths the construction scales so that
    each straight edge of the cross outline holds ``line_length - 1`` points
    and the first moves can complete lines of ``line_length``.

    The cross fits in the square ``[0, 3s] x [0, 3s]`` with ``s = line_length - 2``.
    """
    if line_length < 3:
        raise ValueError("line_length must be at least 3")
    s = line_length - 2
    pts: Set[Point] = set()
    # Top and bottom edges of the plus outline.
    for x in range(s, 2 * s + 1):
        pts.add((x, 0))
        pts.add((x, 3 * s))
    # Short vertical runs just below / above those edges.
    for y in range(1, s):
        pts.add((s, y))
        pts.add((2 * s, y))
        pts.add((s, 3 * s - y))
        pts.add((2 * s, 3 * s - y))
    # The two long horizontal rows (left and right arms).
    for x in list(range(0, s + 1)) + list(range(2 * s, 3 * s + 1)):
        pts.add((x, s))
        pts.add((x, 2 * s))
    # Outer vertical runs of the left and right arms.
    for y in range(s + 1, 2 * s):
        pts.add((0, y))
        pts.add((3 * s, y))
    return pts


def bounding_box(points: Iterable[Point]) -> Tuple[int, int, int, int]:
    """``(min_x, min_y, max_x, max_y)`` of a non-empty point collection."""
    pts = list(points)
    if not pts:
        raise ValueError("bounding_box of an empty point set")
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    return min(xs), min(ys), max(xs), max(ys)
