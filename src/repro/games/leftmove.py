"""A deterministic toy domain with a known optimum, used for exact tests.

``LeftMoveState`` is a fixed-depth game with ``branching`` moves available at
every step (labelled ``0 .. branching-1``).  The score of a finished game is
the number of times move ``target`` was played, optionally weighted so that
later plays of the target are worth more (``weighted=True``), which makes the
optimum unique and greedy-vs-lookahead behaviour distinguishable.

Properties that make it ideal for testing search algorithms:

* the optimal score is known in closed form (``depth`` for the unweighted
  variant, ``sum(1..depth)`` for the weighted one);
* a level-1 nested search finds the optimum with probability 1 as soon as the
  sample budget covers every move once, so deterministic assertions are
  possible;
* the state is tiny and cheap to copy, so property-based tests can run
  thousands of searches.
"""

from __future__ import annotations

from typing import List

from repro.games.base import GameState, Move

__all__ = ["LeftMoveState"]


class LeftMoveState(GameState):
    """Fixed-depth, fixed-branching toy game (see module docstring)."""

    __slots__ = ("depth", "branching", "target", "weighted", "_played", "_score")

    def __init__(
        self,
        depth: int = 10,
        branching: int = 3,
        target: int = 0,
        weighted: bool = False,
    ) -> None:
        if depth < 0:
            raise ValueError("depth must be >= 0")
        if branching < 1:
            raise ValueError("branching must be >= 1")
        if not 0 <= target < branching:
            raise ValueError("target must be a legal move index")
        self.depth = depth
        self.branching = branching
        self.target = target
        self.weighted = weighted
        self._played = 0
        self._score = 0.0

    # ------------------------------------------------------------------ #
    # GameState interface
    # ------------------------------------------------------------------ #
    def legal_moves(self) -> List[Move]:
        if self._played >= self.depth:
            return []
        return list(range(self.branching))

    def apply(self, move: Move) -> None:
        if self._played >= self.depth:
            raise ValueError("game is over")
        if not isinstance(move, int) or not 0 <= move < self.branching:
            raise ValueError(f"illegal move {move!r}")
        self._played += 1
        if move == self.target:
            self._score += float(self._played) if self.weighted else 1.0

    def copy(self) -> "LeftMoveState":
        clone = LeftMoveState.__new__(LeftMoveState)
        clone.depth = self.depth
        clone.branching = self.branching
        clone.target = self.target
        clone.weighted = self.weighted
        clone._played = self._played
        clone._score = self._score
        return clone

    def score(self) -> float:
        return self._score

    def is_terminal(self) -> bool:
        return self._played >= self.depth

    def moves_played(self) -> int:
        return self._played

    # ------------------------------------------------------------------ #
    # Test helpers
    # ------------------------------------------------------------------ #
    def optimal_score(self) -> float:
        """The best achievable final score from the *initial* position."""
        remaining = self.depth
        if self.weighted:
            return float(sum(range(1, remaining + 1)))
        return float(remaining)

    def remaining_optimal_score(self) -> float:
        """Best achievable *additional* score from the current position."""
        if self.weighted:
            return float(
                sum(range(self._played + 1, self.depth + 1))
            )
        return float(self.depth - self._played)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LeftMoveState(depth={self.depth}, branching={self.branching}, "
            f"played={self._played}, score={self._score})"
        )
