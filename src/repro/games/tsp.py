"""Travelling Salesman Problem as a rollout / nested-search domain.

The paper's related-work section (Section II) cites Guerriero & Mancini's
parallel rollout strategies evaluated on the TSP and the Sequential Ordering
Problem.  This module provides the TSP substrate so that the library can run
the same comparison: nested rollouts versus a greedy nearest-neighbour
heuristic, sequentially or on the simulated cluster.

The state is a partial tour starting from city 0.  A move appends an unvisited
city; the game ends when every city is visited and the tour implicitly closes
back to the start.  The score is the *negated* total tour length so that the
maximisation convention of :class:`~repro.games.base.GameState` applies.

To keep the branching factor manageable for high nesting levels the candidate
moves can optionally be restricted to the ``k`` nearest unvisited cities
(``neighbourhood`` parameter) — this mirrors Guerriero & Mancini's use of
restricted neighbourhoods and is the knob their speedups were reported
against.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.games.base import GameState, Move

__all__ = ["TSPInstance", "TSPState"]


@dataclass(frozen=True)
class TSPInstance:
    """An immutable TSP instance: city coordinates and the distance matrix."""

    coords: Tuple[Tuple[float, float], ...]
    distances: np.ndarray  # shape (n, n), symmetric, zero diagonal

    @property
    def n_cities(self) -> int:
        return len(self.coords)

    @classmethod
    def from_coords(cls, coords: Sequence[Tuple[float, float]]) -> "TSPInstance":
        """Build an instance from Euclidean city coordinates."""
        pts = np.asarray(coords, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise ValueError("coords must be a sequence of (x, y) pairs")
        if len(pts) < 2:
            raise ValueError("a TSP instance needs at least 2 cities")
        diff = pts[:, None, :] - pts[None, :, :]
        dist = np.sqrt((diff ** 2).sum(axis=-1))
        return cls(tuple(map(tuple, pts.tolist())), dist)

    @classmethod
    def random(cls, n_cities: int = 20, seed: int = 0, side: float = 100.0) -> "TSPInstance":
        """Uniformly random cities in a ``side`` x ``side`` square."""
        rng = random.Random(seed)
        coords = [(rng.uniform(0, side), rng.uniform(0, side)) for _ in range(n_cities)]
        return cls.from_coords(coords)

    def tour_length(self, tour: Sequence[int]) -> float:
        """Length of the closed tour visiting ``tour`` in order."""
        if sorted(tour) != list(range(self.n_cities)):
            raise ValueError("tour must visit every city exactly once")
        total = 0.0
        for i in range(len(tour)):
            total += float(self.distances[tour[i], tour[(i + 1) % len(tour)]])
        return total

    def nearest_neighbour_tour(self, start: int = 0) -> List[int]:
        """The classical greedy nearest-neighbour heuristic tour."""
        unvisited = set(range(self.n_cities))
        unvisited.remove(start)
        tour = [start]
        while unvisited:
            last = tour[-1]
            nxt = min(unvisited, key=lambda c: float(self.distances[last, c]))
            unvisited.remove(nxt)
            tour.append(nxt)
        return tour


class TSPState(GameState):
    """Partial tour state over a :class:`TSPInstance`."""

    __slots__ = ("instance", "neighbourhood", "_tour", "_visited", "_length")

    def __init__(self, instance: TSPInstance, neighbourhood: Optional[int] = None):
        self.instance = instance
        if neighbourhood is not None and neighbourhood < 1:
            raise ValueError("neighbourhood must be >= 1 when given")
        self.neighbourhood = neighbourhood
        self._tour: List[int] = [0]
        self._visited = {0}
        self._length = 0.0

    # ------------------------------------------------------------------ #
    # GameState interface
    # ------------------------------------------------------------------ #
    def legal_moves(self) -> List[Move]:
        n = self.instance.n_cities
        remaining = [c for c in range(n) if c not in self._visited]
        if not remaining:
            return []
        if self.neighbourhood is None or len(remaining) <= self.neighbourhood:
            return remaining
        last = self._tour[-1]
        remaining.sort(key=lambda c: float(self.instance.distances[last, c]))
        return remaining[: self.neighbourhood]

    def apply(self, move: Move) -> None:
        if not isinstance(move, int) or move in self._visited or not (
            0 <= move < self.instance.n_cities
        ):
            raise ValueError(f"illegal TSP move {move!r}")
        last = self._tour[-1]
        self._length += float(self.instance.distances[last, move])
        self._tour.append(move)
        self._visited.add(move)

    def copy(self) -> "TSPState":
        clone = TSPState.__new__(TSPState)
        clone.instance = self.instance
        clone.neighbourhood = self.neighbourhood
        clone._tour = list(self._tour)
        clone._visited = set(self._visited)
        clone._length = self._length
        return clone

    def score(self) -> float:
        # Negated tour length, including the closing edge once complete.
        length = self._length
        if len(self._visited) == self.instance.n_cities:
            length += float(self.instance.distances[self._tour[-1], self._tour[0]])
        return -length

    def is_terminal(self) -> bool:
        return len(self._visited) == self.instance.n_cities

    def moves_played(self) -> int:
        return len(self._tour) - 1

    def heuristic_moves(self) -> List[Move]:
        """Unvisited cities ordered by distance from the current city."""
        last = self._tour[-1]
        moves = self.legal_moves()
        return sorted(moves, key=lambda c: float(self.instance.distances[last, c]))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def tour(self) -> List[int]:
        """The partial (or complete) tour as a list of city indices."""
        return list(self._tour)

    def tour_length(self) -> float:
        """Current open-path length (closing edge added only when complete)."""
        return -self.score()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TSPState(visited={len(self._visited)}/{self.instance.n_cities}, length={self.tour_length():.1f})"
