"""Travelling Salesman Problem as a rollout / nested-search domain.

The paper's related-work section (Section II) cites Guerriero & Mancini's
parallel rollout strategies evaluated on the TSP and the Sequential Ordering
Problem.  This module provides the TSP substrate so that the library can run
the same comparison: nested rollouts versus a greedy nearest-neighbour
heuristic, sequentially or on the simulated cluster.

The state is a partial tour starting from city 0.  A move appends an unvisited
city; the game ends when every city is visited and the tour implicitly closes
back to the start.  The score is the *negated* total tour length so that the
maximisation convention of :class:`~repro.games.base.GameState` applies.

To keep the branching factor manageable for high nesting levels the candidate
moves can optionally be restricted to the ``k`` nearest unvisited cities
(``neighbourhood`` parameter) — this mirrors Guerriero & Mancini's use of
restricted neighbourhoods and is the knob their speedups were reported
against.

Fast-kernel notes
-----------------
The tour length is maintained incrementally (one distance-row lookup per
apply) on plain Python-float distance rows — per-element indexing of the
numpy matrix dominates a playout otherwise — and ``legal_moves`` walks a
per-city neighbour order precomputed once per instance instead of sorting
the remaining cities every call.  Both tables are built lazily and shared by
``copy()``; a Python stable sort by distance equals the precomputed
``(distance, index)`` order walk, so move ordering is bit-identical with the
reference implementation (pinned by ``tests/data/playout_golden.json``).
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.games.base import GameState, Move

__all__ = ["TSPInstance", "TSPState"]


@dataclass(frozen=True)
class TSPInstance:
    """An immutable TSP instance: city coordinates and the distance matrix."""

    coords: Tuple[Tuple[float, float], ...]
    distances: np.ndarray  # shape (n, n), symmetric, zero diagonal

    @property
    def n_cities(self) -> int:
        return len(self.coords)

    @classmethod
    def from_coords(cls, coords: Sequence[Tuple[float, float]]) -> "TSPInstance":
        """Build an instance from Euclidean city coordinates."""
        pts = np.asarray(coords, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise ValueError("coords must be a sequence of (x, y) pairs")
        if len(pts) < 2:
            raise ValueError("a TSP instance needs at least 2 cities")
        diff = pts[:, None, :] - pts[None, :, :]
        dist = np.sqrt((diff ** 2).sum(axis=-1))
        return cls(tuple(map(tuple, pts.tolist())), dist)

    @classmethod
    def random(cls, n_cities: int = 20, seed: int = 0, side: float = 100.0) -> "TSPInstance":
        """Uniformly random cities in a ``side`` x ``side`` square."""
        rng = random.Random(seed)
        coords = [(rng.uniform(0, side), rng.uniform(0, side)) for _ in range(n_cities)]
        return cls.from_coords(coords)

    def tour_length(self, tour: Sequence[int]) -> float:
        """Length of the closed tour visiting ``tour`` in order."""
        if sorted(tour) != list(range(self.n_cities)):
            raise ValueError("tour must visit every city exactly once")
        total = 0.0
        for i in range(len(tour)):
            total += float(self.distances[tour[i], tour[(i + 1) % len(tour)]])
        return total

    def nearest_neighbour_tour(self, start: int = 0) -> List[int]:
        """The classical greedy nearest-neighbour heuristic tour."""
        unvisited = set(range(self.n_cities))
        unvisited.remove(start)
        tour = [start]
        while unvisited:
            last = tour[-1]
            nxt = min(unvisited, key=lambda c: float(self.distances[last, c]))
            unvisited.remove(nxt)
            tour.append(nxt)
        return tour

    def fast_tables(self) -> Tuple[List[List[float]], List[List[int]]]:
        """Hot-path tables: Python-float distance rows and per-city neighbour order.

        ``order[c]`` lists all cities sorted by ``(distances[c][x], x)``, which
        is exactly the order a Python stable sort by distance produces over an
        index-ordered candidate list.  Built once per instance (cached on the
        frozen dataclass via ``object.__setattr__``) and shared by every state.
        """
        cached = getattr(self, "_fast_tables", None)
        if cached is None:
            rows: List[List[float]] = self.distances.tolist()
            order = [
                sorted(range(len(rows)), key=lambda c, row=row: (row[c], c)) for row in rows
            ]
            cached = (rows, order)
            object.__setattr__(self, "_fast_tables", cached)
        return cached


class TSPState(GameState):
    """Partial tour state over a :class:`TSPInstance`."""

    WIRE_KIND = "tsp"

    __slots__ = ("instance", "neighbourhood", "_tour", "_visited", "_length", "_dist", "_order")

    def __init__(self, instance: TSPInstance, neighbourhood: Optional[int] = None):
        self.instance = instance
        if neighbourhood is not None and neighbourhood < 1:
            raise ValueError("neighbourhood must be >= 1 when given")
        self.neighbourhood = neighbourhood
        self._tour: List[int] = [0]
        self._visited = bytearray(instance.n_cities)
        self._visited[0] = 1
        self._length = 0.0
        self._dist, self._order = instance.fast_tables()

    # ------------------------------------------------------------------ #
    # GameState interface
    # ------------------------------------------------------------------ #
    def legal_moves(self) -> List[Move]:
        visited = self._visited
        n = len(visited)
        n_remaining = n - len(self._tour)
        if n_remaining == 0:
            return []
        k = self.neighbourhood
        if k is None or n_remaining <= k:
            return [c for c in range(n) if not visited[c]]
        moves: List[Move] = []
        for c in self._order[self._tour[-1]]:
            if not visited[c]:
                moves.append(c)
                if len(moves) == k:
                    break
        return moves

    def apply(self, move: Move) -> None:
        if (
            not isinstance(move, int)
            or not (0 <= move < len(self._visited))
            or self._visited[move]
        ):
            raise ValueError(f"illegal TSP move {move!r}")
        self._length += self._dist[self._tour[-1]][move]
        self._tour.append(move)
        self._visited[move] = 1

    def can_undo(self) -> bool:
        return True

    def undo(self) -> None:
        """Retract the most recent move (inverse of :meth:`apply`)."""
        if len(self._tour) < 2:
            raise ValueError("no move to undo")
        move = self._tour.pop()
        self._visited[move] = 0
        self._length -= self._dist[self._tour[-1]][move]

    def copy(self) -> "TSPState":
        clone = TSPState.__new__(TSPState)
        clone.instance = self.instance
        clone.neighbourhood = self.neighbourhood
        clone._tour = list(self._tour)
        clone._visited = bytearray(self._visited)
        clone._length = self._length
        clone._dist = self._dist
        clone._order = self._order
        return clone

    def score(self) -> float:
        # Negated tour length, including the closing edge once complete.
        length = self._length
        if len(self._tour) == len(self._visited):
            length += self._dist[self._tour[-1]][self._tour[0]]
        return -length

    def is_terminal(self) -> bool:
        return len(self._tour) == len(self._visited)

    def moves_played(self) -> int:
        return len(self._tour) - 1

    def heuristic_moves(self) -> List[Move]:
        """Unvisited cities ordered by distance from the current city."""
        last = self._tour[-1]
        moves = self.legal_moves()
        return sorted(moves, key=lambda c: float(self.instance.distances[last, c]))

    # ------------------------------------------------------------------ #
    # Compact wire form: coordinates + neighbourhood + tour; the decoder
    # replays the tour so the incremental length accumulates identically.
    # ------------------------------------------------------------------ #
    def encode_payload(self) -> bytes:
        coords = self.instance.coords
        k = 0 if self.neighbourhood is None else self.neighbourhood
        parts = [struct.pack("<III", len(coords), k, len(self._tour))]
        for (x, y) in coords:
            parts.append(struct.pack("<dd", x, y))
        parts.append(struct.pack(f"<{len(self._tour)}H", *self._tour))
        return b"".join(parts)

    @classmethod
    def decode_payload(cls, payload: bytes) -> "TSPState":
        n, k, tour_len = struct.unpack_from("<III", payload)
        offset = struct.calcsize("<III")
        coords = []
        for _ in range(n):
            coords.append(struct.unpack_from("<dd", payload, offset))
            offset += 16
        tour = struct.unpack_from(f"<{tour_len}H", payload, offset)
        state = cls(TSPInstance.from_coords(coords), neighbourhood=k or None)
        for city in tour[1:]:
            state.apply(city)
        return state

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def tour(self) -> List[int]:
        """The partial (or complete) tour as a list of city indices."""
        return list(self._tour)

    def tour_length(self) -> float:
        """Current open-path length (closing edge added only when complete)."""
        return -self.score()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TSPState(visited={len(self._tour)}/{len(self._visited)}, length={self.tour_length():.1f})"
