"""Weak Schur number partitioning as a nested-search domain.

A *weakly sum-free* partition of ``{1, .., n}`` into ``k`` parts is one where
no part contains three *distinct* integers ``x < y < z`` with ``x + y = z``.
The Weak Schur problem asks for the largest ``n`` reachable with ``k`` parts.
It is one of the combinatorial problems on which Nested Monte-Carlo Search
produced record results, and it stresses the library with a domain whose
branching factor is fixed (``k``) but whose game length is the quantity being
maximised — structurally identical to Morpion Solitaire but much cheaper,
which makes it handy for fast integration tests of the parallel drivers.

State
-----
Integers are assigned in increasing order (1, then 2, ...).  A move is the
index of the part that receives the next integer; a move is legal if adding
the integer keeps the part weakly sum-free.  The game ends when the next
integer cannot be added to any part (or an optional ``limit`` is reached).
The score is the largest integer successfully placed.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.games.base import GameState, Move

__all__ = ["WeakSchurState"]


class WeakSchurState(GameState):
    """Partition-building state for the weak Schur problem."""

    __slots__ = ("k", "limit", "_parts", "_next")

    def __init__(self, k: int = 3, limit: Optional[int] = None):
        if k < 1:
            raise ValueError("need at least one part")
        if limit is not None and limit < 1:
            raise ValueError("limit must be positive when given")
        self.k = k
        self.limit = limit
        self._parts: List[Set[int]] = [set() for _ in range(k)]
        self._next = 1

    # ------------------------------------------------------------------ #
    # Rule helpers
    # ------------------------------------------------------------------ #
    def _can_place(self, part_index: int, value: int) -> bool:
        """True if ``value`` can join part ``part_index`` weakly sum-free."""
        part = self._parts[part_index]
        # value must not be the sum of two distinct existing members...
        for x in part:
            y = value - x
            if y in part and y != x:
                return False
        # ...and must not complete a sum with an existing member as z = value + x.
        for x in part:
            if value + x in part and value != x:
                return False
        return True

    # ------------------------------------------------------------------ #
    # GameState interface
    # ------------------------------------------------------------------ #
    def legal_moves(self) -> List[Move]:
        if self.limit is not None and self._next > self.limit:
            return []
        return [i for i in range(self.k) if self._can_place(i, self._next)]

    def apply(self, move: Move) -> None:
        if not isinstance(move, int) or not 0 <= move < self.k:
            raise ValueError(f"illegal part index {move!r}")
        if self.limit is not None and self._next > self.limit:
            raise ValueError("game is over (limit reached)")
        if not self._can_place(move, self._next):
            raise ValueError(
                f"placing {self._next} in part {move} violates weak sum-freeness"
            )
        self._parts[move].add(self._next)
        self._next += 1

    def copy(self) -> "WeakSchurState":
        clone = WeakSchurState.__new__(WeakSchurState)
        clone.k = self.k
        clone.limit = self.limit
        clone._parts = [set(p) for p in self._parts]
        clone._next = self._next
        return clone

    def score(self) -> float:
        """Largest integer successfully placed so far."""
        return float(self._next - 1)

    def moves_played(self) -> int:
        return self._next - 1

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def parts(self) -> List[Set[int]]:
        """A copy of the current partition."""
        return [set(p) for p in self._parts]

    def next_integer(self) -> int:
        """The integer that will be placed by the next move."""
        return self._next

    def is_valid_partition(self) -> bool:
        """Re-check the weak sum-free property of every part (test helper)."""
        for part in self._parts:
            for x in part:
                for y in part:
                    if x < y and (x + y) in part:
                        return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WeakSchurState(k={self.k}, placed={self._next - 1})"
