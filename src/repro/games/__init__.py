"""Search-problem substrates (games / combinatorial optimisation domains).

Every domain implements the :class:`repro.games.base.GameState` interface used
by the sequential and parallel search algorithms in :mod:`repro.core` and
:mod:`repro.parallel`.

Available domains
-----------------
* :mod:`repro.games.morpion` — Morpion Solitaire (the paper's evaluation
  domain), disjoint (5D) and touching (5T) variants, parametrisable size.
* :mod:`repro.games.samegame` — SameGame puzzle.
* :mod:`repro.games.tsp` — Travelling Salesman rollout problem.
* :mod:`repro.games.sop` — Sequential Ordering Problem (TSP + precedences).
* :mod:`repro.games.weakschur` — Weak Schur number partitioning.
* :mod:`repro.games.leftmove` — deterministic toy game for exact tests.
"""

from repro.games.base import GameState, Sequence, replay, play_sequence, random_playout
from repro.games.leftmove import LeftMoveState
from repro.games.samegame import SameGameState
from repro.games.tsp import TSPState, TSPInstance
from repro.games.sop import SOPState, SOPInstance
from repro.games.weakschur import WeakSchurState
from repro.games.morpion import MorpionState, MorpionVariant

__all__ = [
    "GameState",
    "Sequence",
    "replay",
    "play_sequence",
    "random_playout",
    "LeftMoveState",
    "SameGameState",
    "TSPState",
    "TSPInstance",
    "SOPState",
    "SOPInstance",
    "WeakSchurState",
    "MorpionState",
    "MorpionVariant",
]
