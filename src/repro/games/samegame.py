"""SameGame puzzle as a :class:`~repro.games.base.GameState`.

SameGame is a classic single-agent Monte-Carlo search benchmark (it is the
domain used in the companion paper "Nested Monte-Carlo Search", IJCAI 2009,
reference [7] of the parallel paper).  It exercises the library on a domain
whose scoring is *not* simply the number of moves played, unlike Morpion
Solitaire, which matters for testing the generality of the search code.

Rules
-----
* The board is a grid of coloured cells (0 = empty).
* A move removes a connected group (4-neighbourhood) of at least two cells of
  the same colour and scores ``(n - 2)**2`` points where ``n`` is the group
  size.
* After a removal, cells fall down within their column (gravity) and empty
  columns are compacted to the left.
* Clearing the whole board grants a bonus of 1000 points.
* The game ends when no group of two or more cells remains.

Moves are identified by the *anchor cell* of the group: the (column, row) of
the lowest-then-leftmost cell of the group, which is stable under the
canonical board representation and therefore hashable and replayable.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.games.base import GameState, Move

__all__ = ["SameGameState", "random_board"]

Cell = Tuple[int, int]  # (column, row) with row 0 at the bottom


def random_board(
    width: int = 15,
    height: int = 15,
    colors: int = 5,
    seed: int = 0,
) -> List[List[int]]:
    """Generate a random SameGame board.

    The board is a list of ``width`` columns, each a list of ``height`` colour
    values in ``1..colors``.  A fixed ``seed`` gives a reproducible instance.
    """
    if width < 1 or height < 1:
        raise ValueError("board dimensions must be positive")
    if colors < 1:
        raise ValueError("colors must be >= 1")
    rng = random.Random(seed)
    return [
        [rng.randint(1, colors) for _ in range(height)] for _ in range(width)
    ]


class SameGameState(GameState):
    """SameGame position (see module docstring)."""

    FULL_CLEAR_BONUS = 1000.0

    __slots__ = ("_columns", "_score", "_moves_played", "height")

    def __init__(self, board: Sequence[Sequence[int]], height: Optional[int] = None):
        # Internally columns only store the stacked (non-empty) cells, bottom
        # first; ``height`` is retained for rendering / invariants.
        self._columns: List[List[int]] = [list(col) for col in board]
        self.height = height if height is not None else (
            max((len(c) for c in self._columns), default=0)
        )
        for col in self._columns:
            if len(col) > self.height:
                raise ValueError("column taller than the declared height")
            if any(v <= 0 for v in col):
                raise ValueError("board colours must be positive integers")
        self._score = 0.0
        self._moves_played = 0

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def random(
        cls, width: int = 15, height: int = 15, colors: int = 5, seed: int = 0
    ) -> "SameGameState":
        """A random instance of the usual 15x15, 5-colour benchmark size."""
        return cls(random_board(width, height, colors, seed), height=height)

    # ------------------------------------------------------------------ #
    # Group computation
    # ------------------------------------------------------------------ #
    def _cell_color(self, col: int, row: int) -> int:
        if 0 <= col < len(self._columns) and 0 <= row < len(self._columns[col]):
            return self._columns[col][row]
        return 0

    def _group_at(self, col: int, row: int) -> FrozenSet[Cell]:
        """Connected same-colour group containing (col, row)."""
        color = self._cell_color(col, row)
        if color == 0:
            return frozenset()
        seen = {(col, row)}
        stack = [(col, row)]
        while stack:
            c, r = stack.pop()
            for nc, nr in ((c + 1, r), (c - 1, r), (c, r + 1), (c, r - 1)):
                if (nc, nr) not in seen and self._cell_color(nc, nr) == color:
                    seen.add((nc, nr))
                    stack.append((nc, nr))
        return frozenset(seen)

    def _groups(self) -> Dict[Cell, FrozenSet[Cell]]:
        """All removable groups keyed by their anchor cell."""
        assigned: set = set()
        groups: Dict[Cell, FrozenSet[Cell]] = {}
        for ci, col in enumerate(self._columns):
            for ri in range(len(col)):
                if (ci, ri) in assigned:
                    continue
                group = self._group_at(ci, ri)
                assigned |= group
                if len(group) >= 2:
                    anchor = min(group, key=lambda cell: (cell[1], cell[0]))
                    groups[anchor] = group
        return groups

    # ------------------------------------------------------------------ #
    # GameState interface
    # ------------------------------------------------------------------ #
    def legal_moves(self) -> List[Move]:
        return sorted(self._groups().keys())

    def apply(self, move: Move) -> None:
        groups = self._groups()
        if move not in groups:
            raise ValueError(f"illegal SameGame move {move!r}")
        group = groups[move]
        n = len(group)
        # Remove the cells column by column (from the top so indices stay valid).
        by_column: Dict[int, List[int]] = {}
        for c, r in group:
            by_column.setdefault(c, []).append(r)
        for c, rows in by_column.items():
            for r in sorted(rows, reverse=True):
                del self._columns[c][r]
        # Compact empty columns to the left.
        self._columns = [col for col in self._columns if col]
        self._score += float((n - 2) ** 2)
        self._moves_played += 1
        if not self._columns:
            self._score += self.FULL_CLEAR_BONUS

    def copy(self) -> "SameGameState":
        clone = SameGameState.__new__(SameGameState)
        clone._columns = [list(col) for col in self._columns]
        clone.height = self.height
        clone._score = self._score
        clone._moves_played = self._moves_played
        return clone

    def score(self) -> float:
        return self._score

    def moves_played(self) -> int:
        return self._moves_played

    # ------------------------------------------------------------------ #
    # Introspection helpers used by tests and examples
    # ------------------------------------------------------------------ #
    def remaining_cells(self) -> int:
        """Number of non-empty cells left on the board."""
        return sum(len(col) for col in self._columns)

    def cleared(self) -> bool:
        """True when the whole board has been removed."""
        return self.remaining_cells() == 0

    def columns(self) -> List[List[int]]:
        """A copy of the internal column representation (bottom first)."""
        return [list(col) for col in self._columns]

    def render(self) -> str:
        """ASCII rendering, one character per cell, top row first."""
        width = len(self._columns)
        lines = []
        for row in range(self.height - 1, -1, -1):
            line = []
            for col in range(width):
                v = self._cell_color(col, row)
                line.append("." if v == 0 else str(v % 10))
            lines.append("".join(line) if line else "")
        return "\n".join(lines) if lines else "(empty board)"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SameGameState(cells={self.remaining_cells()}, "
            f"score={self._score}, moves={self._moves_played})"
        )
