"""SameGame puzzle as a :class:`~repro.games.base.GameState`.

SameGame is a classic single-agent Monte-Carlo search benchmark (it is the
domain used in the companion paper "Nested Monte-Carlo Search", IJCAI 2009,
reference [7] of the parallel paper).  It exercises the library on a domain
whose scoring is *not* simply the number of moves played, unlike Morpion
Solitaire, which matters for testing the generality of the search code.

Rules
-----
* The board is a grid of coloured cells (0 = empty).
* A move removes a connected group (4-neighbourhood) of at least two cells of
  the same colour and scores ``(n - 2)**2`` points where ``n`` is the group
  size.
* After a removal, cells fall down within their column (gravity) and empty
  columns are compacted to the left.
* Clearing the whole board grants a bonus of 1000 points.
* The game ends when no group of two or more cells remains.

Moves are identified by the *anchor cell* of the group: the (column, row) of
the lowest-then-leftmost cell of the group, which is stable under the
canonical board representation and therefore hashable and replayable.

Fast-kernel notes
-----------------
Columns are stored as ``bytearray`` stacks (bottom first, colours ``1..255``)
and all removable groups are enumerated by **one** iterative flood-fill pass
over a flat sentinel-padded scratch board — replacing the per-cell
``_group_at``/``_cell_color`` call storm the rollout profiler identified as
the dominant hotspot.  The group table is computed at most once per position
and shared between :meth:`legal_moves` and :meth:`apply` (the pre-refactor
kernel recomputed every group in both).  Move identifiers, ordering and
scores are bit-identical with the reference implementation; the seeded
playout goldens (``tests/data/playout_golden.json``) pin this.
"""

from __future__ import annotations

import random
import struct
from typing import Dict, List, Optional, Sequence, Tuple

from repro.games.base import GameState, Move

__all__ = ["SameGameState", "random_board"]

Cell = Tuple[int, int]  # (column, row) with row 0 at the bottom


def random_board(
    width: int = 15,
    height: int = 15,
    colors: int = 5,
    seed: int = 0,
) -> List[List[int]]:
    """Generate a random SameGame board.

    The board is a list of ``width`` columns, each a list of ``height`` colour
    values in ``1..colors``.  A fixed ``seed`` gives a reproducible instance.
    """
    if width < 1 or height < 1:
        raise ValueError("board dimensions must be positive")
    if colors < 1:
        raise ValueError("colors must be >= 1")
    rng = random.Random(seed)
    return [
        [rng.randint(1, colors) for _ in range(height)] for _ in range(width)
    ]


class SameGameState(GameState):
    """SameGame position (see module docstring)."""

    FULL_CLEAR_BONUS = 1000.0

    WIRE_KIND = "samegame"

    __slots__ = ("_columns", "_score", "_moves_played", "height", "_group_cache")

    def __init__(self, board: Sequence[Sequence[int]], height: Optional[int] = None):
        # Internally columns only store the stacked (non-empty) cells, bottom
        # first; ``height`` is retained for rendering / invariants.
        columns: List[bytearray] = []
        for col in board:
            cells = list(col)
            if any(v <= 0 for v in cells):
                raise ValueError("board colours must be positive integers")
            if any(v > 255 for v in cells):
                raise ValueError("board colours must fit in a byte (1..255)")
            columns.append(bytearray(cells))
        self._columns = columns
        self.height = height if height is not None else (
            max((len(c) for c in self._columns), default=0)
        )
        for col in self._columns:
            if len(col) > self.height:
                raise ValueError("column taller than the declared height")
        self._score = 0.0
        self._moves_played = 0
        self._group_cache: Optional[Dict[Cell, List[int]]] = None

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def random(
        cls, width: int = 15, height: int = 15, colors: int = 5, seed: int = 0
    ) -> "SameGameState":
        """A random instance of the usual 15x15, 5-colour benchmark size."""
        return cls(random_board(width, height, colors, seed), height=height)

    # ------------------------------------------------------------------ #
    # Group computation
    # ------------------------------------------------------------------ #
    def _cell_color(self, col: int, row: int) -> int:
        if 0 <= col < len(self._columns) and 0 <= row < len(self._columns[col]):
            return self._columns[col][row]
        return 0

    def _groups(self) -> Dict[Cell, List[int]]:
        """All removable groups, keyed by anchor cell, cells as flat indices.

        One flood-fill pass over a sentinel-padded flat scratch board: a cell
        at ``(col, row)`` sits at index ``(col + 1) * stride + row`` with
        ``stride = height + 1``, so its four neighbours are ``±1`` (within
        the column, the sentinel byte above each stack stops the walk) and
        ``±stride`` (adjacent columns; ghost columns of zeros pad both
        sides).  Every cell is visited once; singletons short-circuit before
        any stack work.
        """
        cached = self._group_cache
        if cached is not None:
            return cached
        columns = self._columns
        width = len(columns)
        stride = self.height + 1
        flat = bytearray((width + 2) * stride)
        for ci, col in enumerate(columns):
            base = (ci + 1) * stride
            flat[base : base + len(col)] = col
        # Visited cells are zeroed in place (colours are >= 1, so zero is
        # unambiguous).  This is safe for the singleton fast path: a cell is
        # only zeroed when absorbed into a group, and any same-coloured
        # neighbour of a still-unvisited cell is necessarily unvisited too
        # (otherwise this cell would already belong to that group).
        groups: Dict[Cell, List[int]] = {}
        w2 = width + 2
        for ci, col in enumerate(columns):
            idx = (ci + 1) * stride
            top = idx + len(col)
            while idx < top:
                color = flat[idx]
                # Singleton fast path: skip unless a same-coloured neighbour
                # exists (visited cells are zero and colours are >= 1).
                if color and (
                    flat[idx + 1] == color
                    or flat[idx - 1] == color
                    or flat[idx + stride] == color
                    or flat[idx - stride] == color
                ):
                    # Breadth-first flood with a read cursor over ``cells``
                    # itself — one append per cell, no stack pops.  The anchor
                    # (lowest row, then leftmost column) is tracked inline as
                    # the minimum of row * (width + 2) + (col + 1), an integer
                    # with the same ordering; cells reached via ``j + 1`` sit
                    # one row higher than ``j``, so only the other three
                    # neighbours can lower it.
                    flat[idx] = 0
                    cells = [idx]
                    keep = cells.append
                    ak = (idx % stride) * w2 + idx // stride
                    pos = 0
                    n = 1
                    while pos < n:
                        j = cells[pos]
                        pos += 1
                        k = j + 1
                        if flat[k] == color:
                            flat[k] = 0
                            keep(k)
                            n += 1
                        k = j - 1
                        if flat[k] == color:
                            flat[k] = 0
                            keep(k)
                            n += 1
                            kk = (k % stride) * w2 + k // stride
                            if kk < ak:
                                ak = kk
                        k = j + stride
                        if flat[k] == color:
                            flat[k] = 0
                            keep(k)
                            n += 1
                            kk = (k % stride) * w2 + k // stride
                            if kk < ak:
                                ak = kk
                        k = j - stride
                        if flat[k] == color:
                            flat[k] = 0
                            keep(k)
                            n += 1
                            kk = (k % stride) * w2 + k // stride
                            if kk < ak:
                                ak = kk
                    groups[(ak % w2 - 1, ak // w2)] = cells
                idx += 1
        self._group_cache = groups
        return groups

    # ------------------------------------------------------------------ #
    # GameState interface
    # ------------------------------------------------------------------ #
    def legal_moves(self) -> List[Move]:
        return sorted(self._groups().keys())

    def apply(self, move: Move) -> None:
        groups = self._groups()
        cells = groups.get(move)
        if cells is None:
            raise ValueError(f"illegal SameGame move {move!r}")
        n = len(cells)
        stride = self.height + 1
        # Remove the cells column by column (from the top so indices stay valid).
        by_column: Dict[int, List[int]] = {}
        for idx in cells:
            by_column.setdefault(idx // stride - 1, []).append(idx % stride)
        columns = self._columns
        for c, rows in by_column.items():
            col = columns[c]
            for r in sorted(rows, reverse=True):
                del col[r]
        # Compact empty columns to the left.
        self._columns = [col for col in columns if col]
        self._score += float((n - 2) ** 2)
        self._moves_played += 1
        if not self._columns:
            self._score += self.FULL_CLEAR_BONUS
        self._group_cache = None

    def copy(self) -> "SameGameState":
        clone = SameGameState.__new__(SameGameState)
        clone._columns = [bytearray(col) for col in self._columns]
        clone.height = self.height
        clone._score = self._score
        clone._moves_played = self._moves_played
        clone._group_cache = None
        return clone

    def score(self) -> float:
        return self._score

    def moves_played(self) -> int:
        return self._moves_played

    # ------------------------------------------------------------------ #
    # Compact wire form
    # ------------------------------------------------------------------ #
    def encode_payload(self) -> bytes:
        """``<height, score, moves_played, n_cols>`` header + length-prefixed columns."""
        parts = [
            struct.pack("<IdII", self.height, self._score, self._moves_played, len(self._columns))
        ]
        for col in self._columns:
            parts.append(struct.pack("<I", len(col)))
            parts.append(bytes(col))
        return b"".join(parts)

    @classmethod
    def decode_payload(cls, payload: bytes) -> "SameGameState":
        height, score, moves_played, n_cols = struct.unpack_from("<IdII", payload)
        offset = struct.calcsize("<IdII")
        columns: List[bytearray] = []
        for _ in range(n_cols):
            (length,) = struct.unpack_from("<I", payload, offset)
            offset += 4
            columns.append(bytearray(payload[offset : offset + length]))
            offset += length
        state = cls.__new__(cls)
        state._columns = columns
        state.height = height
        state._score = score
        state._moves_played = moves_played
        state._group_cache = None
        return state

    # ------------------------------------------------------------------ #
    # Introspection helpers used by tests and examples
    # ------------------------------------------------------------------ #
    def remaining_cells(self) -> int:
        """Number of non-empty cells left on the board."""
        return sum(len(col) for col in self._columns)

    def cleared(self) -> bool:
        """True when the whole board has been removed."""
        return self.remaining_cells() == 0

    def columns(self) -> List[List[int]]:
        """A copy of the internal column representation (bottom first)."""
        return [list(col) for col in self._columns]

    def render(self) -> str:
        """ASCII rendering, one character per cell, top row first."""
        width = len(self._columns)
        lines = []
        for row in range(self.height - 1, -1, -1):
            line = []
            for col in range(width):
                v = self._cell_color(col, row)
                line.append("." if v == 0 else str(v % 10))
            lines.append("".join(line) if line else "")
        return "\n".join(lines) if lines else "(empty board)"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SameGameState(cells={self.remaining_cells()}, "
            f"score={self._score}, moves={self._moves_played})"
        )
