"""Sequential Ordering Problem (SOP) as a rollout / nested-search domain.

The SOP is an asymmetric TSP-path problem with precedence constraints: find a
Hamiltonian path from a start node to an end node of minimum cost such that
every node is visited after all of its declared predecessors.  It is the
second benchmark (besides the TSP) on which Guerriero & Mancini evaluated
their parallel rollout strategies, cited in Section II of the paper, so the
library provides it for the same comparison.

The state is a partial path starting at node 0.  Legal moves are the
unvisited nodes whose predecessors have all been visited (the terminal node
``n-1`` is only legal once everything else has been visited).  The score is
the negated path cost.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.games.base import GameState, Move

__all__ = ["SOPInstance", "SOPState"]


@dataclass(frozen=True)
class SOPInstance:
    """An immutable SOP instance.

    Attributes
    ----------
    costs:
        Asymmetric cost matrix, shape ``(n, n)``.
    predecessors:
        ``predecessors[i]`` is the frozenset of nodes that must be visited
        before node ``i``.  Node 0 (start) has no predecessors and node
        ``n-1`` (end) implicitly requires every other node.
    """

    costs: np.ndarray
    predecessors: Tuple[FrozenSet[int], ...]

    @property
    def n_nodes(self) -> int:
        return int(self.costs.shape[0])

    def __post_init__(self) -> None:
        n = self.costs.shape[0]
        if self.costs.shape != (n, n):
            raise ValueError("cost matrix must be square")
        if len(self.predecessors) != n:
            raise ValueError("predecessors must have one entry per node")
        if self.predecessors[0]:
            raise ValueError("the start node (0) cannot have predecessors")
        for i, preds in enumerate(self.predecessors):
            for p in preds:
                if not 0 <= p < n or p == i:
                    raise ValueError(f"invalid predecessor {p} for node {i}")

    @classmethod
    def random(
        cls,
        n_nodes: int = 20,
        precedence_density: float = 0.15,
        seed: int = 0,
        cost_range: Tuple[int, int] = (1, 100),
    ) -> "SOPInstance":
        """Random instance with an acyclic random precedence structure.

        Precedences are only generated from lower-numbered to higher-numbered
        nodes, which guarantees at least one feasible ordering (the identity
        permutation) and therefore a playable game.
        """
        if n_nodes < 2:
            raise ValueError("a SOP instance needs at least 2 nodes")
        if not 0.0 <= precedence_density <= 1.0:
            raise ValueError("precedence_density must be in [0, 1]")
        rng = random.Random(seed)
        lo, hi = cost_range
        costs = np.array(
            [[0 if i == j else rng.randint(lo, hi) for j in range(n_nodes)] for i in range(n_nodes)],
            dtype=float,
        )
        preds: List[set] = [set() for _ in range(n_nodes)]
        for j in range(1, n_nodes - 1):
            for i in range(1, j):
                if rng.random() < precedence_density:
                    preds[j].add(i)
        # The end node requires every other node.
        preds[n_nodes - 1] = set(range(n_nodes - 1))
        return cls(costs, tuple(frozenset(p) for p in preds))

    def path_cost(self, path: Sequence[int]) -> float:
        """Cost of visiting ``path`` in order (must start at 0, end at n-1)."""
        if sorted(path) != list(range(self.n_nodes)):
            raise ValueError("path must visit every node exactly once")
        if path[0] != 0 or path[-1] != self.n_nodes - 1:
            raise ValueError("path must start at node 0 and end at the last node")
        return float(sum(self.costs[path[i], path[i + 1]] for i in range(len(path) - 1)))

    def is_feasible(self, path: Sequence[int]) -> bool:
        """True if ``path`` respects every precedence constraint."""
        position = {node: i for i, node in enumerate(path)}
        for node, preds in enumerate(self.predecessors):
            for p in preds:
                if position[p] > position[node]:
                    return False
        return True


class SOPState(GameState):
    """Partial feasible path over a :class:`SOPInstance`."""

    __slots__ = ("instance", "_path", "_visited", "_cost")

    def __init__(self, instance: SOPInstance):
        self.instance = instance
        self._path: List[int] = [0]
        self._visited = {0}
        self._cost = 0.0

    # ------------------------------------------------------------------ #
    # GameState interface
    # ------------------------------------------------------------------ #
    def legal_moves(self) -> List[Move]:
        n = self.instance.n_nodes
        moves = []
        for node in range(1, n):
            if node in self._visited:
                continue
            if self.instance.predecessors[node] <= self._visited:
                moves.append(node)
        return moves

    def apply(self, move: Move) -> None:
        if move not in self.legal_moves():
            raise ValueError(f"illegal SOP move {move!r}")
        last = self._path[-1]
        self._cost += float(self.instance.costs[last, move])
        self._path.append(move)
        self._visited.add(move)

    def copy(self) -> "SOPState":
        clone = SOPState.__new__(SOPState)
        clone.instance = self.instance
        clone._path = list(self._path)
        clone._visited = set(self._visited)
        clone._cost = self._cost
        return clone

    def score(self) -> float:
        return -self._cost

    def is_terminal(self) -> bool:
        return len(self._visited) == self.instance.n_nodes

    def moves_played(self) -> int:
        return len(self._path) - 1

    def heuristic_moves(self) -> List[Move]:
        """Feasible successors ordered by immediate cost (cheapest first)."""
        last = self._path[-1]
        return sorted(self.legal_moves(), key=lambda c: float(self.instance.costs[last, c]))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def path(self) -> List[int]:
        """The partial (or complete) path."""
        return list(self._path)

    def path_cost(self) -> float:
        """Cost of the partial path so far."""
        return self._cost

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SOPState(visited={len(self._visited)}/{self.instance.n_nodes}, cost={self._cost:.1f})"
