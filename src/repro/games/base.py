"""Core abstractions shared by every search domain.

The paper's pseudo-code manipulates a *position*, a set of *possible moves*,
a ``play(position, m)`` operation and a terminal *score* to maximise.  The
:class:`GameState` abstract base class captures exactly that contract; every
domain in :mod:`repro.games` implements it.

Design notes
------------
* ``play`` returns a **new** state (copy-then-apply) because the nested search
  of the paper evaluates *every* legal move from the current position before
  committing to one; ``apply`` mutates in place and is used inside playouts
  where the state is private to the playout.
* Moves must be hashable and comparable so that sequences of moves can be
  replayed, compared and stored as dictionary keys by the dispatcher layers.
* ``score()`` may be called on non-terminal states; it must return the score
  of the position *as if the game stopped now* (for Morpion Solitaire, the
  number of moves played so far).  The search algorithms only compare scores,
  so any total order works.

Fast-state protocol (see docs/GAMES.md)
---------------------------------------
Three opt-in extensions let hot kernels avoid per-move overhead without
changing what any search computes:

* :meth:`GameState.playout` — the **in-place playout** primitive.  The base
  implementation is the canonical reference loop (``legal_moves`` →
  ``rng.randrange`` → ``apply``); kernels may override it with a specialised
  loop **as long as it consumes the same rng draws and picks the same
  moves** — the seeded playout goldens (``tests/data/playout_golden.json``)
  enforce this bit-identically.
* :meth:`GameState.undo` / :meth:`GameState.can_undo` — the in-place
  apply/undo protocol for kernels that can cheaply revert their last move
  (Morpion keeps an undo journal, TSP pops the tour tail).  Kernels whose
  ``apply`` destroys information (SameGame gravity) simply keep
  ``can_undo() == False`` and rely on ``copy()`` scratch states.
* :meth:`GameState.encode` / :func:`decode_state` — compact, pickle-free
  wire forms for shipping positions to worker processes
  (:mod:`repro.parallel.pool`).  A subclass opts in by setting a
  ``WIRE_KIND`` tag and implementing ``encode_payload`` /
  ``decode_payload``; states without a codec fall back to a tagged pickle
  frame so the worker pool stays generic.
"""

from __future__ import annotations

import abc
import pickle
import random
from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar, Dict, Hashable, Iterable, List, Optional, Tuple

__all__ = [
    "Move",
    "GameState",
    "Sequence",
    "replay",
    "play_sequence",
    "random_playout",
    "playout_from",
    "legal_after",
    "decode_state",
    "wire_kinds",
]

#: Wire-format decoders, keyed by the ``WIRE_KIND`` tag of the state class.
#: Populated automatically by ``GameState.__init_subclass__``.
_WIRE_DECODERS: Dict[str, Callable[[bytes], "GameState"]] = {}

#: Reserved tag for the pickle fallback frame (never a registered kind).
_PICKLE_KIND = "pickle"

#: A move may be any hashable object; domains define their own concrete types.
Move = Hashable


class GameState(abc.ABC):
    """Abstract interface of a search problem state.

    Implementations must be *self-contained*: copying a state and playing
    moves on the copy must never affect the original.
    """

    #: Wire-format tag for :meth:`encode`; ``None`` means "no compact codec,
    #: fall back to a tagged pickle frame".  Subclasses that set it must
    #: implement :meth:`encode_payload` and :meth:`decode_payload`.
    WIRE_KIND: ClassVar[Optional[str]] = None

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        kind = cls.__dict__.get("WIRE_KIND")
        if kind is not None:
            if kind == _PICKLE_KIND:
                raise ValueError(f"WIRE_KIND {kind!r} is reserved for the pickle fallback")
            existing = getattr(_WIRE_DECODERS.get(kind), "__self__", None)
            if existing is not None and (
                existing.__module__ != cls.__module__
                or existing.__qualname__ != cls.__qualname__
            ):
                raise ValueError(f"duplicate WIRE_KIND {kind!r}")
            _WIRE_DECODERS[kind] = cls.decode_payload

    # ------------------------------------------------------------------ #
    # Abstract primitives
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def legal_moves(self) -> List[Move]:
        """Return the list of legal moves from this position.

        The returned list is owned by the caller (mutating it must not
        corrupt the state).  An empty list means the position is terminal.
        """

    @abc.abstractmethod
    def apply(self, move: Move) -> None:
        """Play ``move`` in place.  ``move`` must be legal."""

    @abc.abstractmethod
    def copy(self) -> "GameState":
        """Return an independent deep-enough copy of this state."""

    @abc.abstractmethod
    def score(self) -> float:
        """Score of the position (higher is better).

        For Morpion Solitaire this is the number of moves played; for TSP the
        negated tour length; etc.
        """

    # ------------------------------------------------------------------ #
    # Derived helpers (overridable for performance)
    # ------------------------------------------------------------------ #
    def is_terminal(self) -> bool:
        """True when no legal move remains."""
        return not self.legal_moves()

    def play(self, move: Move) -> "GameState":
        """Return a new state with ``move`` played (copy + apply)."""
        nxt = self.copy()
        nxt.apply(move)
        return nxt

    def moves_played(self) -> int:
        """Number of moves played so far from the initial position.

        Used by the Last-Minute dispatcher of the paper to estimate the
        *expected remaining computation time* of a job.  Domains that do not
        track it may fall back on 0 (every job then looks equally long).
        """
        return 0

    def heuristic_moves(self) -> List[Move]:
        """Moves ordered by a domain heuristic (best first).

        Defaults to :meth:`legal_moves`; rollout-with-heuristic algorithms
        (Section II of the paper: Klondike / Thoughtful solitaire rollouts)
        use this ordering for their base-level samples.
        """
        return self.legal_moves()

    # ------------------------------------------------------------------ #
    # In-place playout protocol
    # ------------------------------------------------------------------ #
    def playout(
        self, rng: random.Random, counter: Optional["object"] = None
    ) -> Tuple[float, Tuple[Move, ...]]:
        """Play uniformly random moves **in place** until terminal.

        Returns ``(score, moves_played)``.  This is the reference loop every
        playout in the library bottoms out in; kernels may override it with a
        specialised implementation, but the override must draw exactly one
        ``rng.randrange(len(legal))`` per move over the same ordered legal
        list, so that seeded playouts stay bit-identical with the generic
        loop (``tests/test_playout_golden.py`` enforces this).

        ``counter`` — if given, an object with an ``add_moves(n)`` method
        (see :class:`repro.core.counters.WorkCounter`), called exactly once
        with the total number of moves played.
        """
        moves_played: List[Move] = []
        append = moves_played.append
        legal_moves = self.legal_moves
        apply = self.apply
        randrange = rng.randrange
        while True:
            legal = legal_moves()
            if not legal:
                break
            move = legal[randrange(len(legal))]
            apply(move)
            append(move)
        if counter is not None:
            counter.add_moves(len(moves_played))
        return self.score(), tuple(moves_played)

    # ------------------------------------------------------------------ #
    # Apply/undo protocol (opt-in)
    # ------------------------------------------------------------------ #
    def can_undo(self) -> bool:
        """True when :meth:`undo` can revert the last :meth:`apply`."""
        return False

    def undo(self) -> None:
        """Revert the most recent :meth:`apply` in place.

        Only available when :meth:`can_undo` returns True; kernels that keep
        an undo journal (Morpion) or a trivially reversible representation
        (TSP) override both.  Raises ``ValueError`` when there is nothing to
        undo.
        """
        raise NotImplementedError(f"{type(self).__name__} does not support undo")

    # ------------------------------------------------------------------ #
    # Compact wire forms (opt-in; pickle fallback otherwise)
    # ------------------------------------------------------------------ #
    def encode(self) -> bytes:
        """Compact wire form of this state (``decode_state`` inverts it).

        The frame is ``<kind>\\x00<payload>``.  Classes with a ``WIRE_KIND``
        emit their compact payload; every other state is wrapped in a tagged
        pickle frame so the worker pool can ship *any* game, just not as
        compactly.
        """
        kind = type(self).WIRE_KIND
        if kind is None:
            return _PICKLE_KIND.encode("ascii") + b"\x00" + pickle.dumps(
                self, pickle.HIGHEST_PROTOCOL
            )
        return kind.encode("ascii") + b"\x00" + self.encode_payload()

    def encode_payload(self) -> bytes:
        """The ``WIRE_KIND``-specific payload of :meth:`encode`."""
        raise NotImplementedError(
            f"{type(self).__name__} sets no WIRE_KIND / compact payload"
        )

    @classmethod
    def decode_payload(cls, payload: bytes) -> "GameState":
        """Rebuild a state from the payload produced by :meth:`encode_payload`."""
        raise NotImplementedError(f"{cls.__name__} sets no WIRE_KIND / compact payload")


@dataclass
class Sequence:
    """A sequence of moves together with the score it reaches.

    This is the object the nested search propagates upwards ("best sequence"
    in the paper's pseudo-code) and that the parallel drivers ship between
    processes.
    """

    moves: Tuple[Move, ...] = ()
    score: float = float("-inf")

    def __len__(self) -> int:
        return len(self.moves)

    def __iter__(self):
        return iter(self.moves)

    def __bool__(self) -> bool:
        return len(self.moves) > 0

    def prepend(self, move: Move) -> "Sequence":
        """Return a new sequence with ``move`` in front (same score)."""
        return Sequence((move,) + tuple(self.moves), self.score)

    def extend_front(self, moves: Iterable[Move]) -> "Sequence":
        """Return a new sequence with ``moves`` prepended (same score)."""
        return Sequence(tuple(moves) + tuple(self.moves), self.score)

    def better_than(self, other: Optional["Sequence"]) -> bool:
        """Strictly better score than ``other`` (``None`` counts as -inf)."""
        if other is None:
            return True
        return self.score > other.score


def play_sequence(state: GameState, moves: Iterable[Move]) -> GameState:
    """Return a copy of ``state`` after playing every move of ``moves``.

    Raises ``ValueError`` if a move is illegal at the point it is played; this
    is the integrity check used by the tests ("every result replays").
    """
    current = state.copy()
    for i, move in enumerate(moves):
        legal = current.legal_moves()
        if move not in legal:
            raise ValueError(
                f"move #{i} ({move!r}) is illegal at that point "
                f"({len(legal)} legal moves available)"
            )
        current.apply(move)
    return current


def replay(state: GameState, sequence: Sequence) -> float:
    """Replay ``sequence`` from ``state`` and return the reached score.

    The returned score is recomputed from the final position (not read from
    the sequence), which lets tests verify that stored scores are truthful.
    """
    return play_sequence(state, sequence.moves).score()


def playout_from(
    state: GameState,
    rng: random.Random,
    counter: Optional["object"] = None,
) -> Tuple[float, Tuple[Move, ...]]:
    """Play uniformly random moves from ``state`` until terminal (in place).

    ``state`` **is mutated**.  Returns ``(score, moves_played)``.

    ``counter`` — if given, an object with an ``add_moves(n)`` method (see
    :class:`repro.core.counters.WorkCounter`) incremented with the number of
    moves played, which feeds the simulated-time cost model.

    Delegates to :meth:`GameState.playout`, the overridable in-place playout
    primitive, so kernels with specialised loops are picked up everywhere.
    """
    return state.playout(rng, counter)


def random_playout(
    state: GameState,
    rng: random.Random,
    counter: Optional["object"] = None,
) -> Tuple[float, Tuple[Move, ...]]:
    """Non-destructive random playout: copies ``state`` first.

    This is the paper's ``sample(position)`` primitive (Section III), returning
    both the terminal score and the move sequence that reached it.
    """
    return state.copy().playout(rng, counter)


def legal_after(state: GameState, moves: Iterable[Move]) -> List[Move]:
    """Legal moves after playing ``moves`` from ``state`` (convenience)."""
    return play_sequence(state, moves).legal_moves()


def decode_state(data: bytes) -> GameState:
    """Inverse of :meth:`GameState.encode`.

    Dispatches on the frame's kind tag: registered ``WIRE_KIND`` payloads go
    through the class codec, ``pickle`` frames through ``pickle.loads``.
    """
    kind_bytes, sep, payload = data.partition(b"\x00")
    if not sep:
        raise ValueError("not a state wire frame (missing kind separator)")
    kind = kind_bytes.decode("ascii", errors="replace")
    if kind == _PICKLE_KIND:
        state = pickle.loads(payload)
        if not isinstance(state, GameState):
            raise ValueError(f"pickle frame did not contain a GameState: {type(state)!r}")
        return state
    decoder = _WIRE_DECODERS.get(kind)
    if decoder is None:
        known = ", ".join(sorted(_WIRE_DECODERS)) or "(none)"
        raise ValueError(f"unknown state wire kind {kind!r}; registered kinds: {known}")
    return decoder(payload)


def wire_kinds() -> Tuple[str, ...]:
    """The registered compact wire kinds (sorted; excludes the pickle fallback)."""
    return tuple(sorted(_WIRE_DECODERS))
