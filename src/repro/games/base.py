"""Core abstractions shared by every search domain.

The paper's pseudo-code manipulates a *position*, a set of *possible moves*,
a ``play(position, m)`` operation and a terminal *score* to maximise.  The
:class:`GameState` abstract base class captures exactly that contract; every
domain in :mod:`repro.games` implements it.

Design notes
------------
* ``play`` returns a **new** state (copy-then-apply) because the nested search
  of the paper evaluates *every* legal move from the current position before
  committing to one; ``apply`` mutates in place and is used inside playouts
  where the state is private to the playout.
* Moves must be hashable and comparable so that sequences of moves can be
  replayed, compared and stored as dictionary keys by the dispatcher layers.
* ``score()`` may be called on non-terminal states; it must return the score
  of the position *as if the game stopped now* (for Morpion Solitaire, the
  number of moves played so far).  The search algorithms only compare scores,
  so any total order works.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, List, Optional, Tuple

__all__ = [
    "Move",
    "GameState",
    "Sequence",
    "replay",
    "play_sequence",
    "random_playout",
    "playout_from",
    "legal_after",
]

#: A move may be any hashable object; domains define their own concrete types.
Move = Hashable


class GameState(abc.ABC):
    """Abstract interface of a search problem state.

    Implementations must be *self-contained*: copying a state and playing
    moves on the copy must never affect the original.
    """

    # ------------------------------------------------------------------ #
    # Abstract primitives
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def legal_moves(self) -> List[Move]:
        """Return the list of legal moves from this position.

        The returned list is owned by the caller (mutating it must not
        corrupt the state).  An empty list means the position is terminal.
        """

    @abc.abstractmethod
    def apply(self, move: Move) -> None:
        """Play ``move`` in place.  ``move`` must be legal."""

    @abc.abstractmethod
    def copy(self) -> "GameState":
        """Return an independent deep-enough copy of this state."""

    @abc.abstractmethod
    def score(self) -> float:
        """Score of the position (higher is better).

        For Morpion Solitaire this is the number of moves played; for TSP the
        negated tour length; etc.
        """

    # ------------------------------------------------------------------ #
    # Derived helpers (overridable for performance)
    # ------------------------------------------------------------------ #
    def is_terminal(self) -> bool:
        """True when no legal move remains."""
        return not self.legal_moves()

    def play(self, move: Move) -> "GameState":
        """Return a new state with ``move`` played (copy + apply)."""
        nxt = self.copy()
        nxt.apply(move)
        return nxt

    def moves_played(self) -> int:
        """Number of moves played so far from the initial position.

        Used by the Last-Minute dispatcher of the paper to estimate the
        *expected remaining computation time* of a job.  Domains that do not
        track it may fall back on 0 (every job then looks equally long).
        """
        return 0

    def heuristic_moves(self) -> List[Move]:
        """Moves ordered by a domain heuristic (best first).

        Defaults to :meth:`legal_moves`; rollout-with-heuristic algorithms
        (Section II of the paper: Klondike / Thoughtful solitaire rollouts)
        use this ordering for their base-level samples.
        """
        return self.legal_moves()


@dataclass
class Sequence:
    """A sequence of moves together with the score it reaches.

    This is the object the nested search propagates upwards ("best sequence"
    in the paper's pseudo-code) and that the parallel drivers ship between
    processes.
    """

    moves: Tuple[Move, ...] = ()
    score: float = float("-inf")

    def __len__(self) -> int:
        return len(self.moves)

    def __iter__(self):
        return iter(self.moves)

    def __bool__(self) -> bool:
        return len(self.moves) > 0

    def prepend(self, move: Move) -> "Sequence":
        """Return a new sequence with ``move`` in front (same score)."""
        return Sequence((move,) + tuple(self.moves), self.score)

    def extend_front(self, moves: Iterable[Move]) -> "Sequence":
        """Return a new sequence with ``moves`` prepended (same score)."""
        return Sequence(tuple(moves) + tuple(self.moves), self.score)

    def better_than(self, other: Optional["Sequence"]) -> bool:
        """Strictly better score than ``other`` (``None`` counts as -inf)."""
        if other is None:
            return True
        return self.score > other.score


def play_sequence(state: GameState, moves: Iterable[Move]) -> GameState:
    """Return a copy of ``state`` after playing every move of ``moves``.

    Raises ``ValueError`` if a move is illegal at the point it is played; this
    is the integrity check used by the tests ("every result replays").
    """
    current = state.copy()
    for i, move in enumerate(moves):
        legal = current.legal_moves()
        if move not in legal:
            raise ValueError(
                f"move #{i} ({move!r}) is illegal at that point "
                f"({len(legal)} legal moves available)"
            )
        current.apply(move)
    return current


def replay(state: GameState, sequence: Sequence) -> float:
    """Replay ``sequence`` from ``state`` and return the reached score.

    The returned score is recomputed from the final position (not read from
    the sequence), which lets tests verify that stored scores are truthful.
    """
    return play_sequence(state, sequence.moves).score()


def playout_from(
    state: GameState,
    rng: random.Random,
    counter: Optional["object"] = None,
) -> Tuple[float, Tuple[Move, ...]]:
    """Play uniformly random moves from ``state`` until terminal (in place).

    ``state`` **is mutated**.  Returns ``(score, moves_played)``.

    ``counter`` — if given, an object with an ``add_moves(n)`` method (see
    :class:`repro.core.counters.WorkCounter`) incremented with the number of
    moves played, which feeds the simulated-time cost model.
    """
    moves_played: List[Move] = []
    while True:
        legal = state.legal_moves()
        if not legal:
            break
        move = legal[rng.randrange(len(legal))]
        state.apply(move)
        moves_played.append(move)
    if counter is not None:
        counter.add_moves(len(moves_played))
    return state.score(), tuple(moves_played)


def random_playout(
    state: GameState,
    rng: random.Random,
    counter: Optional["object"] = None,
) -> Tuple[float, Tuple[Move, ...]]:
    """Non-destructive random playout: copies ``state`` first.

    This is the paper's ``sample(position)`` primitive (Section III), returning
    both the terminal score and the move sequence that reached it.
    """
    return playout_from(state.copy(), rng, counter)


def legal_after(state: GameState, moves: Iterable[Move]) -> List[Move]:
    """Legal moves after playing ``moves`` from ``state`` (convenience)."""
    return play_sequence(state, moves).legal_moves()
