"""Content-addressed on-disk store of search results.

A :class:`ResultStore` maps :class:`~repro.api.SearchSpec`\\ s to their
:class:`~repro.api.RunReport`\\ s through :func:`repro.lab.keys.spec_key`:
the canonical hash of a spec (+ the code-version salt) names a JSON record
on disk.  Because the key is derived from *content*, not from when or where
a run happened, the store gives sweeps two properties for free:

* **skip** — re-running a sweep against a populated store executes zero new
  searches (every cell resolves to an existing record);
* **resume** — an interrupted sweep picks up where it stopped, completing
  only the missing cells, with no bookkeeping beyond the records themselves.

Layout: ``<root>/ab/<full-40-hex-key>.json`` (two-character fan-out so a
directory never accumulates every record).  Records are written atomically
(temp file + ``os.replace``), so a killed run never leaves a half-written
record to poison a resume.

A record keeps the spec, the report's serialised form and provenance
(salt, creation time, library version).  Reports loaded back carry rendered
move strings rather than live ``Move`` objects — scores, times and counters
round-trip exactly; callers that need replayable sequences re-run without a
store.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

try:  # POSIX advisory locking; the claim-file fallback covers the rest
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.api import RunReport, SearchSpec
from repro.lab.keys import CODE_VERSION, spec_key
from repro.obs import metrics as _obs_metrics

__all__ = ["ResultStore", "StoreRecord"]

# Telemetry (no-ops unless repro.obs is enabled).
_STORE_HITS = _obs_metrics.counter(
    "repro_store_hits_total", "ResultStore.get lookups that found a record"
)
_STORE_MISSES = _obs_metrics.counter(
    "repro_store_misses_total", "ResultStore.get lookups that found nothing"
)
_STORE_WRITES = _obs_metrics.counter(
    "repro_store_writes_total", "records persisted by ResultStore.put"
)
_STORE_LOCK_WAIT = _obs_metrics.histogram(
    "repro_store_lock_wait_seconds",
    "time ResultStore.put waited for the write locks (thread + inter-process)",
    buckets=(0.0001, 0.001, 0.01, 0.1, 1.0, 10.0),
)

#: A stored record: ``{"key", "salt", "created_at", "spec", "report"}``.
StoreRecord = Dict[str, Any]

#: Per-process write lock shared by every :class:`ResultStore` instance.
#: This keeps the mkstemp/dump/replace path serialised across *threads* of
#: one process (the service's worker pool races ``put`` on the same key); the
#: :class:`_InterProcessFileLock` below extends the same guarantee across
#: *processes* (two ``repro sweep`` invocations, or a sweep racing a server,
#: sharing one store), so concurrent writers degrade to last-writer-wins
#: instead of interleaving temp-file churn.  ``os.replace`` keeps each
#: individual write atomic regardless.
_WRITE_LOCK = threading.Lock()

#: Seconds after which a claim file left by a killed process (claim-file
#: fallback only — ``flock`` locks die with their holder) is treated as stale
#: and broken.  Well above any single record write, well below a human retry.
_CLAIM_STALE_S = 30.0


class _InterProcessFileLock:
    """An advisory cross-process mutex on ``<root>/.lock``.

    On POSIX this is ``fcntl.flock(LOCK_EX)`` — kernel-mediated, released
    automatically when the holding process dies, zero polling.  Where
    ``fcntl`` is unavailable it degrades to an ``O_EXCL`` claim-file spin:
    atomically create ``<root>/.lock.claim`` to acquire, unlink to release,
    break claims older than :data:`_CLAIM_STALE_S` (a killed writer must not
    wedge the store forever).

    Callers must serialise *threads* themselves (``put`` holds
    :data:`_WRITE_LOCK` around this lock): ``flock`` is per open file
    description, so two threads of one process would not exclude each other
    through it.
    """

    def __init__(self, path: Path) -> None:
        self.path = path
        self._fd: Optional[int] = None
        self._claim: Optional[Path] = None

    def __enter__(self) -> "_InterProcessFileLock":
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if fcntl is not None:
            self._fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
            fcntl.flock(self._fd, fcntl.LOCK_EX)
            return self
        claim = self.path.with_name(self.path.name + ".claim")
        while True:  # pragma: no cover - exercised only without fcntl
            try:
                fd = os.open(claim, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
                os.close(fd)
                self._claim = claim
                return self
            except FileExistsError:
                try:
                    age = time.time() - claim.stat().st_mtime
                except OSError:  # holder released between open and stat
                    continue
                if age > _CLAIM_STALE_S:
                    try:
                        claim.unlink()
                    except OSError:
                        pass
                    continue
                time.sleep(0.005)

    def __exit__(self, *exc_info: Any) -> None:
        if self._fd is not None:
            fcntl.flock(self._fd, fcntl.LOCK_UN)
            os.close(self._fd)
            self._fd = None
        if self._claim is not None:  # pragma: no cover - fcntl-less fallback
            try:
                self._claim.unlink()
            except OSError:
                pass
            self._claim = None


class ResultStore:
    """A content-addressed, process-safe store of run reports.

    Parameters
    ----------
    root:
        Directory holding the records (created on first write).
    salt:
        Key salt; defaults to :data:`repro.lab.keys.CODE_VERSION`.  Callers
        running a non-default engine environment (custom network model, ...)
        should extend the salt so those results never alias default ones.
    """

    def __init__(self, root: Union[str, Path], *, salt: str = CODE_VERSION) -> None:
        self.root = Path(root)
        self.salt = salt
        # Lives outside the ??/ record fan-out, so keys() never sees it.
        self._iplock = _InterProcessFileLock(self.root / ".lock")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({str(self.root)!r}, salt={self.salt!r})"

    # ------------------------------------------------------------------ #
    # Keys and paths
    # ------------------------------------------------------------------ #
    def key(self, spec: SearchSpec) -> str:
        """The content address of ``spec`` under this store's salt."""
        return spec_key(spec, salt=self.salt)

    def path_for(self, key: str) -> Path:
        """Where the record for ``key`` lives (whether or not it exists)."""
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------ #
    # Read side
    # ------------------------------------------------------------------ #
    def __contains__(self, spec: SearchSpec) -> bool:
        return self.path_for(self.key(spec)).is_file()

    def load(self, key: str) -> Optional[StoreRecord]:
        """The raw record for ``key``, or ``None`` when absent or unreadable.

        A truncated or otherwise corrupt record (killed writer, torn disk,
        encoding damage) reads as *missing* rather than raising: the store's
        contract is "a record may or may not exist", and a poisoned file
        should cost a re-run, not crash a resume.  Records are also rejected
        unless they decode to a JSON object (anything else cannot be a
        :data:`StoreRecord`).
        """
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as fh:
                record = json.load(fh)
        except (OSError, ValueError, UnicodeDecodeError):
            # OSError covers the missing file; ValueError covers truncated /
            # partial / non-JSON content (json.JSONDecodeError subclasses it).
            return None
        return record if isinstance(record, dict) else None

    def get(self, spec: SearchSpec) -> Optional[RunReport]:
        """The stored report for ``spec``, or ``None`` when absent."""
        record = self.load(self.key(spec))
        if record is None:
            _STORE_MISSES.inc()
            return None
        _STORE_HITS.inc()
        return self._report_from_record(record)

    def keys(self) -> Iterator[str]:
        """All record keys currently in the store (any order)."""
        if not self.root.is_dir():
            return
        for path in self.root.glob("??/*.json"):
            yield path.stem

    def records(self) -> Iterator[StoreRecord]:
        """All records currently in the store (any order)."""
        for key in self.keys():
            record = self.load(key)
            if record is not None:
                yield record

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    # ------------------------------------------------------------------ #
    # Write side
    # ------------------------------------------------------------------ #
    def put(self, spec: SearchSpec, report: RunReport) -> str:
        """Persist ``report`` under ``spec``'s key (atomically); returns the key.

        An existing record for the same key is replaced — by construction it
        describes the same computation under the same code version, so the
        replacement is a no-op apart from provenance timestamps.
        """
        from repro import __version__

        key = self.key(spec)
        record: StoreRecord = {
            "key": key,
            "salt": self.salt,
            "created_at": time.time(),
            "library_version": __version__,
            "spec": spec.to_dict(),
            "report": report.to_dict(),
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        lock_wait_start = time.perf_counter()
        with _WRITE_LOCK, self._iplock:
            _STORE_LOCK_WAIT.observe(time.perf_counter() - lock_wait_start)
            fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(record, fh, sort_keys=True)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        _STORE_WRITES.inc()
        return key

    def discard(self, spec: SearchSpec) -> bool:
        """Remove the record for ``spec``; returns whether one existed."""
        path = self.path_for(self.key(spec))
        try:
            path.unlink()
            return True
        except FileNotFoundError:
            return False

    # ------------------------------------------------------------------ #
    # Record decoding
    # ------------------------------------------------------------------ #
    @staticmethod
    def _report_from_record(record: StoreRecord) -> RunReport:
        data = dict(record["report"])
        # Records store the spec both at top level and inside the report's
        # serialised form; the top-level copy is authoritative.
        data["spec"] = record["spec"]
        return RunReport.from_dict(data, raw=record)
