"""A persistent worker-*process* pool executing sweep cells GIL-free.

:meth:`repro.api.Engine.stream` can run independent cells on a thread pool,
but CPU-bound cells (pure-Python simulator runs) serialize on the GIL: a
16-core box still sweeps at ~1 core.  This module is the process-backed
execution substrate behind ``Engine.stream(..., executor="process")`` /
``repro sweep --processes N``, built on the :mod:`repro.parallel.pool`
idiom — daemon workers spawned once and reused across batches, compact wire
frames, error frames instead of deadlocks, a process-wide shared pool with
atexit cleanup:

* **Cells travel as spec dicts.** A :class:`~repro.api.SearchSpec` is a
  complete, JSON-round-trippable description of one cell, so the wire form
  is its ``to_dict()`` — no game state, executor or engine object ever
  crosses the process boundary.  Each worker keeps a per-network
  :class:`~repro.api.Engine` alive across chunks, so the engine's
  per-workload job caches persist for the whole sweep exactly as they do in
  the parent's inline path.
* **Chunked dispatch.** Small cells (sub-100 ms kernel runs) would drown in
  per-cell IPC; cells are batched ``chunk_size`` per task frame
  (:func:`auto_chunk_size` picks a default from the batch and pool size).
  Results still stream back one frame per *cell*, so parent-side progress
  events stay live whatever the chunk size.
* **Cooperative cancellation.** Workers check a shared
  ``multiprocessing.Event`` before every cell; cancelled cells report a
  ``skip`` frame (no terminal :class:`~repro.api.RunEvent` — exactly the
  inline path's early-out) and the chunk keeps draining, so the pool is
  reusable the moment the batch ends.
* **Telemetry merge.** When :mod:`repro.obs` is enabled, each worker resets
  its (forked) registry at startup, snapshots it after every chunk and ships
  the snapshot home; the parent folds it into its own registry via
  :meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`, so
  ``repro stats`` counts cells run in children.

The store is deliberately **not** given to the workers: cache hits
short-circuit in the parent, misses dispatch, and the parent persists each
completed report exactly once from the event-consuming thread (see
``Engine._stream_process``).  Two *separate* sweep processes sharing one
store are serialised by :class:`repro.lab.store.ResultStore`'s inter-process
file lock instead.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import queue as _queue
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "SweepWorkerPool",
    "RemoteCellError",
    "auto_chunk_size",
    "shared_sweep_pool",
    "close_shared_sweep_pool",
]

#: Upper bound on the auto-chosen chunk size: past this, a straggler chunk
#: can idle the rest of the pool for no further IPC savings.
_MAX_AUTO_CHUNK = 16

#: Seconds without any result frame before the pool declares itself wedged.
_FRAME_TIMEOUT_S = 600.0


class RemoteCellError(RuntimeError):
    """A cell raised inside a worker process.

    The original exception has no faithful cross-process form, so the parent
    re-raises this carrying the rendered ``"TypeName: message"`` — the same
    lossy-but-honest convention as :meth:`repro.api.RunEvent.to_dict`.
    """


def auto_chunk_size(n_cells: int, n_workers: int) -> int:
    """The default cells-per-task-frame for a batch of ``n_cells``.

    Aims for ~4 chunks per worker so stragglers rebalance, clamped to
    [1, 16]: one-cell chunks when the batch is small (latency over
    amortisation), bounded chunks when it is huge (amortisation without
    head-of-line blocking).
    """
    if n_cells <= 0 or n_workers <= 0:
        raise ValueError("n_cells and n_workers must be positive")
    return max(1, min(_MAX_AUTO_CHUNK, n_cells // (n_workers * 4)))


def _sweep_worker_main(tasks: Any, results: Any, cancel: Any) -> None:
    """Worker loop: run spec-dict cells through a long-lived local Engine."""
    # Deferred so the module stays importable from repro.lab without pulling
    # the full engine at parent import time; workers pay it once.
    from repro import obs
    from repro.api import Engine, SearchSpec

    # A forked worker inherits the parent's counter values; zero them so the
    # per-chunk snapshots shipped home describe this worker's work only.
    obs.metrics.reset()
    engines: Dict[str, Engine] = {}
    while True:
        frame = tasks.get()
        if frame is None:
            break
        batch_id, cells, obs_enabled, network = frame
        if obs_enabled and not obs.enabled():
            obs.enable()
        elif not obs_enabled and obs.enabled():
            obs.disable()
        engine = engines.get(repr(network))
        if engine is None:
            engine = engines[repr(network)] = Engine(network=network)
        for index, spec_dict in cells:
            if cancel.is_set():
                results.put(("cell", batch_id, index, "skip", None))
                continue
            try:
                report = engine.run(SearchSpec.from_dict(spec_dict))
                results.put(("cell", batch_id, index, "ok", report.to_dict()))
            except BaseException as exc:  # error frame, never a dead parent
                results.put(
                    ("cell", batch_id, index, "err", f"{type(exc).__name__}: {exc}")
                )
        snapshot = obs.metrics.snapshot() if obs_enabled else None
        if obs_enabled:
            obs.metrics.reset()
        results.put(("chunk", batch_id, snapshot))


class SweepWorkerPool:
    """Long-lived worker processes executing serialized sweep cells.

    Like :class:`repro.parallel.pool.PersistentWorkerPool`, the pool is
    meant to outlive a single batch: create it once (or use
    :func:`shared_sweep_pool`) and every sweep reuses the same processes.
    One batch runs at a time (``begin_batch`` holds a lock), so concurrent
    callers — e.g. two service worker threads — queue rather than interleave
    each other's result frames.
    """

    def __init__(self, n_workers: Optional[int] = None, start_method: Optional[str] = None):
        if n_workers is not None and n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers if n_workers is not None else (os.cpu_count() or 1)
        context = multiprocessing.get_context(start_method) if start_method else multiprocessing
        self._tasks = context.Queue()
        self._results = context.Queue()
        self._cancel = context.Event()
        self._workers = [
            context.Process(
                target=_sweep_worker_main,
                args=(self._tasks, self._results, self._cancel),
                daemon=True,
            )
            for _ in range(self.n_workers)
        ]
        for worker in self._workers:
            worker.start()
        self._batch_lock = threading.Lock()
        self._next_batch = 0
        self._closed = False
        #: lifetime counters (tests and diagnostics)
        self.chunks_dispatched = 0
        self.cells_dispatched = 0

    # ------------------------------------------------------------------ #
    # Batch protocol
    # ------------------------------------------------------------------ #
    def begin_batch(self) -> int:
        """Claim the pool for one batch; returns the batch id.

        Blocks while another batch runs.  Always pair with ``end_batch`` in
        a ``finally`` — the pool stays claimed (and every other caller
        blocked) otherwise.
        """
        if self._closed:
            raise RuntimeError("the sweep worker pool has been closed")
        self._batch_lock.acquire()
        self._cancel.clear()
        self._next_batch += 1
        return self._next_batch

    def end_batch(self) -> None:
        """Release the pool for the next batch."""
        self._batch_lock.release()

    def submit_chunk(
        self,
        batch_id: int,
        cells: Sequence[Tuple[int, Dict[str, Any]]],
        obs_enabled: bool,
        network: Any = None,
    ) -> None:
        """Enqueue one task frame of ``(cell_index, spec_dict)`` pairs."""
        if self._closed:
            raise RuntimeError("the sweep worker pool has been closed")
        self._tasks.put((batch_id, list(cells), obs_enabled, network))
        self.chunks_dispatched += 1
        self.cells_dispatched += len(cells)

    def cancel_batch(self) -> None:
        """Ask workers to skip cells not yet started (idempotent)."""
        self._cancel.set()

    def next_frame(self, batch_id: int, poll_s: float = 0.1) -> Optional[Tuple[Any, ...]]:
        """The next result frame of ``batch_id``, or ``None`` on a poll tick.

        Returning ``None`` (rather than blocking indefinitely) lets the
        caller re-check its cancel flag between frames.  Frames from other
        batches — impossible while batches hold the lock and drain fully,
        but cheap to guard — are dropped.  Raises ``RuntimeError`` when a
        worker died or no frame arrived for :data:`_FRAME_TIMEOUT_S`.
        """
        deadline = time.monotonic() + _FRAME_TIMEOUT_S
        while True:
            try:
                frame = self._results.get(timeout=poll_s)
            except _queue.Empty:
                if not self.alive:
                    self._reap()
                    raise RuntimeError(
                        "a sweep worker process died; the pool has been torn down"
                    ) from None
                if time.monotonic() >= deadline:
                    self._reap()
                    raise RuntimeError(
                        f"sweep worker pool produced no frame for {_FRAME_TIMEOUT_S:.0f}s"
                    ) from None
                return None
            if frame[1] != batch_id:  # pragma: no cover - defensive
                continue
            return frame

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def alive(self) -> bool:
        """True while the pool is open and every worker process lives."""
        return not self._closed and all(w.is_alive() for w in self._workers)

    def _reap(self) -> None:
        for worker in self._workers:
            if worker.is_alive():
                worker.terminate()
        self._closed = True

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._cancel.set()
        for _ in self._workers:
            try:
                self._tasks.put(None)
            except (OSError, ValueError):  # pragma: no cover - defensive
                break
        for worker in self._workers:
            worker.join(timeout=5.0)
            if worker.is_alive():  # pragma: no cover - defensive
                worker.terminate()
        self._tasks.close()
        self._results.close()

    def __enter__(self) -> "SweepWorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - defensive
        try:
            self.close()
        except Exception:
            pass


_SHARED: Optional[SweepWorkerPool] = None


def shared_sweep_pool(n_workers: Optional[int] = None) -> SweepWorkerPool:
    """The process-wide sweep pool, (re)created on size change or death.

    Every ``Engine.stream(executor="process")`` call that does not manage
    its own pool shares these workers, so repeated sweeps pay the process
    spawn cost once — the same persistence contract as
    :func:`repro.parallel.pool.shared_pool`.
    """
    global _SHARED
    wanted = n_workers if n_workers is not None else (os.cpu_count() or 1)
    if _SHARED is None or not _SHARED.alive or _SHARED.n_workers != wanted:
        if _SHARED is not None:
            _SHARED.close()
        _SHARED = SweepWorkerPool(n_workers=wanted)
    return _SHARED


def close_shared_sweep_pool() -> None:
    """Tear down the process-wide pool (also registered at interpreter exit)."""
    global _SHARED
    if _SHARED is not None:
        _SHARED.close()
        _SHARED = None


atexit.register(close_shared_sweep_pool)
