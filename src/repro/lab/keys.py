"""Content-addressed keys for search scenarios.

A :class:`~repro.api.SearchSpec` is a complete, JSON-round-trippable
description of one search, and every search in this library is deterministic
given its spec.  That makes a spec's canonical JSON form a perfect content
address for its result: :func:`spec_key` hashes the canonical encoding
together with a *code-version salt*, and :class:`repro.lab.store.ResultStore`
uses the digest as the on-disk filename.

The salt (:data:`CODE_VERSION`) exists because determinism is a property of
the *code*, not just the spec: a change to playout order, seed derivation or
the cost model changes what a spec evaluates to without changing the spec.
Bump :data:`CODE_VERSION` whenever search semantics change and every store
key rolls over, so stale results are never silently reused.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (api imports lab)
    from repro.api import SearchSpec

__all__ = ["CODE_VERSION", "canonical_payload", "spec_key"]

#: Salt mixed into every spec key.  Bump when search semantics change
#: (seed derivation, playout order, cost model, dispatcher behaviour, ...);
#: all content addresses roll over and stores refuse to reuse stale results.
#: repro-lab-2: virtual-work-time kernel — zero-work computes now count in
#: n_jobs and completion instants are solved from exact work targets, so
#: reports stored under repro-lab-1 describe the old kernel's outputs.
CODE_VERSION = "repro-lab-2"


def canonical_payload(spec: "SearchSpec") -> str:
    """The canonical JSON encoding of a spec (sorted keys, no whitespace).

    Raises ``TypeError`` when the spec carries params with no JSON form —
    such specs cannot be content-addressed (or stored) at all, which is the
    honest failure mode: a key that silently ignored un-encodable params
    would alias distinct scenarios.
    """
    return json.dumps(spec.to_dict(), sort_keys=True, separators=(",", ":"))


def spec_key(spec: "SearchSpec", *, salt: str = CODE_VERSION) -> str:
    """Stable 160-bit hex content address of ``spec`` under ``salt``.

    The digest is independent of Python hash randomisation, process, platform
    and dict insertion order (BLAKE2b over the canonical JSON payload), so
    keys computed in different processes — or different machines sharing a
    store — always agree.
    """
    h = hashlib.blake2b(digest_size=20)
    h.update(salt.encode("utf-8"))
    h.update(b"\x00")
    h.update(canonical_payload(spec).encode("utf-8"))
    return h.hexdigest()
