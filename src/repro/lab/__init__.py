"""``repro.lab`` — declarative sweeps with durable, resumable results.

PR 1 made single runs declarative (:class:`~repro.api.SearchSpec` +
:class:`~repro.api.Engine`); this package does the same for *sweeps*, which
is what every table of the paper actually is:

* :class:`~repro.lab.sweep.SweepSpec` — a frozen, JSON-round-trippable grid
  (base spec + axes) expanding deterministically into per-cell specs;
* :class:`~repro.lab.store.ResultStore` — a content-addressed on-disk store
  keyed by :func:`~repro.lab.keys.spec_key`, so re-runs skip completed cells
  and interrupted sweeps resume for free;
* :mod:`repro.lab.export` — flat JSON/CSV rows that
  :func:`repro.analysis.tables.pivot_table` renders directly;
* :mod:`repro.lab.procpool` — the persistent worker-process pool behind
  ``Engine.stream(executor="process")`` / ``repro sweep --processes``, so
  CPU-bound grids scale past the GIL (see ``docs/SWEEPS.md``).

Execution lives on the engine: ``Engine.run_many(sweep, store=...)`` and the
streaming ``Engine.stream(...)`` event iterator (see :mod:`repro.api`).

>>> from repro import Engine, ResultStore, SearchSpec, SweepSpec
>>> sweep = SweepSpec(
...     base=SearchSpec(workload="morpion-small", backend="sim-cluster", max_steps=1),
...     axes={"n_clients": (1, 4)},
... )
>>> store = ResultStore("/tmp/repro-store")          # doctest: +SKIP
>>> reports = Engine().run_many(sweep, store=store)  # doctest: +SKIP
"""

from repro.lab.keys import CODE_VERSION, spec_key
from repro.lab.procpool import (
    RemoteCellError,
    SweepWorkerPool,
    auto_chunk_size,
    close_shared_sweep_pool,
    shared_sweep_pool,
)
from repro.lab.sweep import SweepCell, SweepSpec
from repro.lab.store import ResultStore, StoreRecord
from repro.lab.export import (
    ROW_FIELDS,
    row_from_report,
    rows_from_reports,
    rows_from_store,
    write_csv,
    write_json,
)

__all__ = [
    "CODE_VERSION",
    "spec_key",
    "SweepSpec",
    "SweepCell",
    "ResultStore",
    "StoreRecord",
    "SweepWorkerPool",
    "RemoteCellError",
    "auto_chunk_size",
    "shared_sweep_pool",
    "close_shared_sweep_pool",
    "ROW_FIELDS",
    "row_from_report",
    "rows_from_reports",
    "rows_from_store",
    "write_csv",
    "write_json",
]
