"""Flat-row export of sweep results (JSON / CSV) for analysis pipelines.

A *row* is one flat mapping of scalars per run — the spec's identifying
fields plus the report's measurements — so downstream tools (spreadsheets,
pandas, :func:`repro.analysis.tables.pivot_table`) consume sweep results
without ever scraping rendered tables.  Rows are produced either from live
:class:`~repro.api.RunReport`\\ s (:func:`rows_from_reports`) or straight
from a :class:`~repro.lab.store.ResultStore` (:func:`rows_from_store`).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.api import RunReport
from repro.lab.store import ResultStore, StoreRecord

__all__ = [
    "ROW_FIELDS",
    "row_from_report",
    "rows_from_reports",
    "rows_from_store",
    "write_csv",
    "write_json",
]

#: Column order of exported rows (CSV header order).
ROW_FIELDS = (
    "key",
    "workload",
    "algorithm",
    "backend",
    "level",
    "seed",
    "dispatcher",
    "cluster",
    "n_clients",
    "n_medians",
    "n_workers",
    "max_steps",
    "score",
    "sequence_length",
    "work_units",
    "simulated_seconds",
    "wall_seconds",
    "n_jobs",
    "client_utilisation",
)


def row_from_report(report: RunReport, *, key: Optional[str] = None) -> Dict[str, Any]:
    """Flatten one report (and its spec) into a scalar row."""
    spec = report.spec
    return {
        "key": key,
        "workload": spec.workload,
        "algorithm": report.algorithm,
        "backend": report.backend,
        "level": report.level,
        "seed": spec.seed,
        "dispatcher": spec.dispatcher,
        "cluster": spec.cluster,
        "n_clients": spec.n_clients,
        "n_medians": spec.n_medians,
        "n_workers": report.n_workers if report.n_workers is not None else spec.n_workers,
        "max_steps": spec.max_steps,
        "score": report.score,
        "sequence_length": report.sequence_length,
        "work_units": report.work_units,
        "simulated_seconds": report.simulated_seconds,
        "wall_seconds": report.wall_seconds,
        "n_jobs": report.n_jobs,
        "client_utilisation": report.client_utilisation,
    }


def rows_from_reports(
    reports: Iterable[RunReport], *, store: Optional[ResultStore] = None
) -> List[Dict[str, Any]]:
    """One row per report, in iteration order (keys filled when ``store`` given)."""
    return [
        row_from_report(report, key=store.key(report.spec) if store is not None else None)
        for report in reports
    ]


def _row_from_record(record: StoreRecord) -> Dict[str, Any]:
    report = ResultStore._report_from_record(record)
    return row_from_report(report, key=record.get("key"))


def rows_from_store(store: ResultStore) -> List[Dict[str, Any]]:
    """One row per record in the store, sorted by key (stable across runs)."""
    return sorted((_row_from_record(r) for r in store.records()), key=lambda row: row["key"])


def write_csv(rows: Iterable[Dict[str, Any]], path: Union[str, Path]) -> Path:
    """Write rows as CSV with the :data:`ROW_FIELDS` header; returns the path."""
    path = Path(path)
    rows = list(rows)
    extra = sorted({name for row in rows for name in row} - set(ROW_FIELDS))
    with path.open("w", encoding="utf-8", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(ROW_FIELDS) + extra)
        writer.writeheader()
        writer.writerows(rows)
    return path


def write_json(rows: Iterable[Dict[str, Any]], path: Union[str, Path]) -> Path:
    """Write rows as a JSON array; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(list(rows), indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path
