"""Declarative sweeps: a grid of :class:`~repro.api.SearchSpec` scenarios.

Every headline result of the paper is a sweep — Tables II–V vary client
count × level × dispatcher, Table VI varies the cluster repartition.  A
:class:`SweepSpec` makes that a first-class object: a frozen, JSON-round-
trippable description of a base spec plus named axes, expanding
*deterministically* into one :class:`SweepCell` per point of the Cartesian
product.  Determinism matters because the expansion order defines each
cell's index and the ``repeats`` axis derives each repeat's seed; two
processes expanding the same document must agree cell for cell, which is
what lets :class:`repro.lab.store.ResultStore` resume an interrupted sweep.

Axes name either a ``SearchSpec`` field (``n_clients``, ``level``,
``dispatcher``, ``workload``, ...) or an algorithm parameter via a dotted
``params.<name>`` key::

    SweepSpec(
        base=SearchSpec(workload="morpion-small", backend="sim-cluster", max_steps=1),
        axes={"dispatcher": ("rr", "lm"), "n_clients": (1, 4, 16, 64)},
    )

By default every cell keeps the base seed, so scores are comparable across
the grid and the engine's job cache is shared (the paper's tables compare
*times* of the same search).  ``repeats=k`` adds an outermost repetition axis
whose seeds are derived from the base seed with :func:`repro.prng.derive_seed`,
for sweeps that want score statistics instead.

Cells are independent by construction (each is a complete, serialisable
:class:`~repro.api.SearchSpec`), which is what lets the engine execute a grid
on a thread pool (``Engine.stream(..., max_workers=N)``) or shard it across
the persistent worker-*process* pool (``executor="process"`` /
``repro sweep --processes N``; see :mod:`repro.lab.procpool`) with results
identical to serial execution.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.api import SearchSpec
from repro.prng import derive_seed

__all__ = ["SweepSpec", "SweepCell", "PARAM_AXIS_PREFIX"]

#: Axis-name prefix selecting an algorithm parameter instead of a spec field.
PARAM_AXIS_PREFIX = "params."

_SPEC_FIELDS = {f.name for f in dataclasses.fields(SearchSpec)}


@dataclass(frozen=True)
class SweepCell:
    """One point of an expanded sweep: its index, grid coordinates and spec."""

    index: int
    coords: Mapping[str, Any]
    spec: SearchSpec

    def __post_init__(self) -> None:
        object.__setattr__(self, "coords", MappingProxyType(dict(self.coords)))


@dataclass(frozen=True)
class SweepSpec:
    """A frozen, serialisable description of a grid of search scenarios.

    Attributes
    ----------
    base:
        The :class:`SearchSpec` every cell starts from.
    axes:
        Ordered mapping of axis name to the values it sweeps.  Axis names are
        ``SearchSpec`` field names or ``params.<name>`` dotted keys; axis
        order defines the expansion order (first axis varies slowest).
    name:
        Label recorded in exports and progress output.
    repeats:
        Number of repetitions of the whole grid.  ``1`` (default) keeps the
        base seed everywhere; ``k > 1`` adds an outermost ``repeat`` axis
        whose cells get seeds derived from ``base.seed`` and the repeat
        index, so repetitions are independent but reproducible.
    """

    base: SearchSpec = field(default_factory=SearchSpec)
    axes: Mapping[str, Tuple[Any, ...]] = field(default_factory=dict, hash=False)
    name: str = "sweep"
    repeats: int = 1

    def __post_init__(self) -> None:
        normalized: Dict[str, Tuple[Any, ...]] = {}
        for axis, values in dict(self.axes).items():
            if not isinstance(axis, str):
                raise ValueError(f"axis names must be strings, got {axis!r}")
            target = axis[len(PARAM_AXIS_PREFIX):] if axis.startswith(PARAM_AXIS_PREFIX) else None
            if target is not None:
                if not target:
                    raise ValueError("empty param axis name 'params.'")
            elif axis == "params":
                raise ValueError(
                    "sweep over individual algorithm parameters with 'params.<name>' "
                    "axes, not over the whole params mapping"
                )
            elif axis not in _SPEC_FIELDS:
                known = ", ".join(sorted(_SPEC_FIELDS - {"params"}))
                raise ValueError(
                    f"unknown sweep axis {axis!r}; axes name a SearchSpec field "
                    f"({known}) or an algorithm parameter via 'params.<name>'"
                )
            if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
                raise ValueError(f"axis {axis!r} needs a sequence of values, got {values!r}")
            if not values:
                raise ValueError(f"axis {axis!r} has no values")
            normalized[axis] = tuple(values)
        object.__setattr__(self, "axes", MappingProxyType(normalized))
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")
        if self.repeats > 1 and "seed" in normalized:
            raise ValueError("a 'seed' axis and repeats > 1 both drive the seed; use one")
        # Expanding eagerly validates every axis value against SearchSpec's
        # own constraints, so a bad value fails at construction, not mid-sweep.
        for cell in self.cells():
            del cell

    def __len__(self) -> int:
        n = self.repeats
        for values in self.axes.values():
            n *= len(values)
        return n

    def cells(self) -> Iterator[SweepCell]:
        """Expand into :class:`SweepCell`\\ s, deterministically.

        The Cartesian product runs in axis order (first axis slowest); with
        ``repeats > 1`` the repetition is the outermost axis and each
        repetition's seed is ``derive_seed(base.seed, "sweep-repeat", r)``.
        """
        names = list(self.axes)
        index = 0
        for repeat in range(self.repeats):
            for combo in itertools.product(*self.axes.values()):
                coords: Dict[str, Any] = dict(zip(names, combo))
                overrides: Dict[str, Any] = {}
                params: Optional[Dict[str, Any]] = None
                for axis, value in coords.items():
                    if axis.startswith(PARAM_AXIS_PREFIX):
                        if params is None:
                            params = dict(self.base.params)
                        params[axis[len(PARAM_AXIS_PREFIX):]] = value
                    else:
                        overrides[axis] = value
                if params is not None:
                    overrides["params"] = params
                if self.repeats > 1:
                    coords["repeat"] = repeat
                    overrides["seed"] = derive_seed(self.base.seed, "sweep-repeat", repeat)
                yield SweepCell(index=index, coords=coords, spec=self.base.replace(**overrides))
                index += 1

    def specs(self) -> List[SearchSpec]:
        """The expanded per-cell specs, in cell-index order."""
        return [cell.spec for cell in self.cells()]

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form; round-trips via :meth:`from_dict`."""
        return {
            "name": self.name,
            "base": self.base.to_dict(),
            "axes": {axis: list(values) for axis, values in self.axes.items()},
            "repeats": self.repeats,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        known = {"name", "base", "axes", "repeats"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown SweepSpec fields: {', '.join(unknown)}; "
                f"known fields: {', '.join(sorted(known))}"
            )
        base = data.get("base", {})
        if isinstance(base, Mapping):
            base = SearchSpec.from_dict(base)
        return cls(
            base=base,
            axes=data.get("axes", {}),
            name=data.get("name", "sweep"),
            repeats=int(data.get("repeats", 1)),
        )

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("a SweepSpec JSON document must be an object")
        return cls.from_dict(data)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SweepSpec):
            return NotImplemented
        return (
            self.base == other.base
            and dict(self.axes) == dict(other.axes)
            and list(self.axes) == list(other.axes)  # axis order defines cell order
            and self.name == other.name
            and self.repeats == other.repeats
        )

    def __hash__(self) -> int:
        return hash((self.base, tuple(self.axes.items()), self.name, self.repeats))
