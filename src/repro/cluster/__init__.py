"""Simulated heterogeneous compute cluster with MPI-style message passing.

The paper's experiments ran on a physical cluster (20 dual-core 1.86 GHz PCs,
12 dual-core 2.33 GHz PCs and a quad-core server on Gigabit Ethernet) using
Open MPI.  This package provides the equivalent substrate for the
reproduction: a deterministic discrete-event simulator in which

* **nodes** have a frequency and a core count, and share their cores between
  the client processes running on them (proportional sharing — this is what
  makes oversubscribed heterogeneous configurations slow, the effect the
  Last-Minute algorithm exploits);
* **processes** are Python generators exchanging messages through an
  MPI-flavoured interface (``send`` / ``recv`` with tags and ``ANY_SOURCE``);
* **the network** adds per-message latency and bandwidth-proportional delay,
  preserving per-sender/receiver ordering like MPI;
* every message and computation is recorded in a :class:`~repro.cluster.trace.Trace`
  for the communication-pattern analyses of Figures 2–5.

The search work executed by simulated client processes is *real* (the nested
searches actually run and their results are exact); only elapsed time is
simulated, derived from the amount of work done and the node's speed through
the :mod:`repro.timemodel` cost model.
"""

from repro.cluster.events import Event, EventQueue
from repro.cluster.network import NetworkModel
from repro.cluster.node import NodeSpec, Node
from repro.cluster.process import (
    ANY_SOURCE,
    ANY_TAG,
    Message,
    ProcessContext,
    SimProcess,
    Compute,
    Send,
    Recv,
    Sleep,
)
from repro.cluster.simulator import Kernel
from repro.cluster.topology import ClusterSpec, ClientPlacement, paper_cluster, homogeneous_cluster, heterogeneous_cluster
from repro.cluster.trace import Trace, MessageRecord, ComputeRecord

__all__ = [
    "Event",
    "EventQueue",
    "NetworkModel",
    "NodeSpec",
    "Node",
    "ANY_SOURCE",
    "ANY_TAG",
    "Message",
    "ProcessContext",
    "SimProcess",
    "Compute",
    "Send",
    "Recv",
    "Sleep",
    "Kernel",
    "ClusterSpec",
    "ClientPlacement",
    "paper_cluster",
    "homogeneous_cluster",
    "heterogeneous_cluster",
    "Trace",
    "MessageRecord",
    "ComputeRecord",
]
