"""Cluster nodes with proportional-share processors.

A node has a clock frequency and a number of cores.  Any number of simulated
processes may run computations on it concurrently; when more computations are
active than there are cores, each one progresses at ``cores / active`` of the
full speed (proportional sharing, the behaviour of an oversubscribed
multi-core PC running CPU-bound processes under a fair OS scheduler).

This is the mechanism behind Table VI of the paper: in the ``16x4 + 16x2``
configuration, four client processes share a dual-core PC and therefore run at
half speed whenever they are all busy, while clients on the ``x2`` PCs run at
full speed.  The Round-Robin dispatcher keeps feeding the slow clients and
waits for them at every step; the Last-Minute dispatcher hands work to
whichever client frees up first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.events import Event
    from repro.cluster.simulator import Kernel

__all__ = ["NodeSpec", "Node", "RunningComputation"]


@dataclass(frozen=True)
class NodeSpec:
    """Static description of a node.

    Attributes
    ----------
    name:
        Unique node name (e.g. ``"pc-03"`` or ``"server"``).
    freq_ghz:
        Clock frequency in GHz; with the cost model it determines how many
        work units per second a computation running alone on a core performs.
    cores:
        Number of cores; also the maximum number of computations that can
        progress at full speed simultaneously.
    """

    name: str
    freq_ghz: float = 1.86
    cores: int = 2

    def __post_init__(self) -> None:
        if self.freq_ghz <= 0:
            raise ValueError("freq_ghz must be positive")
        if self.cores < 1:
            raise ValueError("cores must be >= 1")


@dataclass
class RunningComputation:
    """Book-keeping for one in-flight computation on a node."""

    pid: str
    remaining_work: float
    started_at: float
    total_work: float
    version: int = 0
    completion_event: Optional["Event"] = None
    on_complete: Optional[Callable[[], None]] = None


class Node:
    """A simulated node executing computations under proportional sharing."""

    def __init__(self, spec: NodeSpec, kernel: "Kernel") -> None:
        self.spec = spec
        self.kernel = kernel
        self._running: Dict[str, RunningComputation] = {}
        self._last_update = 0.0
        #: accumulated (busy_cores * seconds), for utilisation reporting
        self.busy_core_seconds = 0.0

    # ------------------------------------------------------------------ #
    # Speed model
    # ------------------------------------------------------------------ #
    def units_per_second(self) -> float:
        """Per-computation speed in work units / second, at the current load."""
        active = len(self._running)
        if active == 0:
            return 0.0
        share = min(1.0, self.spec.cores / active)
        return self.kernel.cost_model.units_per_second(self.spec.freq_ghz) * share

    def active_computations(self) -> int:
        """Number of in-flight computations on this node."""
        return len(self._running)

    # ------------------------------------------------------------------ #
    # Internal time integration
    # ------------------------------------------------------------------ #
    def _advance(self) -> None:
        """Integrate progress of every running computation up to ``kernel.now``."""
        now = self.kernel.now
        elapsed = now - self._last_update
        if elapsed > 0 and self._running:
            speed = self.units_per_second()
            for comp in self._running.values():
                comp.remaining_work = max(0.0, comp.remaining_work - speed * elapsed)
            self.busy_core_seconds += elapsed * min(len(self._running), self.spec.cores)
        self._last_update = now

    def _reschedule_all(self) -> None:
        """Recompute and (re)schedule the completion event of every computation."""
        speed = self.units_per_second()
        for comp in self._running.values():
            if comp.completion_event is not None:
                comp.completion_event.cancel()
            comp.version += 1
            if speed <= 0.0:  # pragma: no cover - defensive (speed>0 when running)
                continue
            finish = self.kernel.now + comp.remaining_work / speed
            comp.completion_event = self.kernel.schedule_at(
                finish, self._on_completion, comp.pid, comp.version
            )

    # ------------------------------------------------------------------ #
    # Public interface used by the kernel
    # ------------------------------------------------------------------ #
    def start_computation(
        self, pid: str, work_units: float, on_complete: Callable[[], None]
    ) -> None:
        """Begin a computation of ``work_units`` for process ``pid``.

        ``on_complete`` is invoked (through the event queue) when it finishes.
        A process may only run one computation at a time.
        """
        if pid in self._running:
            raise RuntimeError(f"process {pid} already has a computation running")
        if work_units < 0:
            raise ValueError("work_units must be non-negative")
        self._advance()
        self._running[pid] = RunningComputation(
            pid=pid,
            remaining_work=float(work_units),
            started_at=self.kernel.now,
            total_work=float(work_units),
            on_complete=on_complete,
        )
        self._reschedule_all()

    def _on_completion(self, pid: str, version: int) -> None:
        comp = self._running.get(pid)
        if comp is None or comp.version != version:
            return  # stale event from before a reschedule
        self._advance()
        if comp.remaining_work > 1e-9:
            # Numerical drift: reschedule the remainder instead of finishing early.
            self._reschedule_all()
            return
        del self._running[pid]
        self.kernel.trace.record_compute(
            pid=pid,
            node=self.spec.name,
            start=comp.started_at,
            end=self.kernel.now,
            work=comp.total_work,
        )
        # Remaining computations speed up now that a slot freed: reschedule them.
        self._reschedule_all()
        if comp.on_complete is not None:
            comp.on_complete()

    def utilisation(self, horizon: Optional[float] = None) -> float:
        """Fraction of core capacity used from time 0 to ``horizon`` (default: now)."""
        self._advance()
        end = self.kernel.now if horizon is None else horizon
        if end <= 0:
            return 0.0
        return self.busy_core_seconds / (end * self.spec.cores)
