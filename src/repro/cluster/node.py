"""Cluster nodes with proportional-share processors.

A node has a clock frequency and a number of cores.  Any number of simulated
processes may run computations on it concurrently; when more computations are
active than there are cores, each one progresses at ``cores / active`` of the
full speed (proportional sharing, the behaviour of an oversubscribed
multi-core PC running CPU-bound processes under a fair OS scheduler).

This is the mechanism behind Table VI of the paper: in the ``16x4 + 16x2``
configuration, four client processes share a dual-core PC and therefore run at
half speed whenever they are all busy, while clients on the ``x2`` PCs run at
full speed.  The Round-Robin dispatcher keeps feeding the slow clients and
waits for them at every step; the Last-Minute dispatcher hands work to
whichever client frees up first.

Scheduling uses **virtual work time**: the node integrates a cumulative
per-computation work total ``W(t)`` (every running computation receives the
same share under proportional sharing, so one integral serves them all).  A
computation of ``w`` units started when the integral was ``W0`` completes
exactly when ``W`` reaches ``W0 + w`` — a constant *work target* fixed at
start time.  Completion order is therefore the order of the targets, so only
the *single earliest* completion per node needs a scheduled kernel event; a
load change (arrival or completion) re-aims that one event in O(log C)
instead of cancelling and re-pushing an event per running computation
(O(C log C) heap churn per wave, O(C^2) per arrival/completion storm — the
regime that made high-latency runs CPU-pathological).  Because targets are
fixed rather than repeatedly decremented, there is no floating-point drift
to re-spin on: when the completion event fires, the integral is snapped to
the exact target.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.events import Event
    from repro.cluster.simulator import Kernel

__all__ = ["NodeSpec", "Node", "RunningComputation"]


@dataclass(frozen=True)
class NodeSpec:
    """Static description of a node.

    Attributes
    ----------
    name:
        Unique node name (e.g. ``"pc-03"`` or ``"server"``).
    freq_ghz:
        Clock frequency in GHz; with the cost model it determines how many
        work units per second a computation running alone on a core performs.
    cores:
        Number of cores; also the maximum number of computations that can
        progress at full speed simultaneously.
    """

    name: str
    freq_ghz: float = 1.86
    cores: int = 2

    def __post_init__(self) -> None:
        if self.freq_ghz <= 0:
            raise ValueError("freq_ghz must be positive")
        if self.cores < 1:
            raise ValueError("cores must be >= 1")


@dataclass
class RunningComputation:
    """Book-keeping for one in-flight computation on a node.

    ``target`` is the value of the node's work integral at which this
    computation completes (``integral at start + total_work``); ``seq`` is
    the node-local start order, breaking ties between computations whose
    targets coincide so simultaneous completions stay deterministic.
    """

    pid: str
    started_at: float
    total_work: float
    target: float
    seq: int
    on_complete: Optional[Callable[[], None]] = None


class Node:
    """A simulated node executing computations under proportional sharing."""

    def __init__(self, spec: NodeSpec, kernel: "Kernel") -> None:
        self.spec = spec
        self.kernel = kernel
        self._running: Dict[str, RunningComputation] = {}
        #: min-heap of (target, seq, pid): the next completion is the top.
        self._completions: List[Tuple[float, int, str]] = []
        #: cumulative per-computation work integral W(t)
        self._work = 0.0
        self._last_update = 0.0
        self._seq = 0
        self._next_event: Optional["Event"] = None
        self._next_version = 0
        #: accumulated (busy_cores * seconds), for utilisation reporting
        self.busy_core_seconds = 0.0

    # ------------------------------------------------------------------ #
    # Speed model
    # ------------------------------------------------------------------ #
    def units_per_second(self) -> float:
        """Per-computation speed in work units / second, at the current load."""
        active = len(self._running)
        if active == 0:
            return 0.0
        share = min(1.0, self.spec.cores / active)
        return self.kernel.cost_model.units_per_second(self.spec.freq_ghz) * share

    def active_computations(self) -> int:
        """Number of in-flight computations on this node."""
        return len(self._running)

    # ------------------------------------------------------------------ #
    # Internal time integration
    # ------------------------------------------------------------------ #
    def _advance(self) -> None:
        """Integrate the shared work total up to ``kernel.now``."""
        now = self.kernel.now
        elapsed = now - self._last_update
        if elapsed > 0 and self._running:
            self._work += self.units_per_second() * elapsed
            self.busy_core_seconds += elapsed * min(len(self._running), self.spec.cores)
        self._last_update = now

    def _schedule_next(self) -> None:
        """(Re)aim the node's single completion event at the earliest target."""
        if self._next_event is not None:
            self._next_event.cancel()
            self._next_event = None
        self._next_version += 1
        if not self._completions:
            return
        speed = self.units_per_second()
        if speed <= 0.0:  # pragma: no cover - defensive (speed>0 when running)
            return
        target = self._completions[0][0]
        remaining = max(0.0, target - self._work)
        finish = self.kernel.now + remaining / speed
        self._next_event = self.kernel.schedule_at(finish, self._on_completion, self._next_version)

    # ------------------------------------------------------------------ #
    # Public interface used by the kernel
    # ------------------------------------------------------------------ #
    def start_computation(
        self, pid: str, work_units: float, on_complete: Callable[[], None]
    ) -> None:
        """Begin a computation of ``work_units`` for process ``pid``.

        ``on_complete`` is invoked (through the event queue) when it finishes.
        A process may only run one computation at a time.
        """
        if pid in self._running:
            raise RuntimeError(f"process {pid} already has a computation running")
        if work_units < 0:
            raise ValueError("work_units must be non-negative")
        self._advance()
        seq = self._seq
        self._seq += 1
        comp = RunningComputation(
            pid=pid,
            started_at=self.kernel.now,
            total_work=float(work_units),
            target=self._work + float(work_units),
            seq=seq,
            on_complete=on_complete,
        )
        self._running[pid] = comp
        heapq.heappush(self._completions, (comp.target, seq, pid))
        self._schedule_next()

    def _on_completion(self, version: int) -> None:
        if version != self._next_version:  # pragma: no cover - defensive
            return  # stale event from before a load change
        self._next_event = None
        self._advance()
        target, _seq, pid = heapq.heappop(self._completions)
        comp = self._running.pop(pid)
        # Snap the integral to the exact target: completions hit their work
        # totals precisely, so error never accumulates across load changes
        # and no drift-respin path is needed.
        if self._work < target:
            self._work = target
        self.kernel.trace.record_compute(
            pid=pid,
            node=self.spec.name,
            start=comp.started_at,
            end=self.kernel.now,
            work=comp.total_work,
        )
        # Remaining computations speed up now that a slot freed: re-aim the
        # (single) completion event before resuming the finished process, so
        # simultaneous completions still fire before its resumption.
        self._schedule_next()
        if comp.on_complete is not None:
            comp.on_complete()

    def utilisation(self, horizon: Optional[float] = None) -> float:
        """Fraction of core capacity used from time 0 to ``horizon`` (default: now)."""
        self._advance()
        end = self.kernel.now if horizon is None else horizon
        if end <= 0:
            return 0.0
        return self.busy_core_seconds / (end * self.spec.cores)
