"""Event queue of the discrete-event simulator.

Events are ordered by simulated time with a monotonically increasing sequence
number as a tie-breaker, which makes the simulation fully deterministic: two
events scheduled for the same instant fire in the order they were scheduled.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    The dataclass ordering uses ``(time, seq)`` only; the callback and its
    arguments are excluded from comparisons.
    """

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: Tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback unless the event has been cancelled."""
        if not self.cancelled:
            self.callback(*self.args)


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < 0:
            raise ValueError("cannot schedule an event at a negative time")
        event = Event(time=float(time), seq=next(self._counter), callback=callback, args=args)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event (or ``None``)."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
