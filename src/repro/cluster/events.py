"""Event queue of the discrete-event simulator.

Events are ordered by simulated time with a monotonically increasing sequence
number as a tie-breaker, which makes the simulation fully deterministic: two
events scheduled for the same instant fire in the order they were scheduled.

Cancelled events are *garbage*: they stay in the heap until popped, but the
queue tracks how many there are so that ``len(queue)`` / ``bool(queue)``
report live events only (a ``Kernel.run`` loop or ``max_events`` budget never
sees phantom work), and the heap is compacted in place whenever garbage
outnumbers the live entries.  The queue also keeps lifetime counters (pushes,
cancellations, compactions, peak size) that feed the kernel's
:class:`~repro.cluster.simulator.KernelStats` diagnostics.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple

__all__ = ["Event", "EventQueue"]

#: Compaction is skipped below this many cancelled entries: rebuilding a tiny
#: heap costs more bookkeeping than the garbage it would reclaim.
_COMPACT_MIN_GARBAGE = 64


@dataclass(order=True)
class Event:
    """A scheduled callback.

    The dataclass ordering uses ``(time, seq)`` only; the callback and its
    arguments are excluded from comparisons.
    """

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: Tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    #: The queue currently holding this event (None once popped or when the
    #: event was built outside a queue); lets cancel() report its garbage.
    queue: Optional["EventQueue"] = field(compare=False, default=None, repr=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.queue is not None:
            self.queue._note_cancelled()

    def fire(self) -> None:
        """Invoke the callback unless the event has been cancelled."""
        if not self.cancelled:
            self.callback(*self.args)


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._garbage = 0  # cancelled events still sitting in the heap
        # Lifetime diagnostics (never reset; see KernelStats).
        self.pushed = 0
        self.cancelled_total = 0
        self.compactions = 0
        self.peak_size = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events."""
        return len(self._heap) - self._garbage

    def __bool__(self) -> bool:
        return len(self._heap) > self._garbage

    def push(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < 0:
            raise ValueError("cannot schedule an event at a negative time")
        event = Event(time=float(time), seq=next(self._counter), callback=callback, args=args)
        event.queue = self
        heapq.heappush(self._heap, event)
        self.pushed += 1
        if len(self._heap) > self.peak_size:
            self.peak_size = len(self._heap)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event (or ``None``)."""
        while self._heap:
            event = heapq.heappop(self._heap)
            event.queue = None
            if event.cancelled:
                self._garbage -= 1
                continue
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap).queue = None
            self._garbage -= 1
        return self._heap[0].time if self._heap else None

    # ------------------------------------------------------------------ #
    # Garbage accounting
    # ------------------------------------------------------------------ #
    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` while the event still sits in the heap."""
        self._garbage += 1
        self.cancelled_total += 1
        if self._garbage >= _COMPACT_MIN_GARBAGE and self._garbage * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (ordering is a total order
        on unique ``(time, seq)`` pairs, so compaction cannot perturb event
        order — determinism survives)."""
        for event in self._heap:
            if event.cancelled:
                event.queue = None
        self._heap = [event for event in self._heap if not event.cancelled]
        heapq.heapify(self._heap)
        self._garbage = 0
        self.compactions += 1
