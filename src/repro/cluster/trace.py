"""Execution traces: every message and every computation of a simulated run.

The paper's Figures 2–5 describe the communication patterns of the
Round-Robin and Last-Minute algorithms (which process talks to which, and
which communications overlap in time).  Rather than drawing diagrams, the
reproduction records a full trace of the simulated run and provides queries
that verify and quantify those patterns — see
:mod:`repro.analysis.commpattern` for the figure-level analysis built on top
of these records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.simulator import KernelStats

__all__ = ["MessageRecord", "ComputeRecord", "Trace"]


@dataclass(frozen=True)
class MessageRecord:
    """One point-to-point message."""

    source: str
    dest: str
    tag: int
    payload_type: str
    size_bytes: float
    sent_at: float
    received_at: float
    delivered: bool = True


@dataclass(frozen=True)
class ComputeRecord:
    """One completed computation on a node."""

    pid: str
    node: str
    start: float
    end: float
    work: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Trace:
    """All records of one simulated run."""

    messages: List[MessageRecord] = field(default_factory=list)
    computes: List[ComputeRecord] = field(default_factory=list)
    enabled: bool = True
    #: Kernel diagnostics of the run that produced this trace; filled by
    #: :meth:`repro.cluster.simulator.Kernel.run` (None for hand-built traces).
    kernel_stats: Optional["KernelStats"] = None

    # ------------------------------------------------------------------ #
    # Recording (called by the kernel)
    # ------------------------------------------------------------------ #
    def record_message(
        self,
        source: str,
        dest: str,
        tag: int,
        payload: object,
        size_bytes: float,
        sent_at: float,
        received_at: float,
    ) -> None:
        if not self.enabled:
            return
        self.messages.append(
            MessageRecord(
                source=source,
                dest=dest,
                tag=tag,
                payload_type=type(payload).__name__,
                size_bytes=size_bytes,
                sent_at=sent_at,
                received_at=received_at,
            )
        )

    def record_compute(self, pid: str, node: str, start: float, end: float, work: float) -> None:
        if not self.enabled:
            return
        self.computes.append(ComputeRecord(pid=pid, node=node, start=start, end=end, work=work))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def messages_between(self, source_prefix: str, dest_prefix: str) -> List[MessageRecord]:
        """Messages whose source / destination names start with the given prefixes."""
        return [
            m
            for m in self.messages
            if m.source.startswith(source_prefix) and m.dest.startswith(dest_prefix)
        ]

    def messages_by_type(self, payload_type: str) -> List[MessageRecord]:
        """Messages carrying a payload of the given class name."""
        return [m for m in self.messages if m.payload_type == payload_type]

    def computes_by_process(self, pid_prefix: str) -> List[ComputeRecord]:
        """Computations of every process whose name starts with ``pid_prefix``."""
        return [c for c in self.computes if c.pid.startswith(pid_prefix)]

    def total_work(self, pid_prefix: str = "") -> float:
        """Total work units executed by matching processes."""
        return sum(c.work for c in self.computes if c.pid.startswith(pid_prefix))

    def busy_time(self, pid_prefix: str = "") -> float:
        """Total busy seconds of matching processes."""
        return sum(c.duration for c in self.computes if c.pid.startswith(pid_prefix))

    def makespan(self) -> float:
        """Time of the last recorded activity."""
        last = 0.0
        if self.computes:
            last = max(last, max(c.end for c in self.computes))
        if self.messages:
            last = max(last, max(m.received_at for m in self.messages))
        return last

    def max_concurrency(self, pid_prefix: str = "client") -> int:
        """Maximum number of matching computations overlapping in time.

        This quantifies the parallel overlap of Figures 3 and 5(e/e'):
        with ``n`` clients and enough outstanding jobs, up to ``n`` client
        computations run concurrently.
        """
        points: List[Tuple[float, int]] = []
        for c in self.computes:
            if not c.pid.startswith(pid_prefix):
                continue
            points.append((c.start, +1))
            points.append((c.end, -1))
        # Ends sort before starts at the same instant so that back-to-back
        # computations on the same client are not counted as overlapping.
        points.sort(key=lambda p: (p[0], p[1]))
        best = current = 0
        for _, delta in points:
            current += delta
            best = max(best, current)
        return best

    def mean_concurrency(self, pid_prefix: str = "client") -> float:
        """Time-averaged number of matching computations in flight."""
        horizon = self.makespan()
        if horizon <= 0:
            return 0.0
        return self.busy_time(pid_prefix) / horizon

    def communication_edges(self) -> Dict[Tuple[str, str], int]:
        """Message counts per (source, destination) pair."""
        edges: Dict[Tuple[str, str], int] = {}
        for m in self.messages:
            key = (m.source, m.dest)
            edges[key] = edges.get(key, 0) + 1
        return edges

    def clear(self) -> None:
        """Drop every record (reuse the trace object for another run)."""
        self.messages.clear()
        self.computes.clear()
