"""Simulated processes and their system calls.

A simulated process is a Python generator that *yields* syscall objects
(:class:`Send`, :class:`Recv`, :class:`Compute`, :class:`Sleep`) and receives
the syscall's result when it is resumed — the classic coroutine style of
discrete-event frameworks.  The :class:`ProcessContext` passed to each process
constructs the syscalls and exposes the process' identity and the current
simulated time.

The messaging interface follows the subset of MPI the paper's pseudo-code
uses: point-to-point ``send`` / ``recv`` with integer tags, a wildcard source
(``ANY_SOURCE``) and a wildcard tag (``ANY_TAG``).  Receives return a
:class:`Message` carrying the sender's name, the tag and the payload, which is
what "receive node from any node" in the Last-Minute dispatcher pseudo-code
needs.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Deque, Dict, Generator, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.simulator import Kernel

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Message",
    "Mailbox",
    "Syscall",
    "Send",
    "Recv",
    "Compute",
    "Sleep",
    "ProcessState",
    "SimProcess",
    "ProcessContext",
]


class _Wildcard:
    """Sentinel for wildcard source / tag matching."""

    def __init__(self, label: str) -> None:
        self._label = label

    def __repr__(self) -> str:
        return self._label


ANY_SOURCE = _Wildcard("ANY_SOURCE")
ANY_TAG = _Wildcard("ANY_TAG")


@dataclass(frozen=True)
class Message:
    """A delivered message: who sent it, with which tag, carrying what."""

    source: str
    tag: int
    payload: Any
    sent_at: float
    received_at: float


class Syscall:
    """Base class of everything a simulated process may ``yield``."""


@dataclass(frozen=True)
class Send(Syscall):
    """Send ``payload`` to the process named ``dest`` (non-blocking, buffered)."""

    dest: str
    payload: Any
    tag: int = 0
    size_bytes: float = 256.0


@dataclass(frozen=True)
class Recv(Syscall):
    """Block until a message matching ``source`` and ``tag`` is available."""

    source: Any = ANY_SOURCE
    tag: Any = ANY_TAG


@dataclass(frozen=True)
class Compute(Syscall):
    """Perform ``work_units`` of computation on the process' node."""

    work_units: float


@dataclass(frozen=True)
class Sleep(Syscall):
    """Advance simulated time by ``seconds`` without using the processor."""

    seconds: float


class Mailbox:
    """Buffered messages of one process, indexed by tag.

    Receives almost always name a tag (the root/median/client protocol keeps
    its planes on distinct tags), so messages are bucketed into per-tag FIFO
    queues: a tag-filtered receive pops the head of one bucket instead of
    scanning every buffered message.  A global enqueue sequence per message
    preserves the exact matching semantics of a single FIFO list — whatever
    the filter, the *earliest delivered* matching message wins — so wildcard
    receives (``ANY_TAG``) compare bucket heads and source-filtered receives
    scan only their tag's bucket.
    """

    __slots__ = ("_by_tag", "_seq", "_size")

    def __init__(self) -> None:
        self._by_tag: Dict[Any, Deque[Tuple[int, Message]]] = {}
        self._seq = 0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def append(self, message: Message) -> None:
        """Buffer a delivered message (called by the kernel)."""
        bucket = self._by_tag.get(message.tag)
        if bucket is None:
            bucket = self._by_tag[message.tag] = deque()
        bucket.append((self._seq, message))
        self._seq += 1
        self._size += 1

    def pop_match(self, recv: "Recv") -> Optional["Message"]:
        """Remove and return the earliest message matching ``recv`` (or None)."""
        if recv.tag is ANY_TAG:
            buckets = self._by_tag.values()
        else:
            bucket = self._by_tag.get(recv.tag)
            buckets = (bucket,) if bucket is not None else ()
        best_bucket: Optional[Deque[Tuple[int, Message]]] = None
        best_index = 0
        best_seq = -1
        for bucket in buckets:
            if not bucket:
                continue
            if recv.source is ANY_SOURCE:
                index = 0
            else:
                index = next(
                    (i for i, (_, m) in enumerate(bucket) if m.source == recv.source), -1
                )
                if index < 0:
                    continue
            seq = bucket[index][0]
            if best_bucket is None or seq < best_seq:
                best_bucket, best_index, best_seq = bucket, index, seq
        if best_bucket is None:
            return None
        if best_index == 0:
            message = best_bucket.popleft()[1]
        else:
            message = best_bucket[best_index][1]
            del best_bucket[best_index]
        self._size -= 1
        return message


class ProcessState(enum.Enum):
    """Lifecycle of a simulated process."""

    READY = "ready"
    RUNNING = "running"
    BLOCKED_RECV = "blocked_recv"
    COMPUTING = "computing"
    SLEEPING = "sleeping"
    FINISHED = "finished"
    FAILED = "failed"


@dataclass
class SimProcess:
    """Kernel-side record of one simulated process."""

    name: str
    node_name: str
    generator: Generator[Syscall, Any, Any]
    state: ProcessState = ProcessState.READY
    pending_recv: Optional[Recv] = None
    mailbox: Mailbox = field(default_factory=Mailbox)
    return_value: Any = None
    exception: Optional[BaseException] = None
    started_at: float = 0.0
    finished_at: Optional[float] = None

    def matches(self, message: Message, recv: Recv) -> bool:
        """Does ``message`` satisfy the pending ``recv`` specification?"""
        if recv.source is not ANY_SOURCE and message.source != recv.source:
            return False
        if recv.tag is not ANY_TAG and message.tag != recv.tag:
            return False
        return True


class ProcessContext:
    """The handle a simulated process uses to interact with the kernel."""

    def __init__(self, kernel: "Kernel", name: str, node_name: str) -> None:
        self._kernel = kernel
        self.name = name
        self.node_name = node_name

    # -- syscall constructors ------------------------------------------- #
    def send(self, dest: str, payload: Any, tag: int = 0, size_bytes: float = 256.0) -> Send:
        """Send ``payload`` to ``dest``; yield the returned object."""
        return Send(dest=dest, payload=payload, tag=tag, size_bytes=size_bytes)

    def recv(self, source: Any = ANY_SOURCE, tag: Any = ANY_TAG) -> Recv:
        """Receive a matching message; yield the returned object."""
        return Recv(source=source, tag=tag)

    def compute(self, work_units: float) -> Compute:
        """Perform ``work_units`` of computation; yield the returned object."""
        return Compute(work_units=float(work_units))

    def sleep(self, seconds: float) -> Sleep:
        """Idle for ``seconds`` of simulated time; yield the returned object."""
        return Sleep(seconds=float(seconds))

    # -- introspection --------------------------------------------------- #
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._kernel.now

    def peers(self) -> list:
        """Names of every process registered in the simulation."""
        return list(self._kernel.process_names())
