"""Network model: per-message latency and bandwidth-proportional delay.

The paper's cluster uses Gigabit Ethernet with Open MPI; the messages
exchanged by the parallel NMCS algorithms are tiny (a position and a score),
so communication time is dominated by latency.  The default parameters model
that regime: 50 µs of latency per message, 1 Gbit/s of bandwidth and a small
sender-side overhead representing the MPI send call.

Message delivery preserves ordering per (sender, receiver) pair — a later
message never arrives before an earlier one — matching MPI's non-overtaking
guarantee, which the role processes of :mod:`repro.parallel` rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NetworkModel"]


@dataclass(frozen=True)
class NetworkModel:
    """Simple latency + bandwidth network model.

    Attributes
    ----------
    latency_s:
        One-way latency added to every message, in seconds.
    bandwidth_bytes_per_s:
        Link bandwidth; the payload size divided by it is added to the delay.
    send_overhead_s:
        Time the *sender* spends issuing the send (it cannot compute during
        that time).  Models the cost of the MPI send call.
    """

    latency_s: float = 50e-6
    bandwidth_bytes_per_s: float = 125_000_000.0  # 1 Gbit/s
    send_overhead_s: float = 5e-6

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.send_overhead_s < 0:
            raise ValueError("latencies must be non-negative")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")

    def transfer_delay(self, size_bytes: float) -> float:
        """One-way delivery delay for a message of ``size_bytes``."""
        if size_bytes < 0:
            raise ValueError("message size must be non-negative")
        return self.latency_s + float(size_bytes) / self.bandwidth_bytes_per_s

    @classmethod
    def instantaneous(cls) -> "NetworkModel":
        """A zero-cost network (useful to isolate scheduling effects in tests)."""
        return cls(latency_s=0.0, bandwidth_bytes_per_s=float("inf"), send_overhead_s=0.0)

    @classmethod
    def slow(cls, latency_ms: float = 1.0) -> "NetworkModel":
        """A deliberately slow network for the latency-sensitivity ablation."""
        return cls(latency_s=latency_ms * 1e-3)
