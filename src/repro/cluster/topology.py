"""Cluster topologies: node specifications and client placements.

Section V of the paper describes the physical cluster:

    "Our cluster is composed of 20 1.86 GHz dual core PCs, 12 2.33 GHz dual
     core PCs and one quad core server connected with a Gigabit network. [...]
     Each node runs two client processes. [...] The server runs the root
     process as well as all the median processes and the dispatcher."

and Table VI uses heterogeneous repartitions "16x4+16x2" (16 PCs running 4
clients and 16 PCs running 2 clients) and "8x4+8x2".

A :class:`ClusterSpec` lists the nodes and where each client process runs;
the root, the median processes and the dispatcher are always placed on the
server node, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.node import NodeSpec

__all__ = [
    "ClientPlacement",
    "ClusterSpec",
    "paper_cluster",
    "homogeneous_cluster",
    "heterogeneous_cluster",
    "single_machine",
]

#: Frequencies of the two PC generations in the authors' cluster (GHz).
SLOW_PC_GHZ = 1.86
FAST_PC_GHZ = 2.33
SERVER_GHZ = 2.33
SERVER_CORES = 4


@dataclass(frozen=True)
class ClientPlacement:
    """One client process and the node it runs on."""

    client_name: str
    node_name: str


@dataclass
class ClusterSpec:
    """A full cluster description: nodes, client placement and the server node."""

    nodes: List[NodeSpec]
    clients: List[ClientPlacement]
    server_node: str
    description: str = ""

    def __post_init__(self) -> None:
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise ValueError("node names must be unique")
        if self.server_node not in names:
            raise ValueError(f"server node {self.server_node!r} is not in the node list")
        known = set(names)
        for placement in self.clients:
            if placement.node_name not in known:
                raise ValueError(
                    f"client {placement.client_name} placed on unknown node {placement.node_name}"
                )
        client_names = [c.client_name for c in self.clients]
        if len(set(client_names)) != len(client_names):
            raise ValueError("client names must be unique")

    @property
    def n_clients(self) -> int:
        return len(self.clients)

    def node(self, name: str) -> NodeSpec:
        """The :class:`NodeSpec` with the given name."""
        for spec in self.nodes:
            if spec.name == name:
                return spec
        raise KeyError(name)

    def client_names(self) -> List[str]:
        """Names of every client process, in placement order."""
        return [c.client_name for c in self.clients]

    def mean_frequency(self) -> float:
        """Mean node frequency weighted by client count (paper's ``r`` ratio)."""
        if not self.clients:
            return 0.0
        total = sum(self.node(c.node_name).freq_ghz for c in self.clients)
        return total / len(self.clients)

    def frequency_ratio(self, reference_ghz: float = SLOW_PC_GHZ) -> float:
        """The paper's correction ratio ``r = mean client frequency / reference``.

        Section V: with 20 PCs at 1.86 GHz and 12 at 2.33 GHz,
        ``r = ((20*1.86 + 12*2.33) / 32) / 1.86 = 1.09``.
        """
        return self.mean_frequency() / reference_ghz


def _server_node() -> NodeSpec:
    return NodeSpec(name="server", freq_ghz=SERVER_GHZ, cores=SERVER_CORES)


def homogeneous_cluster(
    n_clients: int,
    freq_ghz: float = SLOW_PC_GHZ,
    cores_per_node: int = 2,
    clients_per_node: int = 2,
    description: Optional[str] = None,
) -> ClusterSpec:
    """A cluster of identical dual-core PCs running ``clients_per_node`` clients each.

    This is the configuration of the 1–32 client rows of Tables II–V (those
    runs only used the 1.86 GHz PCs, as the paper notes for the 32-client row).
    """
    if n_clients < 1:
        raise ValueError("n_clients must be >= 1")
    if clients_per_node < 1 or cores_per_node < 1:
        raise ValueError("clients_per_node and cores_per_node must be >= 1")
    nodes = [_server_node()]
    clients: List[ClientPlacement] = []
    n_nodes = (n_clients + clients_per_node - 1) // clients_per_node
    client_index = 0
    for i in range(n_nodes):
        name = f"pc-{i:02d}"
        nodes.append(NodeSpec(name=name, freq_ghz=freq_ghz, cores=cores_per_node))
        for _ in range(clients_per_node):
            if client_index >= n_clients:
                break
            clients.append(ClientPlacement(f"client-{client_index:03d}", name))
            client_index += 1
    return ClusterSpec(
        nodes=nodes,
        clients=clients,
        server_node="server",
        description=description
        or f"homogeneous: {n_clients} clients on {n_nodes} x {freq_ghz} GHz PCs",
    )


def paper_cluster(n_clients: int = 64) -> ClusterSpec:
    """The authors' 64-client cluster: 20 slow + 12 fast dual-core PCs.

    With fewer than 64 clients requested, slow (1.86 GHz) PCs are used first,
    matching the paper's note that the 32-client results "are obtained using
    only 1.86 GHz PCs".
    """
    if not 1 <= n_clients <= 64:
        raise ValueError("the paper's cluster hosts between 1 and 64 clients")
    nodes = [_server_node()]
    for i in range(20):
        nodes.append(NodeSpec(name=f"slow-{i:02d}", freq_ghz=SLOW_PC_GHZ, cores=2))
    for i in range(12):
        nodes.append(NodeSpec(name=f"fast-{i:02d}", freq_ghz=FAST_PC_GHZ, cores=2))
    pc_order = [f"slow-{i:02d}" for i in range(20)] + [f"fast-{i:02d}" for i in range(12)]
    clients: List[ClientPlacement] = []
    for c in range(n_clients):
        node_name = pc_order[(c // 2) % len(pc_order)]
        clients.append(ClientPlacement(f"client-{c:03d}", node_name))
    return ClusterSpec(
        nodes=nodes,
        clients=clients,
        server_node="server",
        description=f"paper cluster with {n_clients} clients (20x1.86 + 12x2.33 dual-core)",
    )


def heterogeneous_cluster(
    n_oversubscribed: int,
    n_regular: int,
    clients_on_oversubscribed: int = 4,
    clients_on_regular: int = 2,
    freq_ghz: float = SLOW_PC_GHZ,
    cores_per_node: int = 2,
) -> ClusterSpec:
    """Table VI style heterogeneous repartitions (e.g. ``16x4+16x2``).

    ``n_oversubscribed`` dual-core PCs run ``clients_on_oversubscribed``
    clients each (they are CPU-oversubscribed and therefore slow per client),
    and ``n_regular`` PCs run ``clients_on_regular`` clients each.
    """
    if n_oversubscribed < 0 or n_regular < 0 or n_oversubscribed + n_regular == 0:
        raise ValueError("need at least one PC")
    nodes = [_server_node()]
    clients: List[ClientPlacement] = []
    client_index = 0
    for i in range(n_oversubscribed):
        name = f"over-{i:02d}"
        nodes.append(NodeSpec(name=name, freq_ghz=freq_ghz, cores=cores_per_node))
        for _ in range(clients_on_oversubscribed):
            clients.append(ClientPlacement(f"client-{client_index:03d}", name))
            client_index += 1
    for i in range(n_regular):
        name = f"reg-{i:02d}"
        nodes.append(NodeSpec(name=name, freq_ghz=freq_ghz, cores=cores_per_node))
        for _ in range(clients_on_regular):
            clients.append(ClientPlacement(f"client-{client_index:03d}", name))
            client_index += 1
    return ClusterSpec(
        nodes=nodes,
        clients=clients,
        server_node="server",
        description=(
            f"heterogeneous: {n_oversubscribed}x{clients_on_oversubscribed}"
            f"+{n_regular}x{clients_on_regular} clients"
        ),
    )


def single_machine(n_clients: int = 4, freq_ghz: float = 2.33, cores: int = 4) -> ClusterSpec:
    """Everything (root, medians, dispatcher, clients) on one multi-core host.

    Used by tests and by the comparison against the real ``multiprocessing``
    executor, which also runs on a single host.
    """
    node = NodeSpec(name="host", freq_ghz=freq_ghz, cores=cores)
    clients = [ClientPlacement(f"client-{i:03d}", "host") for i in range(n_clients)]
    return ClusterSpec(
        nodes=[node],
        clients=clients,
        server_node="host",
        description=f"single machine with {n_clients} clients on {cores} cores",
    )
