"""The discrete-event kernel tying processes, nodes and the network together.

The :class:`Kernel` owns the event queue, the simulated clock, the registered
nodes and processes, the network model, the cost model and the execution
trace.  Simulated processes are generators yielding syscalls (see
:mod:`repro.cluster.process`); the kernel interprets each syscall, schedules
the corresponding events and resumes the process with the syscall's result.

Determinism: all ties are broken by scheduling order (see
:mod:`repro.cluster.events`), there is no randomness anywhere in the kernel,
and message delivery preserves per-(sender, receiver) ordering.  Two runs of
the same workload on the same topology produce bit-identical traces.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional

from repro.cluster.events import Event, EventQueue
from repro.cluster.network import NetworkModel
from repro.cluster.node import Node, NodeSpec
from repro.cluster.process import (
    ANY_SOURCE,
    ANY_TAG,
    Compute,
    Message,
    ProcessContext,
    ProcessState,
    Recv,
    Send,
    SimProcess,
    Sleep,
    Syscall,
)
from repro.cluster.trace import Trace
from repro.obs import enabled as _obs_enabled
from repro.obs import metrics as _obs_metrics
from repro.timemodel.cost import CostModel

__all__ = ["Kernel", "KernelStats", "SimulationError"]

# Telemetry (no-ops unless repro.obs is enabled).  Counters accumulate the
# per-``Kernel.run`` deltas; the gauge tracks the latest run's event rate.
_KERNEL_EVENTS = _obs_metrics.counter(
    "repro_kernel_events_fired_total", "events fired by Kernel.run calls"
)
_KERNEL_SIM_SECONDS = _obs_metrics.counter(
    "repro_kernel_simulated_seconds_total", "simulated seconds advanced by Kernel.run calls"
)
_KERNEL_WALL_SECONDS = _obs_metrics.counter(
    "repro_kernel_wall_seconds_total", "wall-clock seconds spent inside Kernel.run"
)
_KERNEL_EVENT_RATE = _obs_metrics.gauge(
    "repro_kernel_events_per_simulated_second",
    "events fired per simulated second in the most recent Kernel.run",
)


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state (e.g. deadlock)."""


@dataclass
class KernelStats:
    """Diagnostics of one kernel's event loop (cumulative across ``run`` calls).

    ``events_cancelled`` counts events that were cancelled before firing
    (completion re-aims on node load changes, mostly); ``peak_queue_size``
    is the largest the event heap ever grew (cancelled entries included —
    it measures memory, not live work); ``compactions`` counts in-place
    heap rebuilds that reclaimed cancelled entries.  ``wall_seconds`` is
    real time spent inside :meth:`Kernel.run`, so
    ``wall_seconds_per_simulated_second`` is the simulator's slowdown
    factor — the pathology metric for latency-dominated runs.
    """

    events_fired: int = 0
    events_scheduled: int = 0
    events_cancelled: int = 0
    peak_queue_size: int = 0
    compactions: int = 0
    simulated_seconds: float = 0.0
    wall_seconds: float = 0.0

    @property
    def wall_seconds_per_simulated_second(self) -> Optional[float]:
        """Real seconds burnt per simulated second (None before any time passes)."""
        if self.simulated_seconds <= 0:
            return None
        return self.wall_seconds / self.simulated_seconds

    def to_dict(self) -> Dict[str, Any]:
        return {
            "events_fired": self.events_fired,
            "events_scheduled": self.events_scheduled,
            "events_cancelled": self.events_cancelled,
            "peak_queue_size": self.peak_queue_size,
            "compactions": self.compactions,
            "simulated_seconds": self.simulated_seconds,
            "wall_seconds": self.wall_seconds,
            "wall_seconds_per_simulated_second": self.wall_seconds_per_simulated_second,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "KernelStats":
        """Rebuild stats from their :meth:`to_dict` form (exact round-trip).

        ``wall_seconds_per_simulated_second`` is derived, so it is ignored on
        input and recomputed from the stored fields.
        """
        return cls(
            events_fired=int(data.get("events_fired", 0)),
            events_scheduled=int(data.get("events_scheduled", 0)),
            events_cancelled=int(data.get("events_cancelled", 0)),
            peak_queue_size=int(data.get("peak_queue_size", 0)),
            compactions=int(data.get("compactions", 0)),
            simulated_seconds=float(data.get("simulated_seconds", 0.0)),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
        )


class Kernel:
    """Discrete-event simulation kernel."""

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        network: Optional[NetworkModel] = None,
        trace: Optional[Trace] = None,
    ) -> None:
        self.queue = EventQueue()
        self.now = 0.0
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.network = network if network is not None else NetworkModel()
        self.trace = trace if trace is not None else Trace()
        self._nodes: Dict[str, Node] = {}
        self._processes: Dict[str, SimProcess] = {}
        self._contexts: Dict[str, ProcessContext] = {}
        self._last_delivery: Dict[tuple, float] = {}
        self._finished_count = 0
        self._events_fired = 0
        self._wall_seconds = 0.0

    # ------------------------------------------------------------------ #
    # Topology registration
    # ------------------------------------------------------------------ #
    def add_node(self, spec: NodeSpec) -> Node:
        """Register a node; returns the simulation-side :class:`Node`."""
        if spec.name in self._nodes:
            raise ValueError(f"duplicate node name {spec.name!r}")
        node = Node(spec, self)
        self._nodes[spec.name] = node
        return node

    def add_nodes(self, specs: Iterable[NodeSpec]) -> None:
        """Register several nodes at once."""
        for spec in specs:
            self.add_node(spec)

    def node(self, name: str) -> Node:
        """The registered node with the given name."""
        return self._nodes[name]

    def nodes(self) -> Dict[str, Node]:
        """All registered nodes by name."""
        return dict(self._nodes)

    # ------------------------------------------------------------------ #
    # Process management
    # ------------------------------------------------------------------ #
    def spawn(
        self,
        name: str,
        node_name: str,
        fn: Callable[..., Generator[Syscall, Any, Any]],
        *args: Any,
        **kwargs: Any,
    ) -> SimProcess:
        """Create a process ``name`` on node ``node_name`` running ``fn(ctx, ...)``.

        ``fn`` must be a generator function whose first parameter is the
        :class:`ProcessContext`.  The process starts at the current simulated
        time (it is resumed through a zero-delay event).
        """
        if name in self._processes:
            raise ValueError(f"duplicate process name {name!r}")
        if node_name not in self._nodes:
            raise ValueError(f"unknown node {node_name!r} for process {name!r}")
        ctx = ProcessContext(self, name, node_name)
        generator = fn(ctx, *args, **kwargs)
        if not hasattr(generator, "send"):
            raise TypeError(f"process function {fn!r} did not return a generator")
        process = SimProcess(name=name, node_name=node_name, generator=generator, started_at=self.now)
        self._processes[name] = process
        self._contexts[name] = ctx
        self.schedule_at(self.now, self._resume, name, None)
        return process

    def process(self, name: str) -> SimProcess:
        """The process record with the given name."""
        return self._processes[name]

    def process_names(self) -> List[str]:
        """Names of every registered process."""
        return list(self._processes.keys())

    def all_finished(self) -> bool:
        """True when every registered process has finished."""
        return self._finished_count == len(self._processes)

    # ------------------------------------------------------------------ #
    # Scheduling primitives
    # ------------------------------------------------------------------ #
    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time`` (>= now)."""
        if time < self.now - 1e-12:
            raise ValueError(f"cannot schedule into the past ({time} < {self.now})")
        return self.queue.push(max(time, self.now), callback, *args)

    def schedule_after(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule_at(self.now + delay, callback, *args)

    # ------------------------------------------------------------------ #
    # Process resumption and syscall handling
    # ------------------------------------------------------------------ #
    def _resume(self, name: str, value: Any) -> None:
        process = self._processes[name]
        if process.state in (ProcessState.FINISHED, ProcessState.FAILED):
            return
        process.state = ProcessState.RUNNING
        try:
            syscall = process.generator.send(value)
        except StopIteration as stop:
            process.state = ProcessState.FINISHED
            process.return_value = stop.value
            process.finished_at = self.now
            self._finished_count += 1
            return
        except Exception as exc:
            process.state = ProcessState.FAILED
            process.exception = exc
            process.finished_at = self.now
            self._finished_count += 1
            raise SimulationError(f"process {name!r} raised {exc!r}") from exc
        self._handle_syscall(process, syscall)

    def _handle_syscall(self, process: SimProcess, syscall: Syscall) -> None:
        if isinstance(syscall, Send):
            self._do_send(process, syscall)
        elif isinstance(syscall, Recv):
            self._do_recv(process, syscall)
        elif isinstance(syscall, Compute):
            self._do_compute(process, syscall)
        elif isinstance(syscall, Sleep):
            if syscall.seconds < 0:
                raise SimulationError(f"negative sleep from {process.name!r}")
            process.state = ProcessState.SLEEPING
            self.schedule_after(syscall.seconds, self._resume, process.name, None)
        else:
            raise SimulationError(
                f"process {process.name!r} yielded a non-syscall object {syscall!r}"
            )

    # -- Send ------------------------------------------------------------ #
    def _do_send(self, process: SimProcess, syscall: Send) -> None:
        if syscall.dest not in self._processes:
            raise SimulationError(
                f"process {process.name!r} sent a message to unknown process {syscall.dest!r}"
            )
        sent_at = self.now
        delay = self.network.transfer_delay(syscall.size_bytes)
        key = (process.name, syscall.dest)
        delivery = max(sent_at + delay, self._last_delivery.get(key, 0.0))
        self._last_delivery[key] = delivery
        self.schedule_at(delivery, self._deliver, process.name, syscall, sent_at, delivery)
        # The sender resumes after the (small) send overhead.
        self.schedule_after(self.network.send_overhead_s, self._resume, process.name, None)

    def _deliver(self, source: str, syscall: Send, sent_at: float, delivery: float) -> None:
        dest = self._processes[syscall.dest]
        message = Message(
            source=source,
            tag=syscall.tag,
            payload=syscall.payload,
            sent_at=sent_at,
            received_at=delivery,
        )
        self.trace.record_message(
            source=source,
            dest=syscall.dest,
            tag=syscall.tag,
            payload=syscall.payload,
            size_bytes=syscall.size_bytes,
            sent_at=sent_at,
            received_at=delivery,
        )
        if dest.state is ProcessState.BLOCKED_RECV and dest.pending_recv is not None and dest.matches(
            message, dest.pending_recv
        ):
            dest.pending_recv = None
            self.schedule_at(self.now, self._resume, dest.name, message)
        else:
            dest.mailbox.append(message)

    # -- Recv ------------------------------------------------------------ #
    def _do_recv(self, process: SimProcess, syscall: Recv) -> None:
        message = process.mailbox.pop_match(syscall)
        if message is not None:
            self.schedule_at(self.now, self._resume, process.name, message)
            return
        process.state = ProcessState.BLOCKED_RECV
        process.pending_recv = syscall

    # -- Compute ---------------------------------------------------------- #
    def _do_compute(self, process: SimProcess, syscall: Compute) -> None:
        if syscall.work_units < 0:
            raise SimulationError(f"negative compute from {process.name!r}")
        process.state = ProcessState.COMPUTING
        node = self._nodes[process.node_name]
        if syscall.work_units == 0:
            # A zero-work computation is still a job: record it (start == end)
            # so job counts stay faithful for trivial evaluations.
            self.trace.record_compute(
                pid=process.name,
                node=process.node_name,
                start=self.now,
                end=self.now,
                work=0.0,
            )
            self.schedule_at(self.now, self._resume, process.name, None)
            return
        node.start_computation(
            process.name,
            syscall.work_units,
            on_complete=lambda name=process.name: self.schedule_at(
                self.now, self._resume, name, None
            ),
        )

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(
        self,
        until_time: Optional[float] = None,
        until_process: Optional[str] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run the simulation and return the final simulated time.

        Stops when the event queue empties, when ``until_time`` is reached,
        when the process named ``until_process`` finishes, or after
        ``max_events`` events — whichever comes first.
        """
        events_fired = 0
        target = self._processes.get(until_process) if until_process else None
        if until_process is not None and target is None:
            raise ValueError(f"unknown process {until_process!r}")
        wall_start = _time.perf_counter()
        sim_start = self.now
        try:
            while self.queue:
                if target is not None and target.state in (ProcessState.FINISHED, ProcessState.FAILED):
                    break
                next_time = self.queue.peek_time()
                if next_time is None:
                    break
                if until_time is not None and next_time > until_time:
                    self.now = until_time
                    break
                event = self.queue.pop()
                if event is None:
                    break
                self.now = event.time
                event.fire()
                events_fired += 1
                if max_events is not None and events_fired >= max_events:
                    break
        finally:
            wall_delta = _time.perf_counter() - wall_start
            self._events_fired += events_fired
            self._wall_seconds += wall_delta
            self.trace.kernel_stats = self.stats()
            if _obs_enabled():
                sim_delta = max(0.0, self.now - sim_start)
                _KERNEL_EVENTS.inc(events_fired)
                _KERNEL_SIM_SECONDS.inc(sim_delta)
                _KERNEL_WALL_SECONDS.inc(wall_delta)
                if sim_delta > 0:
                    _KERNEL_EVENT_RATE.set(events_fired / sim_delta)
        return self.now

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #
    def stats(self) -> KernelStats:
        """A snapshot of this kernel's event-loop diagnostics."""
        return KernelStats(
            events_fired=self._events_fired,
            events_scheduled=self.queue.pushed,
            events_cancelled=self.queue.cancelled_total,
            peak_queue_size=self.queue.peak_size,
            compactions=self.queue.compactions,
            simulated_seconds=self.now,
            wall_seconds=self._wall_seconds,
        )

    def blocked_processes(self) -> List[str]:
        """Names of processes currently blocked on a receive."""
        return [
            p.name for p in self._processes.values() if p.state is ProcessState.BLOCKED_RECV
        ]

    def failed_processes(self) -> List[str]:
        """Names of processes that terminated with an exception."""
        return [p.name for p in self._processes.values() if p.state is ProcessState.FAILED]
