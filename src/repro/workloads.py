"""Named experiment workloads (the "workload generator" of the benchmark harness).

The paper evaluates on full Morpion Solitaire (disjoint, line length 5) at
nesting levels 3 and 4, where a single sequential level-4 search takes about
28 hours of C code on 1.86 GHz hardware (Table I).  A pure-Python
reproduction cannot execute that much search per benchmark run, so the
benchmark harness works on *scaled* Morpion workloads that preserve the
structural properties the experiments depend on — branching factor in the
tens, playout length variance, game length well beyond the nesting level —
while keeping real execution within CI-sized budgets.  The full-size
workloads remain available for long runs (``paper_scale``).

Every workload is a :class:`Workload`: an initial state factory plus the two
nesting levels that play the role of the paper's "level 3" and "level 4"
columns at that scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional

from repro.games.base import GameState
from repro.games.leftmove import LeftMoveState
from repro.games.morpion.geometry import cross_points
from repro.games.morpion.state import MorpionState, MorpionVariant
from repro.games.samegame import SameGameState
from repro.games.sop import SOPInstance, SOPState
from repro.games.tsp import TSPInstance, TSPState
from repro.games.weakschur import WeakSchurState
from repro.timemodel.cost import calibrated_units_per_ghz

__all__ = ["Workload", "WORKLOADS", "get_workload", "morpion_bench_state", "list_workloads"]


@dataclass(frozen=True)
class Workload:
    """A named experiment workload.

    Attributes
    ----------
    name / description:
        Identification, shown by the CLI and recorded in benchmark output.
    make_state:
        Factory returning a *fresh* initial position.
    low_level / high_level:
        The two nesting levels standing in for the paper's "level 3" and
        "level 4" columns at this scale.
    paper_level_low / paper_level_high:
        The paper levels this workload's columns correspond to (for report
        labelling only).
    units_per_ghz:
        Measured per-GHz work rate of this workload's playouts on the Python
        kernels (from the committed rollout-hotpath baseline), pinned at
        registration, or ``None`` when uncalibrated.  Purely informational
        data for opt-in consumers (e.g. profiler drift reports); the
        engine's simulated clock keeps its paper-calibrated default.
    """

    name: str
    description: str
    make_state: Callable[[], GameState]
    low_level: int = 2
    high_level: int = 3
    paper_level_low: int = 3
    paper_level_high: int = 4
    units_per_ghz: Optional[float] = None
    #: Lazily-built template position: every factory here is deterministic,
    #: so ``state()`` can construct once and hand out copies.  This matters
    #: for workloads whose construction dwarfs a playout (full Morpion's
    #: initial legal-move scan, TSP's distance matrix).
    _template: Dict[str, GameState] = field(
        default_factory=dict, compare=False, repr=False
    )

    def state(self) -> GameState:
        """A fresh initial position for this workload (a copy of a cached template)."""
        template = self._template.get("state")
        if template is None:
            template = self._template["state"] = self.make_state()
        return template.copy()


def morpion_bench_state(max_moves: Optional[int] = 20) -> MorpionState:
    """The scaled Morpion position used by the default benchmark workloads.

    Line length 4 on the compact 12-circle cross, optionally capped in game
    length.  Branching starts at 16 and stays in the 8–20 range, so the
    root/median fan-out saturates 64 simulated clients like the real game
    does, while a level-1 client job costs ~10^3 move applications instead of
    the ~10^7 of the full 5D game.
    """
    return MorpionState(line_length=4, initial_points=cross_points(3), max_moves=max_moves)


def _morpion_full_state() -> MorpionState:
    return MorpionState(line_length=5, variant=MorpionVariant.DISJOINT)


WORKLOADS: Dict[str, Workload] = {
    "morpion-bench": Workload(
        name="morpion-bench",
        description=(
            "Scaled Morpion Solitaire (line length 4, compact cross, 20-move cap); "
            "levels 2/3 stand in for the paper's levels 3/4"
        ),
        make_state=lambda: morpion_bench_state(max_moves=20),
        low_level=2,
        high_level=3,
    ),
    "morpion-small": Workload(
        name="morpion-small",
        description="Tiny Morpion workload (12-move cap) for tests and quick demos",
        make_state=lambda: morpion_bench_state(max_moves=12),
        low_level=2,
        high_level=3,
    ),
    "morpion-4d": Workload(
        name="morpion-4d",
        description="Morpion Solitaire with line length 4 and its standard 24-circle cross",
        make_state=lambda: MorpionState(line_length=4),
        low_level=1,
        high_level=2,
    ),
    "morpion-5d": Workload(
        name="morpion-5d",
        description="Full Morpion Solitaire 5D (the paper's domain) — expensive at level >= 2",
        make_state=_morpion_full_state,
        low_level=1,
        high_level=2,
        paper_level_low=3,
        paper_level_high=4,
    ),
    "paper-scale": Workload(
        name="paper-scale",
        description="Full Morpion 5D at the paper's levels 3/4 (hours to days of compute)",
        make_state=_morpion_full_state,
        low_level=3,
        high_level=4,
    ),
    "samegame": Workload(
        name="samegame",
        description="SameGame 8x8, 4 colours",
        make_state=lambda: SameGameState.random(8, 8, 4, seed=17),
        low_level=1,
        high_level=2,
    ),
    "weakschur": Workload(
        name="weakschur",
        description="Weak Schur partitioning with 4 parts, capped at 50 integers",
        make_state=lambda: WeakSchurState(k=4, limit=50),
        low_level=2,
        high_level=3,
    ),
    "tsp": Workload(
        name="tsp",
        description="Euclidean TSP with 24 cities, 8-nearest-neighbour moves",
        make_state=lambda: TSPState(TSPInstance.random(24, seed=11), neighbourhood=8),
        low_level=1,
        high_level=2,
    ),
    "sop": Workload(
        name="sop",
        description="Sequential Ordering Problem, 16 nodes with random precedences",
        make_state=lambda: SOPState(SOPInstance.random(16, precedence_density=0.15, seed=7)),
        low_level=1,
        high_level=2,
    ),
    "leftmove": Workload(
        name="leftmove",
        description="Deterministic weighted LeftMove toy game (known optimum, for demos and tests)",
        make_state=lambda: LeftMoveState(depth=10, branching=3, weighted=True),
        low_level=2,
        high_level=3,
    ),
}


# Pin the measured per-GHz rates (from the committed rollout-hotpath
# baseline) onto the registered workloads as plain data.
for _name in list(WORKLOADS):
    _rate = calibrated_units_per_ghz(_name)
    if _rate is not None:
        WORKLOADS[_name] = replace(WORKLOADS[_name], units_per_ghz=_rate)
del _name, _rate


def get_workload(name: str) -> Workload:
    """Look up a workload by name (raises ``KeyError`` with the known names)."""
    try:
        return WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise KeyError(f"unknown workload {name!r}; known workloads: {known}") from None


def list_workloads() -> Dict[str, str]:
    """Mapping of workload name to its one-line description."""
    return {name: wl.description for name, wl in WORKLOADS.items()}
