"""Command-line interface: ``python -m repro <command> ...``.

The CLI exposes the experiment runners of :mod:`repro.experiments` so that
every table and figure of the paper can be regenerated from a shell, plus a
few utilities (sequential searches, workload listing, the record hunt).

Examples
--------
List the available workloads::

    python -m repro workloads

Regenerate Table II (Round-Robin, first move) at the default scale::

    python -m repro table2 --clients 1 4 8 16 32 64

Run a sequential NMCS on the scaled Morpion board::

    python -m repro nmcs --workload morpion-bench --level 2 --seed 3
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.timefmt import format_hms
from repro.core.nested import nmcs
from repro.experiments import (
    DEFAULT_CLIENT_COUNTS,
    run_client_sweep,
    run_figure1_record,
    run_figure_communications,
    run_table1_sequential,
    run_table6_heterogeneous,
)
from repro.games.morpion.render import render_state
from repro.games.morpion.state import MorpionState
from repro.parallel.config import DispatcherKind
from repro.parallel.jobs import CachingJobExecutor
from repro.workloads import get_workload, list_workloads

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Parallel Nested Monte-Carlo Search' (Cazenave & Jouandeau, 2009)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser, default_workload: str = "morpion-bench") -> None:
        p.add_argument("--workload", default=default_workload, help="named workload (see 'workloads')")
        p.add_argument("--seed", type=int, default=0, help="master random seed")
        p.add_argument("--levels", type=int, nargs="*", default=None, help="nesting levels to run")

    p = sub.add_parser("workloads", help="list the named workloads")

    p = sub.add_parser("nmcs", help="run a sequential Nested Monte-Carlo Search")
    add_common(p)
    p.add_argument("--level", type=int, default=None, help="nesting level (default: workload low level)")
    p.add_argument("--render", action="store_true", help="render the final Morpion grid")

    p = sub.add_parser("table1", help="Table I: sequential first-move and rollout times")
    add_common(p)

    for number, (dispatcher, experiment) in {
        "table2": ("rr", "first_move"),
        "table3": ("rr", "rollout"),
        "table4": ("lm", "first_move"),
        "table5": ("lm", "rollout"),
    }.items():
        p = sub.add_parser(
            number,
            help=f"Table {number[-1].upper()}: {dispatcher.upper()} {experiment.replace('_', ' ')} client sweep",
        )
        add_common(p)
        p.add_argument("--clients", type=int, nargs="*", default=list(DEFAULT_CLIENT_COUNTS))
        p.set_defaults(dispatcher=dispatcher, experiment=experiment)

    p = sub.add_parser("table6", help="Table VI: LM vs RR on heterogeneous clusters")
    add_common(p)

    p = sub.add_parser("figures2-5", help="Figures 2-5: communication-pattern analysis")
    add_common(p, default_workload="morpion-small")
    p.add_argument("--clients", type=int, default=8)

    p = sub.add_parser("figure1", help="Figure 1: search for a long Morpion sequence and render it")
    add_common(p, default_workload="morpion-4d")
    p.add_argument("--level", type=int, default=None)
    p.add_argument("--clients", type=int, default=16)
    p.add_argument("--sequential", action="store_true", help="use the sequential search instead of the cluster")

    return parser


def _print(text: str) -> None:
    sys.stdout.write(text + "\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro`` (returns a process exit code)."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "workloads":
        for name, description in list_workloads().items():
            _print(f"{name:16s} {description}")
        return 0

    if args.command == "nmcs":
        workload = get_workload(args.workload)
        level = args.level if args.level is not None else workload.low_level
        state = workload.state()
        result = nmcs(state, level, seed=args.seed)
        _print(f"workload={workload.name} level={level} seed={args.seed}")
        _print(f"score: {result.score}")
        _print(f"moves: {len(result.sequence)}")
        _print(f"work:  {result.work.moves} move applications, {result.work.playouts} playouts")
        if args.render and isinstance(state, MorpionState):
            _print(render_state(result.final_state(state)))
        return 0

    if args.command == "table1":
        experiment = run_table1_sequential(args.workload, levels=args.levels, master_seed=args.seed)
        _print(experiment.render())
        ratios = experiment.data["ratios"]
        for name, value in ratios.items():
            _print(f"{name}: {value:.1f}x")
        return 0

    if args.command in ("table2", "table3", "table4", "table5"):
        executor = CachingJobExecutor()
        sweep = run_client_sweep(
            args.dispatcher,
            experiment=args.experiment,
            workload=args.workload,
            levels=args.levels,
            client_counts=args.clients,
            master_seed=args.seed,
            executor=executor,
        )
        _print(sweep.render())
        for level, table in sweep.speedups.items():
            if table:
                rendered = ", ".join(f"{c}: {s:.1f}x" for c, s in table.items())
                _print(f"speedups (level {level}): {rendered}")
        return 0

    if args.command == "table6":
        experiment = run_table6_heterogeneous(args.workload, levels=args.levels, master_seed=args.seed)
        _print(experiment.render())
        for name, value in experiment.data["advantages"].items():
            _print(f"{name}: RR/LM = {value:.2f}")
        return 0

    if args.command == "figures2-5":
        for dispatcher in (DispatcherKind.ROUND_ROBIN, DispatcherKind.LAST_MINUTE):
            experiment = run_figure_communications(
                dispatcher,
                workload=args.workload,
                level=None if not args.levels else args.levels[0],
                n_clients=args.clients,
                master_seed=args.seed,
            )
            _print(experiment.render())
            violations = experiment.data["violations"]
            _print("pattern check: " + ("OK" if not violations else "; ".join(violations)))
            _print("")
        return 0

    if args.command == "figure1":
        experiment = run_figure1_record(
            workload=args.workload,
            level=args.level,
            n_clients=args.clients,
            master_seed=args.seed,
            use_parallel=not args.sequential,
        )
        _print(experiment.render())
        _print(experiment.data["grid"])
        return 0

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
