"""Command-line interface: ``python -m repro <command> ...``.

The CLI exposes the experiment runners of :mod:`repro.experiments` so that
every table and figure of the paper can be regenerated from a shell, plus the
unified scenario runner (``repro run``) built on :mod:`repro.api` and a few
utilities (sequential searches, workload listing, the record hunt).

Examples
--------
List the registered algorithms, backends and workloads (descriptions,
declared params)::

    python -m repro list

Run any algorithm × backend combination from one declarative spec::

    python -m repro run --workload morpion-small --backend sim-cluster \
        --dispatcher lm --clients 8 --first-move --json

    python -m repro run --spec my_scenario.json

Run a declarative sweep grid against a durable, resumable result store
(re-running skips completed cells; an interrupted sweep resumes)::

    python -m repro sweep --spec sweep.json --store results/store

Regenerate Table II (Round-Robin, first move) at the default scale::

    python -m repro table2 --clients 1 4 8 16 32 64

Run a sequential NMCS on the scaled Morpion board::

    python -m repro nmcs --workload morpion-bench --level 2 --seed 3

Every table/figure command accepts ``--json`` to emit the raw measurement
payload instead of the rendered table, so pipelines never scrape tables.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.tables import Table, pivot_table
from repro.analysis.timefmt import format_hms
from repro.api import (
    ALGORITHMS,
    BACKENDS,
    Engine,
    SearchSpec,
    list_algorithms,
    list_backends,
    to_jsonable,
)
from repro.experiments import (
    DEFAULT_CLIENT_COUNTS,
    run_client_sweep,
    run_figure1_record,
    run_figure_communications,
    run_table1_sequential,
    run_table6_heterogeneous,
)
from repro.lab import (
    ROW_FIELDS,
    ResultStore,
    SweepSpec,
    rows_from_reports,
    write_csv,
    write_json,
)
from repro.games.morpion.render import render_state
from repro.games.morpion.state import MorpionState
from repro.parallel.config import DispatcherKind
from repro.parallel.jobs import CachingJobExecutor
from repro.workloads import get_workload, list_workloads

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Parallel Nested Monte-Carlo Search' (Cazenave & Jouandeau, 2009)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_json(p: argparse.ArgumentParser) -> None:
        p.add_argument("--json", action="store_true", help="emit the raw payload as JSON")

    def add_common(p: argparse.ArgumentParser, default_workload: str = "morpion-bench") -> None:
        p.add_argument("--workload", default=default_workload, help="named workload (see 'workloads')")
        p.add_argument("--seed", type=int, default=0, help="master random seed")
        p.add_argument("--levels", type=int, nargs="*", default=None, help="nesting levels to run")
        add_json(p)

    p = sub.add_parser("workloads", help="list the named workloads, algorithms and backends")
    add_json(p)

    # Scenario flags use SUPPRESS defaults so that "explicitly passed" can be
    # told apart from "omitted": with --spec, only passed flags override the
    # document; without it, omitted flags fall back to SearchSpec's defaults.
    def add_scenario_flags(p: argparse.ArgumentParser) -> None:
        omit = argparse.SUPPRESS
        p.add_argument("--spec", default=None, help="path to a SearchSpec JSON file, or an inline JSON object")
        p.add_argument("--workload", default=omit, help="named workload (see 'workloads')")
        p.add_argument("--algorithm", default=omit, help="registered algorithm (see 'workloads')")
        p.add_argument("--backend", default=omit, help="registered backend (see 'workloads')")
        p.add_argument("--level", type=int, default=omit, help="nesting level (default: workload low level)")
        p.add_argument("--seed", type=int, default=omit, help="master random seed")
        p.add_argument("--steps", type=int, default=omit, help="max root moves (omit to play the full game)")
        p.add_argument("--first-move", action="store_true", default=omit, help="shorthand for --steps 1")
        p.add_argument("--dispatcher", default=omit, help="rr or lm (sim-cluster backend)")
        p.add_argument("--cluster", default=omit, help="cluster descriptor (sim-cluster backend)")
        p.add_argument("--clients", type=int, default=omit, help="simulated clients (sim-cluster backend)")
        p.add_argument("--medians", type=int, default=omit, help="median processes (sim-cluster backend)")
        p.add_argument("--workers", type=int, default=omit, help="pool size (multiprocessing/threads backends)")
        p.add_argument(
            "--param",
            action="append",
            default=omit,
            metavar="KEY=VALUE",
            help="algorithm-specific parameter (repeatable); values are parsed as JSON when possible",
        )

    p = sub.add_parser("run", help="run one algorithm × workload × backend scenario (repro.api)")
    add_scenario_flags(p)
    add_json(p)

    p = sub.add_parser(
        "sweep", help="run a declarative SweepSpec grid with a durable, resumable store (repro.lab)"
    )
    p.add_argument(
        "--spec", required=True, help="path to a SweepSpec JSON file, or an inline JSON object"
    )
    p.add_argument(
        "--store",
        default=None,
        help="ResultStore directory: completed cells are skipped on re-runs (resume for free)",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already in the store (the default whenever --store is given)",
    )
    p.add_argument(
        "--force",
        action="store_true",
        help="re-execute every cell, overwriting existing store entries",
    )
    p.add_argument(
        "--workers", type=int, default=None, help="run independent cells on a thread pool this size"
    )
    p.add_argument(
        "--processes",
        type=int,
        default=None,
        metavar="N",
        help="run cells on a persistent pool of N worker processes (GIL-free; "
        "mutually exclusive with --workers)",
    )
    p.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="CELLS",
        help="cells per IPC round with --processes (default: auto)",
    )
    p.add_argument(
        "--error-policy",
        choices=("raise", "skip"),
        default="raise",
        help="stop on the first failing cell (raise) or keep sweeping (skip)",
    )
    p.add_argument("--csv", default=None, help="write the result rows as CSV to this path")
    p.add_argument("--rows", default=None, help="write the result rows as a JSON array to this path")
    add_json(p)

    p = sub.add_parser(
        "serve", help="run the search-as-a-service job server (repro.service)"
    )
    p.add_argument("--host", default="127.0.0.1", help="TCP bind host")
    p.add_argument("--port", type=int, default=7171, help="TCP bind port (0 = ephemeral)")
    p.add_argument("--socket", default=None, help="serve on this unix socket path instead of TCP")
    p.add_argument("--workers", type=int, default=2, help="persistent worker threads")
    p.add_argument(
        "--processes",
        type=int,
        default=None,
        metavar="N",
        help="execute each job's cells on a pool of N worker processes (GIL-free)",
    )
    p.add_argument("--queue-depth", type=int, default=64, help="max pending jobs before backpressure rejections")
    p.add_argument("--rate", type=float, default=None, help="per-client token-bucket refill (submissions/second)")
    p.add_argument("--burst", type=float, default=None, help="per-client token-bucket capacity (default max(1, rate))")
    p.add_argument("--store", default=None, help="ResultStore directory for dedup/cache (strongly recommended)")
    p.add_argument(
        "--ready-file",
        default=None,
        help="write the bound address to this file once listening (for scripts/CI)",
    )
    add_json(p)

    p = sub.add_parser(
        "submit", help="submit one scenario (or a sweep) to a running 'repro serve'"
    )
    p.add_argument("--connect", required=True, help="server address: HOST:PORT or unix:PATH")
    add_scenario_flags(p)
    p.add_argument("--sweep", default=None, help="SweepSpec JSON file or inline document (instead of a SearchSpec)")
    p.add_argument("--client", default="cli", help="client identity (rate-limit / fairness bucket)")
    p.add_argument("--priority", type=int, default=0, help="queue priority (lower pops first)")
    p.add_argument("--no-wait", action="store_true", help="print the submission ack and exit without subscribing")
    add_json(p)

    p = sub.add_parser("jobs", help="list, cancel, or shut down jobs on a running 'repro serve'")
    p.add_argument("--connect", required=True, help="server address: HOST:PORT or unix:PATH")
    p.add_argument("--cancel", default=None, metavar="JOB_ID", help="cancel this job instead of listing")
    p.add_argument("--shutdown", action="store_true", help="drain the server and stop it")
    p.add_argument("--no-drain", action="store_true", help="with --shutdown: cancel pending jobs instead of draining")
    add_json(p)

    p = sub.add_parser("stats", help="live telemetry of a running 'repro serve' (metrics verb)")
    p.add_argument("--connect", required=True, help="server address: HOST:PORT or unix:PATH")
    p.add_argument(
        "--prometheus",
        action="store_true",
        help="print Prometheus text exposition format instead of the summary",
    )
    add_json(p)

    p = sub.add_parser(
        "profile", help="profile the rollout hot path: seeded playouts under spans + cProfile"
    )
    p.add_argument(
        "games",
        nargs="*",
        default=[],
        help="workloads to profile (default: the curated six-game roster)",
    )
    p.add_argument("--playouts", type=int, default=200, help="playouts per game")
    p.add_argument("--seed", type=int, default=0, help="master random seed")
    p.add_argument("--top", type=int, default=8, help="hotspot functions reported per game")
    p.add_argument(
        "--no-cprofile", action="store_true", help="skip the cProfile pass (spans only; faster)"
    )
    p.add_argument(
        "--out",
        default="benchmarks/results/BENCH_rollout_hotpath.json",
        help="JSON-array trajectory file to append the document to ('' = don't write)",
    )
    add_json(p)

    p = sub.add_parser("list", help="list registered algorithms, backends and workloads")
    add_json(p)

    p = sub.add_parser("nmcs", help="run a sequential Nested Monte-Carlo Search")
    add_common(p)
    p.add_argument("--level", type=int, default=None, help="nesting level (default: workload low level)")
    p.add_argument("--render", action="store_true", help="render the final Morpion grid")

    p = sub.add_parser("table1", help="Table I: sequential first-move and rollout times")
    add_common(p)

    for number, (dispatcher, experiment) in {
        "table2": ("rr", "first_move"),
        "table3": ("rr", "rollout"),
        "table4": ("lm", "first_move"),
        "table5": ("lm", "rollout"),
    }.items():
        p = sub.add_parser(
            number,
            help=f"Table {number[-1].upper()}: {dispatcher.upper()} {experiment.replace('_', ' ')} client sweep",
        )
        add_common(p)
        p.add_argument("--clients", type=int, nargs="*", default=list(DEFAULT_CLIENT_COUNTS))
        p.set_defaults(dispatcher=dispatcher, experiment=experiment)

    p = sub.add_parser("table6", help="Table VI: LM vs RR on heterogeneous clusters")
    add_common(p)

    p = sub.add_parser("figures2-5", help="Figures 2-5: communication-pattern analysis")
    add_common(p, default_workload="morpion-small")
    p.add_argument("--clients", type=int, default=8)

    p = sub.add_parser("figure1", help="Figure 1: search for a long Morpion sequence and render it")
    add_common(p, default_workload="morpion-4d")
    p.add_argument("--level", type=int, default=None)
    p.add_argument("--clients", type=int, default=16)
    p.add_argument("--sequential", action="store_true", help="use the sequential search instead of the cluster")

    return parser


def _print(text: str) -> None:
    sys.stdout.write(text + "\n")


def _print_error(text: str) -> None:
    """Diagnostics go to stderr so ``--json`` pipelines never parse them."""
    sys.stderr.write(text + "\n")


def _print_json(payload: Any) -> None:
    _print(json.dumps(to_jsonable(payload), indent=2, sort_keys=True))


def _parse_params(pairs: Sequence[str]) -> Dict[str, Any]:
    """Parse repeated ``--param key=value`` flags (values as JSON when possible)."""
    params: Dict[str, Any] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ValueError(f"bad --param {pair!r}; expected KEY=VALUE")
        try:
            params[key] = json.loads(value)
        except json.JSONDecodeError:
            params[key] = value
    return params


#: run-flag name -> SearchSpec field name (flags that map one-to-one).
_RUN_FLAG_FIELDS = {
    "workload": "workload",
    "algorithm": "algorithm",
    "backend": "backend",
    "level": "level",
    "seed": "seed",
    "dispatcher": "dispatcher",
    "cluster": "cluster",
    "clients": "n_clients",
    "medians": "n_medians",
    "workers": "n_workers",
}


def _spec_from_args(args: argparse.Namespace) -> SearchSpec:
    """Build the :class:`SearchSpec` of a ``repro run`` invocation.

    Scenario flags use ``argparse.SUPPRESS`` defaults, so exactly the flags
    the user typed are present on ``args``.  With ``--spec``, those flags
    override the corresponding fields of the loaded document (e.g.
    ``repro run --spec scenario.json --seed 5`` sweeps seeds over a saved
    scenario); without it they fill a fresh spec.
    """
    passed = vars(args)
    overrides: Dict[str, Any] = {
        field: passed[flag] for flag, field in _RUN_FLAG_FIELDS.items() if flag in passed
    }
    if passed.get("first_move"):
        overrides["max_steps"] = 1
    elif "steps" in passed:
        overrides["max_steps"] = passed["steps"]
    if args.spec is not None:
        text = args.spec
        if not text.lstrip().startswith("{"):
            text = Path(args.spec).read_text(encoding="utf-8")
        spec = SearchSpec.from_json(text)
        if "param" in passed:
            overrides["params"] = {**spec.params, **_parse_params(passed["param"])}
        return spec.replace(**overrides) if overrides else spec
    if "param" in passed:
        overrides["params"] = _parse_params(passed["param"])
    return SearchSpec(**overrides)


def _cell_label(coords: "dict[str, Any]") -> str:
    """Human-readable grid coordinates of one sweep cell."""
    return " ".join(f"{axis}={value}" for axis, value in coords.items()) or "(base)"


def _render_sweep(sweep: SweepSpec, labelled_rows: List[tuple]) -> str:
    """Render sweep rows: paper-style pivot for 2-axis grids, a listing otherwise."""
    axes = list(sweep.axes)
    rows = [row for _, row in labelled_rows]
    if (
        len(axes) == 2
        and sweep.repeats == 1
        and all(axis in ROW_FIELDS for axis in axes)
        and all(row.get("simulated_seconds") is not None for row in rows)
    ):
        return pivot_table(
            rows,
            title=f"Sweep {sweep.name!r} — simulated time by {axes[0]} × {axes[1]}",
            index=axes[0],
            column=axes[1],
            value="simulated_seconds",
            fmt=format_hms,
            column_fmt=lambda value: f"{axes[1]} {value}",
        ).render()
    table = Table(
        title=f"Sweep {sweep.name!r} — {len(rows)} result(s)",
        columns=["score", "simulated", "wall"],
        row_label="cell",
    )
    for label, row in labelled_rows:
        table.add_row(
            label,
            score=f"{row['score']:g}",
            simulated=(
                format_hms(row["simulated_seconds"])
                if row.get("simulated_seconds") is not None
                else "—"
            ),
            wall=f"{row['wall_seconds']:.2f}s",
        )
    return table.render()


def _run_sweep_command(args: argparse.Namespace) -> int:
    """The ``repro sweep`` command: execute a SweepSpec against a ResultStore."""
    if args.force and args.resume:
        _print_error("error: --force and --resume are mutually exclusive")
        return 2
    if args.processes is not None and args.workers is not None:
        _print_error("error: --processes and --workers are mutually exclusive")
        return 2
    if args.chunk_size is not None and args.processes is None:
        _print_error("error: --chunk-size only applies with --processes")
        return 2
    try:
        text = args.spec
        if not text.lstrip().startswith("{"):
            text = Path(args.spec).read_text(encoding="utf-8")
        sweep = SweepSpec.from_json(text)
    except (ValueError, KeyError, OSError) as exc:
        _print_error(f"error: {exc}")
        return 2
    store = ResultStore(args.store) if args.store else None
    if args.resume and store is None:
        _print_error("error: --resume needs --store (there is nothing to resume from)")
        return 2
    engine = Engine()
    counts = {"started": 0, "cached": 0, "completed": 0, "failed": 0}
    reports: Dict[int, Any] = {}
    labels = {cell.index: _cell_label(dict(cell.coords)) for cell in sweep.cells()}
    try:
        for event in engine.stream(
            sweep,
            store=store,
            error_policy=args.error_policy,
            max_workers=args.processes if args.processes is not None else args.workers,
            executor="process" if args.processes is not None else "thread",
            chunk_size=args.chunk_size,
            refresh=args.force,
        ):
            counts[event.kind] += 1
            if event.report is not None:
                reports[event.index] = event.report
            # Progress goes to stderr so --json pipelines only ever see the payload.
            if event.kind == "started":
                _print_error(f"[{event.done + 1}/{event.total}] running   {labels[event.index]}")
            elif event.kind == "failed":
                _print_error(
                    f"[{event.done}/{event.total}] FAILED    {labels[event.index]}: {event.error}"
                )
            else:
                suffix = " (cached)" if event.kind == "cached" else ""
                _print_error(
                    f"[{event.done}/{event.total}] done      {labels[event.index]} "
                    f"score={event.report.score:g}{suffix}"
                )
    except KeyboardInterrupt:
        done = counts["cached"] + counts["completed"]
        if store is not None:
            _print_error(
                f"interrupted after {done}/{len(sweep)} cells; re-run the same command "
                f"to resume from {args.store}"
            )
        else:
            _print_error(
                f"interrupted after {done}/{len(sweep)} cells; pass --store to make "
                "sweeps resumable"
            )
        return 130
    except (ValueError, KeyError, OSError) as exc:
        _print_error(f"error: {exc}")
        return 2
    ordered = [reports[index] for index in sorted(reports)]
    rows = rows_from_reports(ordered, store=store)
    labelled_rows = list(zip((labels[index] for index in sorted(reports)), rows))
    if args.csv:
        write_csv(rows, args.csv)
        _print_error(f"wrote {len(rows)} row(s) to {args.csv}")
    if args.rows:
        write_json(rows, args.rows)
        _print_error(f"wrote {len(rows)} row(s) to {args.rows}")
    if args.json:
        _print_json(
            {
                "name": sweep.name,
                "cells": len(sweep),
                "executed": counts["completed"],
                "cached": counts["cached"],
                "failed": counts["failed"],
                "store": args.store,
                "rows": rows,
            }
        )
    else:
        _print(_render_sweep(sweep, labelled_rows))
        _print(
            f"\ncells: {len(sweep)}  executed: {counts['completed']}  "
            f"cached: {counts['cached']}  failed: {counts['failed']}"
        )
    return 1 if counts["failed"] else 0


def _serve_command(args: argparse.Namespace) -> int:
    """The ``repro serve`` command: run the job server until shut down."""
    from repro import obs
    from repro.service import SearchService, ServiceConfig, ServiceServer

    # A server always records telemetry: the metrics verb and `repro stats`
    # are only useful when the counters actually move.
    obs.enable()
    try:
        config = ServiceConfig(
            n_workers=args.workers,
            queue_depth=args.queue_depth,
            rate=args.rate,
            burst=args.burst,
            cell_executor="process" if args.processes is not None else "thread",
            cell_workers=args.processes,
        )
    except ValueError as exc:
        _print_error(f"error: {exc}")
        return 2
    store = ResultStore(args.store) if args.store else None
    service = SearchService(engine=Engine(), store=store, config=config)
    server = ServiceServer(
        service, host=args.host, port=args.port, socket_path=args.socket
    )
    try:
        address = server.start()
    except OSError as exc:
        _print_error(f"error: cannot bind {args.socket or f'{args.host}:{args.port}'}: {exc}")
        return 2
    if args.ready_file:
        Path(args.ready_file).write_text(address, encoding="utf-8")
    if args.json:
        _print_json({"address": address, "store": args.store, "workers": args.workers})
        sys.stdout.flush()
    processes = f", processes={args.processes}" if args.processes is not None else ""
    _print_error(
        f"repro service listening on {address} "
        f"(workers={args.workers}{processes}, queue_depth={args.queue_depth}, "
        f"store={args.store or 'none'}); submit with: repro submit --connect {address} ..."
    )
    try:
        server.wait()  # returns when a client sends the shutdown verb
    except KeyboardInterrupt:
        _print_error("interrupted; cancelling pending jobs and shutting down")
        service.shutdown(drain=False)
        server.stop()
    return 0


def _submit_command(args: argparse.Namespace) -> int:
    """The ``repro submit`` command: submit to a server and stream progress."""
    from repro.service import ServiceClient, ServiceError

    try:
        if args.sweep is not None:
            text = args.sweep
            if not text.lstrip().startswith("{"):
                text = Path(args.sweep).read_text(encoding="utf-8")
            payload: Dict[str, Any] = {"sweep": SweepSpec.from_json(text).to_dict()}
        else:
            payload = {"spec": _spec_from_args(args).to_dict()}
        client = ServiceClient(args.connect, client=args.client)
        ack = client.submit(
            payload.get("spec"), sweep=payload.get("sweep"), priority=args.priority
        )
    except (ServiceError, ValueError, KeyError, OSError) as exc:
        _print_error(f"error: {exc}")
        return 2
    if ack["status"] == "rejected":
        if args.json:
            _print_json({"submit": ack, "job": None, "counts": None, "reports": []})
        _print_error(f"rejected: {ack.get('reason')} (server {args.connect})")
        return 1
    if args.no_wait:
        if args.json:
            _print_json({"submit": ack})
        else:
            _print(f"job {ack['job_id']} {ack['status']} on {args.connect}")
        return 0

    def progress(event: Dict[str, Any]) -> None:
        label = f"{event['spec'].get('workload')} seed={event['spec'].get('seed')}"
        if event["kind"] == "started":
            _print_error(f"[{event['done'] + 1}/{event['total']}] running   {label}")
        elif event["kind"] == "failed":
            _print_error(f"[{event['done']}/{event['total']}] FAILED    {label}: {event['error']}")
        else:
            suffix = " (cached)" if event["kind"] == "cached" else ""
            score = event["report"]["score"] if event.get("report") else "?"
            _print_error(f"[{event['done']}/{event['total']}] done      {label} score={score}{suffix}")

    try:
        outcome = client.wait(ack["job_id"], on_event=progress)
    except (ServiceError, OSError) as exc:
        _print_error(f"error: {exc}")
        return 2
    outcome["submit"] = ack
    if len(outcome["reports"]) == 1:
        outcome["report"] = outcome["reports"][0]
    if args.json:
        _print_json(outcome)
    else:
        job = outcome["job"]
        _print(
            f"job {job['id']} {job['state']} (submitted as {ack['status']}): "
            f"{job['cells']['done']}/{job['cells']['total']} cells, "
            f"{job['cells']['cached']} cached, {job['cells']['failed']} failed"
        )
        for report in outcome["reports"]:
            _print(f"  score={report['score']:g} workload={report['spec']['workload']}")
        if job["error"]:
            _print(f"  error: {job['error']}")
    return 0 if outcome["job"]["state"] == "completed" else 1


def _jobs_command(args: argparse.Namespace) -> int:
    """The ``repro jobs`` command: list/cancel jobs or stop the server."""
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.connect)
    try:
        if args.cancel:
            payload: Dict[str, Any] = {"job": client.cancel(args.cancel)}
            message = f"job {args.cancel} -> {payload['job']['state']}"
        elif args.shutdown:
            payload = client.shutdown(drain=not args.no_drain)
            message = "server shutting down" + (" (draining)" if not args.no_drain else "")
        else:
            payload = client.jobs()
            message = ""
    except (ServiceError, ValueError, OSError) as exc:
        _print_error(f"error: {exc}")
        return 2
    if args.json:
        _print_json(payload)
        return 0
    if message:
        _print(message)
        return 0
    jobs = payload["jobs"]
    if not jobs:
        _print("no jobs")
    for job in jobs:
        cells = job["cells"]
        _print(
            f"{job['id']:10s} {job['state']:10s} client={job['client']:12s} "
            f"{job['kind']:6s} {cells['done']}/{cells['total']} cells "
            f"({cells['cached']} cached, {cells['failed']} failed) "
            f"wait={job['queue_wait_seconds']:.2f}s wall={job['wall_seconds']:.2f}s"
        )
    stats = payload["stats"]
    _print(
        f"\nsubmitted: {stats['submitted']}  queued: {stats['queued']}  "
        f"cached: {stats['cached']}  attached: {stats['attached']}  "
        f"rejected: {stats['rejected_rate_limited'] + stats['rejected_queue_full'] + stats['rejected_shutting_down']}"
    )
    return 0


def _metric_total(snapshot: Dict[str, Any], name: str) -> float:
    """Sum of a counter/gauge family across all label series (0 if absent)."""
    family = snapshot.get(name)
    if not family:
        return 0.0
    return sum(entry["value"] for entry in family["values"])


def _histogram_totals(snapshot: Dict[str, Any], name: str) -> "tuple[float, float]":
    """``(count, sum)`` of a histogram family across all label series."""
    family = snapshot.get(name)
    if not family:
        return 0.0, 0.0
    count = sum(entry["count"] for entry in family["values"])
    total = sum(entry["sum"] for entry in family["values"])
    return count, total


def _render_stats(snapshot: Dict[str, Any], service: Dict[str, Any]) -> str:
    """Human summary of the server's telemetry (the ``repro stats`` output)."""
    hits = _metric_total(snapshot, "repro_store_hits_total")
    misses = _metric_total(snapshot, "repro_store_misses_total")
    lookups = hits + misses
    hit_rate = f" ({100.0 * hits / lookups:.0f}% hit rate)" if lookups else ""
    jobs_n, jobs_s = _histogram_totals(snapshot, "repro_service_job_seconds")
    wait_n, wait_s = _histogram_totals(snapshot, "repro_service_queue_wait_seconds")
    runs = _metric_total(snapshot, "repro_engine_runs_total")
    runs_n, runs_s = _histogram_totals(snapshot, "repro_engine_run_seconds")
    cells = snapshot.get("repro_engine_cells_total", {"values": []})
    cell_counts = {e["labels"]["kind"]: e["value"] for e in cells["values"]}
    lines = [
        f"store:   {hits:.0f} hits, {misses:.0f} misses, "
        f"{_metric_total(snapshot, 'repro_store_writes_total'):.0f} writes{hit_rate}",
        f"queue:   depth {_metric_total(snapshot, 'repro_service_queue_depth'):.0f}, "
        f"{_metric_total(snapshot, 'repro_service_queue_pushed_total'):.0f} pushed, "
        f"{_metric_total(snapshot, 'repro_service_rate_limited_total'):.0f} rate-limited",
        f"jobs:    {jobs_n:.0f} finished"
        + (f", mean {jobs_s / jobs_n:.2f}s submit-to-finish" if jobs_n else "")
        + (f", mean queue wait {wait_s / wait_n * 1e3:.1f}ms" if wait_n else ""),
        f"engine:  {runs:.0f} runs"
        + (f", mean {runs_s / runs_n:.2f}s" if runs_n else "")
        + "; cells "
        + ", ".join(
            f"{cell_counts.get(kind, 0.0):.0f} {kind}"
            for kind in ("started", "cached", "completed", "failed")
        ),
        "service: "
        + "  ".join(f"{key}={value}" for key, value in sorted(service.items())),
    ]
    if not lookups and not jobs_n and not runs:
        lines.append(
            "(all zero? the server records telemetry from startup; "
            "counters move once jobs run)"
        )
    return "\n".join(lines)


def _stats_command(args: argparse.Namespace) -> int:
    """The ``repro stats`` command: query a server's ``metrics`` verb."""
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.connect)
    try:
        if args.prometheus:
            sys.stdout.write(client.metrics(format="prometheus")["text"])
            return 0
        payload = client.metrics()
    except (ServiceError, ValueError, OSError) as exc:
        _print_error(f"error: {exc}")
        return 2
    if args.json:
        _print_json(payload)
        return 0
    _print(_render_stats(payload["metrics"], payload["service"]))
    return 0


def _profile_command(args: argparse.Namespace) -> int:
    """The ``repro profile`` command: per-game rollout cost table."""
    from repro.obs.profiler import (
        append_trajectory_entry,
        format_cost_table,
        profile_games,
    )

    try:
        document = profile_games(
            args.games or None,
            playouts=args.playouts,
            seed=args.seed,
            top=args.top,
            use_cprofile=not args.no_cprofile,
        )
        if args.out:
            history = append_trajectory_entry(Path(args.out), document)
            _print_error(f"appended entry {len(history)} to {args.out}")
    except (KeyError, ValueError, OSError) as exc:
        message = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
        _print_error(f"error: {message}")
        return 2
    if args.json:
        _print_json(document)
        return 0
    _print(format_cost_table(document))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro`` (returns a process exit code)."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "workloads":
        if args.json:
            _print_json(
                {
                    "workloads": list_workloads(),
                    "algorithms": list_algorithms(),
                    "backends": list_backends(),
                }
            )
            return 0
        for name, description in list_workloads().items():
            _print(f"{name:16s} {description}")
        _print("")
        for kind, listing in (("algorithm", list_algorithms()), ("backend", list_backends())):
            for name, description in listing.items():
                _print(f"{kind + ' ' + name:28s} {description}")
        return 0

    if args.command == "serve":
        return _serve_command(args)

    if args.command == "submit":
        return _submit_command(args)

    if args.command == "jobs":
        return _jobs_command(args)

    if args.command == "stats":
        return _stats_command(args)

    if args.command == "profile":
        return _profile_command(args)

    if args.command == "run":
        try:
            spec = _spec_from_args(args)
            report = Engine().run(spec)
        except (ValueError, KeyError, OSError) as exc:
            # KeyError's str() wraps the message in quotes; unwrap it.
            message = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
            _print_error(f"error: {message}")
            return 2
        if args.json:
            _print(report.to_json(indent=2))
            return 0
        _print(
            f"workload={spec.workload} algorithm={report.algorithm} "
            f"backend={report.backend} level={report.level} seed={spec.seed}"
        )
        _print(f"score: {report.score}")
        _print(f"moves: {report.sequence_length}")
        if report.work_units is not None:
            _print(f"work:  {report.work_units:.0f} move applications")
        if report.simulated_seconds is not None:
            _print(f"simulated time: {format_hms(report.simulated_seconds)}")
        _print(f"wall time: {report.wall_seconds:.2f}s")
        if report.n_jobs is not None:
            _print(f"jobs: {report.n_jobs}")
        if report.kernel_stats is not None:
            stats = report.kernel_stats
            ratio = stats.get("wall_seconds_per_simulated_second")
            _print(
                f"kernel: {stats['events_fired']} events fired, "
                f"{stats['events_cancelled']} cancelled, "
                f"peak queue {stats['peak_queue_size']}"
                + (f", {ratio:.2f} wall-s per simulated-s" if ratio is not None else "")
            )
        return 0

    if args.command == "list":
        algorithms = {
            name: {
                "description": entry.description,
                "params": None if entry.params is None else sorted(entry.params),
                "supports_budget": entry.supports_budget,
            }
            for name, entry in sorted(ALGORITHMS.items())
        }
        backends = {
            name: {
                "description": entry.description,
                "algorithms": None if entry.algorithms is None else sorted(entry.algorithms),
                "params": None if entry.params is None else sorted(entry.params),
            }
            for name, entry in sorted(BACKENDS.items())
        }
        if args.json:
            _print_json(
                {"algorithms": algorithms, "backends": backends, "workloads": list_workloads()}
            )
            return 0
        _print("Algorithms:")
        for name, info in algorithms.items():
            params = "any" if info["params"] is None else ", ".join(info["params"]) or "none"
            _print(f"  {name:16s} {info['description']} [params: {params}]")
        _print("\nBackends:")
        for name, info in backends.items():
            runs = "all algorithms" if info["algorithms"] is None else ", ".join(info["algorithms"])
            extras = "" if not info["params"] else f"; params: {', '.join(info['params'])}"
            _print(f"  {name:16s} {info['description']} [runs: {runs}{extras}]")
        _print("\nWorkloads:")
        for name, description in list_workloads().items():
            _print(f"  {name:16s} {description}")
        return 0

    if args.command == "sweep":
        return _run_sweep_command(args)

    if args.command == "nmcs":
        workload = get_workload(args.workload)
        level = args.level if args.level is not None else workload.low_level
        state = workload.state()
        report = Engine().run(
            SearchSpec(workload=workload.name, level=level, seed=args.seed), state=state
        )
        result = report.raw
        if args.json:
            _print_json(report.to_dict())
            return 0
        _print(f"workload={workload.name} level={level} seed={args.seed}")
        _print(f"score: {result.score}")
        _print(f"moves: {len(result.sequence)}")
        _print(f"work:  {result.work.moves} move applications, {result.work.playouts} playouts")
        if args.render and isinstance(state, MorpionState):
            _print(render_state(result.final_state(state)))
        return 0

    if args.command == "table1":
        experiment = run_table1_sequential(args.workload, levels=args.levels, master_seed=args.seed)
        if args.json:
            _print_json(experiment.json_payload())
            return 0
        _print(experiment.render())
        ratios = experiment.data["ratios"]
        for name, value in ratios.items():
            _print(f"{name}: {value:.1f}x")
        return 0

    if args.command in ("table2", "table3", "table4", "table5"):
        executor = CachingJobExecutor()
        sweep = run_client_sweep(
            args.dispatcher,
            experiment=args.experiment,
            workload=args.workload,
            levels=args.levels,
            client_counts=args.clients,
            master_seed=args.seed,
            executor=executor,
        )
        if args.json:
            _print_json(sweep.json_payload())
            return 0
        _print(sweep.render())
        for level, table in sweep.speedups.items():
            if table:
                rendered = ", ".join(f"{c}: {s:.1f}x" for c, s in table.items())
                _print(f"speedups (level {level}): {rendered}")
        return 0

    if args.command == "table6":
        experiment = run_table6_heterogeneous(args.workload, levels=args.levels, master_seed=args.seed)
        if args.json:
            _print_json(experiment.json_payload())
            return 0
        _print(experiment.render())
        for name, value in experiment.data["advantages"].items():
            _print(f"{name}: RR/LM = {value:.2f}")
        return 0

    if args.command == "figures2-5":
        payloads = []
        for dispatcher in (DispatcherKind.ROUND_ROBIN, DispatcherKind.LAST_MINUTE):
            experiment = run_figure_communications(
                dispatcher,
                workload=args.workload,
                level=None if not args.levels else args.levels[0],
                n_clients=args.clients,
                master_seed=args.seed,
            )
            if args.json:
                payloads.append({"dispatcher": dispatcher.value, **experiment.json_payload()})
                continue
            _print(experiment.render())
            violations = experiment.data["violations"]
            _print("pattern check: " + ("OK" if not violations else "; ".join(violations)))
            _print("")
        if args.json:
            _print_json(payloads)
        return 0

    if args.command == "figure1":
        experiment = run_figure1_record(
            workload=args.workload,
            level=args.level,
            n_clients=args.clients,
            master_seed=args.seed,
            use_parallel=not args.sequential,
        )
        if args.json:
            _print_json(experiment.json_payload())
            return 0
        _print(experiment.render())
        _print(experiment.data["grid"])
        return 0

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
