"""Rollout profiler: per-game playout cost tables for `repro profile`.

Every search in this library — sequential or simulated-parallel — bottoms
out in :func:`repro.core.sample.sample` playouts, so the cost of a playout
*is* the cost of the system.  This module runs N seeded playouts per
registered game under :mod:`repro.obs` spans and (optionally) ``cProfile``,
and emits a per-game cost table with three consumers:

* the ROADMAP's "profile-driven rewrite of the game hot paths" item — the
  ``hotspots`` list names the functions to attack, the committed
  ``benchmarks/results/BENCH_rollout_hotpath.json`` trajectory proves each
  rewrite against the previous sessions' numbers;
* :mod:`repro.timemodel.cost` calibration — ``implied_units_per_ghz`` is the
  measured move-applications-per-second normalised to the paper's 1.86 GHz
  reference hardware, directly comparable to ``DEFAULT_UNITS_PER_GHZ``;
* the CI ``profile-smoke`` job, which asserts this document's schema so the
  profiler itself cannot rot.

The document shape (``SCHEMA`` names it)::

    {"schema": "repro.obs.rollout_hotpath.v1",
     "recorded_at": "...", "playouts_per_game": N, "assumed_freq_ghz": 1.86,
     "games": {name: {playouts, wall_seconds, work_units,
                      mean_playout_seconds, mean_playout_moves,
                      units_per_second, implied_units_per_ghz,
                      default_units_per_ghz, calibrated_units_per_ghz,
                      speedup_vs_calibrated, hotspots: [...],
                      span_summary: {...}}}}

The trajectory file is a JSON *array* of such documents; each profiling run
appends one (the same idiom as ``benchmarks/bench_kernel_stress.py``).
"""

from __future__ import annotations

import cProfile
import json
import pstats
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.counters import WorkCounter
from repro.core.sample import sample
from repro.prng import SeedSequence
from repro.timemodel.cost import DEFAULT_UNITS_PER_GHZ
from repro.workloads import get_workload

# The package facade rebinds the name ``metrics`` to the default registry,
# shadowing the submodule — resolve the real module explicitly.
import importlib

_metrics = importlib.import_module(".metrics", __package__)
_tracing = importlib.import_module(".tracing", __package__)

__all__ = [
    "SCHEMA",
    "DEFAULT_GAMES",
    "REFERENCE_FREQ_GHZ",
    "profile_game",
    "profile_games",
    "append_trajectory_entry",
    "format_cost_table",
]

#: Version tag of the emitted document (bump on incompatible shape changes).
SCHEMA = "repro.obs.rollout_hotpath.v1"

#: The paper's reference hardware frequency (Table I: 1.86 GHz).
REFERENCE_FREQ_GHZ = 1.86

#: Curated default roster: every real game at a scale where a few hundred
#: playouts finish in seconds.  ``paper-scale``/``morpion-5d``/``morpion-4d``
#: are deliberately excluded (hours-scale states); profile them explicitly.
DEFAULT_GAMES: Tuple[str, ...] = (
    "morpion-bench",
    "samegame",
    "tsp",
    "sop",
    "weakschur",
    "leftmove",
)


def profile_game(
    name: str,
    playouts: int = 200,
    seed: int = 0,
    top: int = 8,
    use_cprofile: bool = True,
) -> Dict[str, Any]:
    """Run ``playouts`` seeded playouts of workload ``name`` and cost them.

    Each playout starts from a fresh initial state with its own derived seed
    (placement-independent, like the search algorithms), runs under an
    ``obs`` span, and feeds a shared :class:`WorkCounter`.  When
    ``use_cprofile`` is true the whole batch additionally runs under
    ``cProfile`` and the top-``top`` functions by cumulative time are
    reported as ``hotspots``.
    """
    if playouts < 1:
        raise ValueError("playouts must be >= 1")
    workload = get_workload(name)
    seeds = SeedSequence(seed, "profile", name)
    counter = WorkCounter()
    profiler = cProfile.Profile() if use_cprofile else None

    with _tracing.span("profile.game", game=name, playouts=playouts) as game_span:
        wall_start = time.perf_counter()
        if profiler is not None:
            profiler.enable()
        try:
            for i in range(playouts):
                state = workload.state()
                with _tracing.span("playout", game=name):
                    sample(state, seeds=seeds.child("playout", i), counter=counter)
        finally:
            if profiler is not None:
                profiler.disable()
        wall = time.perf_counter() - wall_start

    mean_seconds = wall / playouts
    units_per_second = counter.moves / wall if wall > 0 else 0.0
    implied_units_per_ghz = units_per_second / REFERENCE_FREQ_GHZ
    # The rate pinned on the workload at registration (measured from the
    # committed pre-refactor baseline) — the ratio is the kernel speedup this
    # host observes over that baseline.
    calibrated = workload.units_per_ghz
    return {
        "playouts": playouts,
        "wall_seconds": wall,
        "work_units": counter.moves,
        "mean_playout_seconds": mean_seconds,
        "mean_playout_moves": counter.moves / playouts,
        "units_per_second": units_per_second,
        # What units_per_ghz_per_second this host's measured playout speed
        # implies at the paper's reference frequency — feed to
        # CostModel(units_per_ghz_per_second=...) to calibrate simulated time.
        "implied_units_per_ghz": implied_units_per_ghz,
        "default_units_per_ghz": DEFAULT_UNITS_PER_GHZ,
        "calibrated_units_per_ghz": calibrated,
        "speedup_vs_calibrated": (
            implied_units_per_ghz / calibrated if calibrated else None
        ),
        "hotspots": _hotspots(profiler, top) if profiler is not None else [],
        "span_summary": game_span.summary(),
    }


def _hotspots(profiler: cProfile.Profile, top: int) -> List[Dict[str, Any]]:
    """Top-``top`` functions by cumulative time, JSON-ready."""
    stats = pstats.Stats(profiler)
    rows = []
    for (filename, line, func), (cc, nc, tt, ct, _callers) in stats.stats.items():
        rows.append(
            {
                "function": f"{_shorten(filename)}:{line}:{func}",
                "ncalls": nc,
                "tottime": tt,
                "cumtime": ct,
            }
        )
    rows.sort(key=lambda r: r["cumtime"], reverse=True)
    return rows[: max(0, top)]


def _shorten(filename: str) -> str:
    """Strip everything before the package root so paths diff cleanly."""
    for anchor in ("repro/", "lib/python"):
        idx = filename.rfind(anchor)
        if idx >= 0:
            return filename[idx:]
    return filename


def profile_games(
    games: Optional[Sequence[str]] = None,
    playouts: int = 200,
    seed: int = 0,
    top: int = 8,
    use_cprofile: bool = True,
) -> Dict[str, Any]:
    """Profile every game in ``games`` (default roster) into one document."""
    names = tuple(games) if games else DEFAULT_GAMES
    was_enabled = _metrics.enabled()
    _metrics.enable()  # spans must record for span_summary to be meaningful
    try:
        per_game = {
            name: profile_game(
                name, playouts=playouts, seed=seed, top=top, use_cprofile=use_cprofile
            )
            for name in names
        }
    finally:
        if not was_enabled:
            _metrics.disable()
    return {
        "schema": SCHEMA,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "playouts_per_game": playouts,
        "assumed_freq_ghz": REFERENCE_FREQ_GHZ,
        "games": per_game,
    }


def append_trajectory_entry(path: Path, entry: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Append ``entry`` to the JSON-array trajectory at ``path``; return it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    history: List[Dict[str, Any]] = []
    if path.is_file():
        history = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(history, list):
            raise ValueError(f"{path} is not a JSON-array trajectory file")
    history.append(entry)
    path.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")
    return history


def format_cost_table(document: Dict[str, Any]) -> str:
    """Human-readable per-game cost table (the `repro profile` text output)."""
    header = (
        f"{'game':<14} {'playouts':>8} {'wall s':>9} {'ms/playout':>11} "
        f"{'moves/po':>9} {'units/s':>12} {'units/GHz':>12} {'vs base':>8}"
    )
    lines = [header, "-" * len(header)]
    for name, row in document["games"].items():
        speedup = row.get("speedup_vs_calibrated")
        vs_base = f"{speedup:.1f}x" if speedup else "-"
        lines.append(
            f"{name:<14} {row['playouts']:>8} {row['wall_seconds']:>9.3f} "
            f"{row['mean_playout_seconds'] * 1e3:>11.3f} "
            f"{row['mean_playout_moves']:>9.1f} {row['units_per_second']:>12.0f} "
            f"{row['implied_units_per_ghz']:>12.0f} {vs_base:>8}"
        )
    lines.append("")
    lines.append(
        f"assumed reference frequency: {document['assumed_freq_ghz']} GHz; "
        f"timemodel default units/GHz: {DEFAULT_UNITS_PER_GHZ:.0f}"
    )
    lines.append(
        "calibrate with CostModel(units_per_ghz_per_second=<units/GHz column>) "
        "or SearchSpec(units_per_ghz=...)"
    )
    return "\n".join(lines)
