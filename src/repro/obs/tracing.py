"""Tracing spans: nestable wall-clock regions with per-run summaries.

A span is one timed region of work::

    with obs.span("engine.run", backend="sequential") as sp:
        with obs.span("playout"):
            ...

Spans nest via a thread-local stack, so instrumented library code never
threads a context object through its call signatures.  When a span closes it
folds itself into its parent's *children summary* — ``name -> (count,
total_s)``, including grandchildren — so the root span of a run ends up with
a complete cost breakdown without keeping every child object alive.  That
summary is what :class:`repro.api.Engine` stores as ``RunReport.telemetry``.

Overhead rules match :mod:`repro.obs.metrics`: recording is off by default,
and while off :func:`span` returns a shared no-op singleton after a single
flag check — the ``with`` body always runs either way.  An optional JSONL
exporter (:func:`export_spans_to`) appends one line per *finished* span for
offline analysis; it is process-global and guarded by a lock.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, IO, List, Optional, Tuple

# Resolved via importlib because the package facade rebinds the name
# ``metrics`` to the default registry, shadowing the submodule.
import importlib

_metrics = importlib.import_module(".metrics", __package__)

__all__ = ["Span", "span", "current_span", "export_spans_to", "stop_export"]


class Span:
    """One timed region.  Create via :func:`span`, close via ``with``."""

    __slots__ = (
        "name", "attrs", "start_s", "end_s", "_children", "_tracer", "_parent",
    )

    def __init__(self, name: str, attrs: Dict[str, Any], tracer: "_Tracer") -> None:
        self.name = name
        self.attrs = attrs
        self.start_s = 0.0
        self.end_s: Optional[float] = None
        #: child name -> [count, total_s]; grandchildren fold in on child exit
        self._children: Dict[str, List[float]] = {}
        self._tracer = tracer
        self._parent: Optional[Span] = None

    # ------------------------------------------------------------------ #
    @property
    def duration_s(self) -> float:
        end = self.end_s if self.end_s is not None else time.perf_counter()
        return end - self.start_s

    def set(self, **attrs: Any) -> "Span":
        """Attach extra attributes after creation (chainable)."""
        self.attrs.update(attrs)
        return self

    def summary(self) -> Dict[str, Any]:
        """JSON-ready cost breakdown of this span and everything under it."""
        return {
            "name": self.name,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
            "children": {
                name: {"count": int(count), "total_s": total}
                for name, (count, total) in sorted(self._children.items())
            },
        }

    # ------------------------------------------------------------------ #
    def __enter__(self) -> "Span":
        self._parent = self._tracer._push(self)
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.end_s = time.perf_counter()
        self._tracer._pop(self)
        parent = self._parent
        if parent is not None:
            # Fold self plus my (already folded) descendants into the parent.
            slot = parent._children.setdefault(self.name, [0.0, 0.0])
            slot[0] += 1
            slot[1] += self.end_s - self.start_s
            for name, (count, total) in self._children.items():
                slot = parent._children.setdefault(name, [0.0, 0.0])
                slot[0] += count
                slot[1] += total
        self._tracer._export(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration_s:.6f}s" if self.end_s is not None else "open"
        return f"Span({self.name!r}, {state})"


class _NullSpan:
    """Shared do-nothing span handed out while observability is disabled."""

    __slots__ = ()
    name = ""
    attrs: Dict[str, Any] = {}
    duration_s = 0.0

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def summary(self) -> Dict[str, Any]:
        return {"name": "", "duration_s": 0.0, "attrs": {}, "children": {}}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Tracer:
    """Thread-local span stacks plus the process-global JSONL exporter."""

    def __init__(self) -> None:
        self._local = threading.local()
        self._export_lock = threading.Lock()
        self._export_fh: Optional[IO[str]] = None
        self._export_owned = False

    # -- stack ---------------------------------------------------------- #
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, sp: Span) -> Optional[Span]:
        stack = self._stack()
        parent = stack[-1] if stack else None
        stack.append(sp)
        return parent

    def _pop(self, sp: Span) -> None:
        stack = self._stack()
        # Tolerate exits out of order (a span closed twice, or enable()
        # flipped mid-span): unwind to this span if present, else ignore.
        if sp in stack:
            while stack and stack.pop() is not sp:
                pass

    def current(self) -> Optional[Span]:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    # -- export --------------------------------------------------------- #
    def export_to(self, target: Any) -> None:
        """Start appending finished spans as JSONL to a path or file object."""
        with self._export_lock:
            self._close_export_locked()
            if hasattr(target, "write"):
                self._export_fh = target
                self._export_owned = False
            else:
                self._export_fh = open(target, "a", encoding="utf-8")
                self._export_owned = True

    def stop_export(self) -> None:
        with self._export_lock:
            self._close_export_locked()

    def _close_export_locked(self) -> None:
        if self._export_fh is not None and self._export_owned:
            self._export_fh.close()
        self._export_fh = None
        self._export_owned = False

    def _export(self, sp: Span) -> None:
        if self._export_fh is None:
            return
        line = json.dumps(
            {
                "name": sp.name,
                "start_s": sp.start_s,
                "duration_s": sp.end_s - sp.start_s if sp.end_s is not None else None,
                "attrs": sp.attrs,
                "children": {
                    name: {"count": int(count), "total_s": total}
                    for name, (count, total) in sorted(sp._children.items())
                },
            },
            sort_keys=True,
        )
        with self._export_lock:
            if self._export_fh is not None:
                self._export_fh.write(line + "\n")


_TRACER = _Tracer()


def span(name: str, **attrs: Any):
    """Open a span (use as ``with obs.span("playout", game="tsp"):``).

    Returns the shared no-op span when observability is disabled, so the
    call costs one flag check and no allocation on the hot path.
    """
    if not _metrics._ENABLED:
        return _NULL_SPAN
    return Span(name, attrs, _TRACER)


def current_span() -> Optional[Span]:
    """The innermost open span on this thread, or None."""
    if not _metrics._ENABLED:
        return None
    return _TRACER.current()


def export_spans_to(target: Any) -> None:
    """Append every finished span as one JSON line to *target* (path or fh)."""
    _TRACER.export_to(target)


def stop_export() -> None:
    """Stop the JSONL exporter (closes the file if the tracer opened it)."""
    _TRACER.stop_export()
