"""`repro.obs` — the unified telemetry layer.

Three pieces, all zero-dependency and all **off by default**:

* :mod:`repro.obs.metrics` — a process-wide registry of counters, gauges
  and histograms.  Built-in instrumentation covers the engine (runs, wall
  time, cached-vs-executed cells), the result store (hits/misses/writes/
  lock-wait), the job service (queue depth, rejections, per-client
  throughput, job latency) and the cluster kernel (events and simulated
  seconds per run).  Exposed live via the service's ``metrics`` verb and
  the ``repro stats`` CLI, as JSON or Prometheus text.
* :mod:`repro.obs.tracing` — nestable wall-clock spans
  (``with obs.span("playout", game=...)``) with per-run summaries;
  ``Engine.run`` attaches the root summary as ``RunReport.telemetry``.
* :mod:`repro.obs.profiler` — the rollout profiler behind
  ``repro profile``, emitting the per-game cost table committed as
  ``benchmarks/results/BENCH_rollout_hotpath.json``.

Enable with :func:`enable` (``repro serve`` and ``repro profile`` do this
themselves) or ``REPRO_OBS=1`` in the environment.  While disabled, every
instrumentation point costs a single flag check, spans are a shared no-op
singleton, and golden regression outputs are bit-identical — metrics never
touch the PRNG or simulated time.

Typical use::

    from repro import obs

    obs.enable()
    hits = obs.metrics.counter("myapp_hits_total", "requests served")
    hits.inc()
    with obs.span("request", route="/search"):
        ...
    print(obs.metrics.render_prometheus())
"""

from __future__ import annotations

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable,
    enable,
    enabled,
    get_registry,
)
from .tracing import Span, current_span, export_spans_to, span, stop_export

__all__ = [
    "metrics",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "get_registry",
    "enable",
    "disable",
    "enabled",
    "span",
    "Span",
    "current_span",
    "export_spans_to",
    "stop_export",
    "reset",
]

#: The process-wide default registry (what built-in instrumentation uses).
metrics = get_registry()


def reset() -> None:
    """Zero every metric series in the default registry (tests, mostly)."""
    metrics.reset()
