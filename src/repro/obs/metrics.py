"""Process-wide metrics registry: counters, gauges and histograms.

The registry is the numeric half of :mod:`repro.obs` (spans are the other —
see :mod:`repro.obs.tracing`).  Design constraints, in order:

* **zero dependencies** — plain stdlib, importable from every layer
  (``repro.api``, ``repro.lab.store``, the kernel) without cycles;
* **thread-safe** — the service's worker pool and the engine's thread pool
  update the same counters concurrently; every mutation happens under the
  owning family's lock;
* **zero overhead when disabled** — observability is *opt-in*
  (:func:`enable`, or ``REPRO_OBS=1`` in the environment).  While disabled,
  every ``inc``/``set``/``observe`` returns after one module-global flag
  check, so instrumented hot paths cost one predictable branch.  Golden
  regression outputs are bit-identical either way: metrics never touch the
  PRNG or the simulated clock;
* **fixed histogram buckets** — boundaries are declared at registration
  (Prometheus style, upper-inclusive ``le`` edges plus an implicit ``+Inf``),
  so merging/rendering never re-bins.

Metric *families* are named once (re-registration with the same type and
shape returns the existing family; a conflicting shape raises) and may
declare label names; :meth:`Counter.labels` etc. return lightweight child
handles bound to one label value tuple.  :meth:`MetricsRegistry.snapshot`
renders everything as plain JSON data (the service's ``metrics`` verb), and
:meth:`MetricsRegistry.render_prometheus` as Prometheus text exposition.

>>> from repro import obs
>>> obs.enable()
>>> hits = obs.metrics.counter("demo_hits_total", "demo counter")
>>> hits.inc()
>>> obs.metrics.snapshot()["demo_hits_total"]["values"][0]["value"]
1.0
>>> obs.disable()
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "get_registry",
    "enabled",
    "enable",
    "disable",
]

#: Default latency buckets (seconds): sub-millisecond demo jobs up to
#: minute-scale sweeps, log-ish spacing.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

#: The obs-wide on/off switch (shared with tracing).  Off by default so the
#: library costs nothing unless a caller opts in; ``REPRO_OBS=1`` opts the
#: whole process in at import time (useful for benchmarks and one-off runs).
_ENABLED: bool = os.environ.get("REPRO_OBS", "") not in ("", "0")


def enabled() -> bool:
    """Whether observability (metrics + spans) is currently recording."""
    return _ENABLED


def enable() -> None:
    """Turn recording on for the whole process (idempotent)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn recording off (instrumented code keeps running, records nothing)."""
    global _ENABLED
    _ENABLED = False


class _Family:
    """Shared plumbing of one named metric family (labels, lock, children)."""

    kind: str = "untyped"

    def __init__(self, name: str, help: str, labelnames: Tuple[str, ...]) -> None:
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._lock = threading.Lock()
        #: label-value tuple -> per-series storage (type-specific)
        self._series: Dict[Tuple[str, ...], Any] = {}

    # -- label resolution ------------------------------------------------ #
    _NO_LABELS: Tuple[str, ...] = ()

    def _key(self, labels: Mapping[str, Any]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} declares labels {self.labelnames}; got "
                f"{tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _check_unlabelled(self) -> None:
        if self.labelnames:
            raise ValueError(
                f"metric {self.name!r} declares labels {self.labelnames}; "
                "use .labels(...) to pick a series"
            )

    def shape(self) -> Tuple[Any, ...]:
        """What must match for re-registration to be considered identical."""
        return (self.kind, self.labelnames)

    # -- rendering ------------------------------------------------------- #
    def _label_dict(self, key: Tuple[str, ...]) -> Dict[str, str]:
        return dict(zip(self.labelnames, key))

    def _prom_labels(self, key: Tuple[str, ...], extra: str = "") -> str:
        parts = [f'{n}="{v}"' for n, v in zip(self.labelnames, key)]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""


class Counter(_Family):
    """A monotonically increasing value (events, items, rejections)."""

    kind = "counter"

    def labels(self, **labels: Any) -> "_CounterChild":
        return _CounterChild(self, self._key(labels))

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabelled series (family must declare no labels)."""
        self._check_unlabelled()
        _CounterChild(self, self._NO_LABELS).inc(amount)

    def value(self, **labels: Any) -> float:
        key = self._key(labels) if labels or self.labelnames else self._NO_LABELS
        with self._lock:
            return self._series.get(key, 0.0)

    def _snapshot_values(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [
                {"labels": self._label_dict(key), "value": value}
                for key, value in sorted(self._series.items())
            ]

    def _render_prom(self, lines: List[str]) -> None:
        with self._lock:
            series = sorted(self._series.items())
        for key, value in series:
            lines.append(f"{self.name}{self._prom_labels(key)} {_fmt(value)}")


class _CounterChild:
    __slots__ = ("_family", "_key")

    def __init__(self, family: Counter, key: Tuple[str, ...]) -> None:
        self._family = family
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        if not _ENABLED:
            return
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for decrements")
        family = self._family
        with family._lock:
            family._series[self._key] = family._series.get(self._key, 0.0) + amount


class Gauge(_Family):
    """A value that goes up and down (queue depth, in-flight jobs)."""

    kind = "gauge"

    def labels(self, **labels: Any) -> "_GaugeChild":
        return _GaugeChild(self, self._key(labels))

    def set(self, value: float) -> None:
        self._check_unlabelled()
        _GaugeChild(self, self._NO_LABELS).set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._check_unlabelled()
        _GaugeChild(self, self._NO_LABELS).inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._check_unlabelled()
        _GaugeChild(self, self._NO_LABELS).inc(-amount)

    def value(self, **labels: Any) -> float:
        key = self._key(labels) if labels or self.labelnames else self._NO_LABELS
        with self._lock:
            return self._series.get(key, 0.0)

    _snapshot_values = Counter._snapshot_values
    _render_prom = Counter._render_prom


class _GaugeChild:
    __slots__ = ("_family", "_key")

    def __init__(self, family: Gauge, key: Tuple[str, ...]) -> None:
        self._family = family
        self._key = key

    def set(self, value: float) -> None:
        if not _ENABLED:
            return
        family = self._family
        with family._lock:
            family._series[self._key] = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not _ENABLED:
            return
        family = self._family
        with family._lock:
            family._series[self._key] = family._series.get(self._key, 0.0) + amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Histogram(_Family):
    """Observations binned into fixed, upper-inclusive bucket boundaries.

    Storage per series is ``[per-bucket counts..., +Inf count, sum, count]``;
    snapshots and Prometheus text render *cumulative* bucket counts (the
    ``le`` convention), so a value equal to a boundary lands in that bucket.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Tuple[str, ...],
        buckets: Tuple[float, ...],
    ) -> None:
        super().__init__(name, help, labelnames)
        if not buckets:
            raise ValueError("a histogram needs at least one bucket boundary")
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError(f"bucket boundaries must be strictly increasing: {buckets}")
        self.buckets = tuple(float(b) for b in buckets)

    def shape(self) -> Tuple[Any, ...]:
        return (self.kind, self.labelnames, self.buckets)

    def labels(self, **labels: Any) -> "_HistogramChild":
        return _HistogramChild(self, self._key(labels))

    def observe(self, value: float) -> None:
        self._check_unlabelled()
        _HistogramChild(self, self._NO_LABELS).observe(value)

    def time(self) -> "_HistogramTimer":
        """Context manager observing the elapsed wall time of its block."""
        self._check_unlabelled()
        return _HistogramTimer(_HistogramChild(self, self._NO_LABELS))

    def _new_series(self) -> List[float]:
        return [0.0] * (len(self.buckets) + 1) + [0.0, 0.0]  # buckets+inf, sum, n

    def stats(self, **labels: Any) -> Dict[str, Any]:
        """``{"count", "sum", "buckets"}`` of one series (cumulative counts)."""
        key = self._key(labels) if labels or self.labelnames else self._NO_LABELS
        with self._lock:
            series = list(self._series.get(key) or self._new_series())
        return self._render_series(series)

    def _render_series(self, series: List[float]) -> Dict[str, Any]:
        cumulative: Dict[str, float] = {}
        running = 0.0
        for boundary, count in zip(self.buckets, series):
            running += count
            cumulative[_fmt(boundary)] = running
        cumulative["+Inf"] = running + series[len(self.buckets)]
        return {
            "buckets": cumulative,
            "sum": series[-2],
            "count": series[-1],
        }

    def _snapshot_values(self) -> List[Dict[str, Any]]:
        with self._lock:
            items = sorted((k, list(v)) for k, v in self._series.items())
        return [
            {"labels": self._label_dict(key), **self._render_series(series)}
            for key, series in items
        ]

    def _render_prom(self, lines: List[str]) -> None:
        for entry in self._snapshot_values():
            key = tuple(entry["labels"].get(n, "") for n in self.labelnames)
            for boundary, count in entry["buckets"].items():
                le = 'le="%s"' % boundary
                lines.append(
                    f"{self.name}_bucket{self._prom_labels(key, le)} {_fmt(count)}"
                )
            lines.append(f"{self.name}_sum{self._prom_labels(key)} {_fmt(entry['sum'])}")
            lines.append(f"{self.name}_count{self._prom_labels(key)} {_fmt(entry['count'])}")


class _HistogramChild:
    __slots__ = ("_family", "_key")

    def __init__(self, family: Histogram, key: Tuple[str, ...]) -> None:
        self._family = family
        self._key = key

    def observe(self, value: float) -> None:
        if not _ENABLED:
            return
        family = self._family
        with family._lock:
            series = family._series.get(self._key)
            if series is None:
                series = family._series[self._key] = family._new_series()
            index = len(family.buckets)  # +Inf slot unless a boundary holds it
            for i, boundary in enumerate(family.buckets):
                if value <= boundary:
                    index = i
                    break
            series[index] += 1.0
            series[-2] += value
            series[-1] += 1.0

    def time(self) -> "_HistogramTimer":
        return _HistogramTimer(self)


class _HistogramTimer:
    __slots__ = ("_child", "_start")

    def __init__(self, child: _HistogramChild) -> None:
        self._child = child
        self._start = 0.0

    def __enter__(self) -> "_HistogramTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._child.observe(time.perf_counter() - self._start)


def _fmt(value: float) -> str:
    """Render a number the Prometheus way (integers without trailing .0)."""
    if value == float("inf"):
        return "+Inf"
    as_int = int(value)
    return str(as_int) if value == as_int else repr(value)


class MetricsRegistry:
    """A named collection of metric families.

    One process-wide default registry (:func:`get_registry`) backs all the
    library's built-in instrumentation; private registries are for tests and
    embedders that want isolation.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    # ------------------------------------------------------------------ #
    # Registration (idempotent per name; shape conflicts raise)
    # ------------------------------------------------------------------ #
    def _register(self, family: _Family) -> _Family:
        with self._lock:
            existing = self._families.get(family.name)
            if existing is not None:
                if existing.shape() != family.shape():
                    raise ValueError(
                        f"metric {family.name!r} already registered with a "
                        f"different shape: {existing.shape()} != {family.shape()}"
                    )
                return existing
            self._families[family.name] = family
            return family

    def counter(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> Counter:
        family = self._register(Counter(name, help, tuple(labelnames)))
        assert isinstance(family, Counter)
        return family

    def gauge(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Gauge:
        family = self._register(Gauge(name, help, tuple(labelnames)))
        assert isinstance(family, Gauge)
        return family

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        family = self._register(Histogram(name, help, tuple(labelnames), tuple(buckets)))
        assert isinstance(family, Histogram)
        return family

    def get(self, name: str) -> Optional[_Family]:
        with self._lock:
            return self._families.get(name)

    # ------------------------------------------------------------------ #
    # Exposition
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, Any]:
        """Everything, as JSON-ready data (the service's ``metrics`` verb)."""
        with self._lock:
            families = sorted(self._families.items())
        return {
            name: {
                "type": family.kind,
                "help": family.help,
                "labelnames": list(family.labelnames),
                **({"buckets": list(family.buckets)} if isinstance(family, Histogram) else {}),
                "values": family._snapshot_values(),
            }
            for name, family in families
        }

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (one family per HELP/TYPE block)."""
        lines: List[str] = []
        with self._lock:
            families = sorted(self._families.items())
        for name, family in families:
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            family._render_prom(lines)
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Zero every series (registrations survive — handles stay valid)."""
        with self._lock:
            families = list(self._families.values())
        for family in families:
            with family._lock:
                family._series.clear()

    # ------------------------------------------------------------------ #
    # Cross-process merging
    # ------------------------------------------------------------------ #
    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        This is how child *processes* report home: a sweep worker snapshots
        its own registry after each chunk, ships the JSON over the result
        queue, and the parent merges it here so ``repro stats`` counts work
        done anywhere in the process tree.  Semantics per metric type:

        * **counters** and **histograms** are additive — every bucket/sum/
          count/value in the snapshot is added to the local series (the
          caller must therefore send *deltas*, i.e. reset the child registry
          after each snapshot, or the same work is double-counted);
        * **gauges** take the incoming value (a level, not an increment).

        Families absent locally are registered from the snapshot's own
        metadata (type/help/labelnames/buckets); a family that exists with a
        conflicting shape raises, same as live re-registration.  Series are
        mutated directly under the family lock, so merged values land even
        while recording is disabled — a disabled parent still reflects an
        enabled child's telemetry truthfully.
        """
        for name, data in snapshot.items():
            kind = data.get("type")
            labelnames = tuple(data.get("labelnames", ()))
            help_text = data.get("help", "")
            if kind == "counter":
                family: _Family = self.counter(name, help_text, labelnames)
            elif kind == "gauge":
                family = self.gauge(name, help_text, labelnames)
            elif kind == "histogram":
                family = self.histogram(
                    name, help_text, labelnames, tuple(data.get("buckets", DEFAULT_BUCKETS))
                )
            else:
                raise ValueError(f"cannot merge metric {name!r} of unknown type {kind!r}")
            for entry in data.get("values", ()):
                labels = entry.get("labels", {})
                key = tuple(str(labels.get(n, "")) for n in labelnames)
                if isinstance(family, Histogram):
                    deltas = _histogram_series_from(family, entry)
                    with family._lock:
                        series = family._series.get(key)
                        if series is None:
                            series = family._series[key] = family._new_series()
                        for i, delta in enumerate(deltas):
                            series[i] += delta
                elif isinstance(family, Gauge):
                    with family._lock:
                        family._series[key] = float(entry["value"])
                else:
                    with family._lock:
                        family._series[key] = family._series.get(key, 0.0) + float(
                            entry["value"]
                        )


def _histogram_series_from(family: Histogram, entry: Mapping[str, Any]) -> List[float]:
    """Raw storage deltas (per-bucket, +Inf, sum, count) of one snapshot entry.

    Snapshots render *cumulative* ``le`` counts; merging needs the per-bucket
    increments back, so this undoes the running sum against the family's own
    boundaries (snapshot and family buckets are guaranteed to match — a shape
    conflict would have raised at registration).
    """
    cumulative = entry.get("buckets", {})
    raw: List[float] = []
    running = 0.0
    for boundary in family.buckets:
        value = float(cumulative.get(_fmt(boundary), running))
        raw.append(value - running)
        running = value
    raw.append(float(cumulative.get("+Inf", running)) - running)
    raw.append(float(entry.get("sum", 0.0)))
    raw.append(float(entry.get("count", 0.0)))
    return raw


_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry all built-in instrumentation reports to."""
    return _DEFAULT_REGISTRY
