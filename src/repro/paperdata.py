"""The paper's reported measurements (Tables I–VI), as machine-readable data.

Every duration quoted in Section V of the paper is recorded here in seconds,
with the standard deviation when the paper gives one and ``single_run=True``
for the parenthesised single-run entries.  EXPERIMENTS.md and the benchmark
harness use these values to compare the *shape* of our simulated results
(speedups, RR-vs-LM orderings, level ratios) against the published numbers —
never the absolute seconds, which belong to the authors' C + MPI code and
hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.analysis.timefmt import parse_hms

__all__ = [
    "PaperTime",
    "TABLE_I",
    "TABLE_II",
    "TABLE_III",
    "TABLE_IV",
    "TABLE_V",
    "TABLE_VI",
    "PAPER_SPEEDUPS",
    "paper_speedup",
]


@dataclass(frozen=True)
class PaperTime:
    """One duration reported by the paper."""

    seconds: float
    std_seconds: Optional[float] = None
    single_run: bool = False

    @classmethod
    def of(cls, text: str, std: Optional[str] = None, single_run: bool = False) -> "PaperTime":
        return cls(
            seconds=parse_hms(text),
            std_seconds=parse_hms(std) if std else None,
            single_run=single_run,
        )


# --------------------------------------------------------------------------- #
# Table I — sequential algorithm (level -> {"first_move", "rollout"})
# --------------------------------------------------------------------------- #
TABLE_I: Dict[int, Dict[str, PaperTime]] = {
    3: {
        "first_move": PaperTime.of("08m03s", "19s"),
        "rollout": PaperTime.of("1h07m33s", "42s"),
    },
    4: {
        "first_move": PaperTime.of("28h00m06s", "58m55s"),
        "rollout": PaperTime.of("09d18h58m", single_run=True),
    },
}

# --------------------------------------------------------------------------- #
# Tables II-V — parallel times ({clients: {level: PaperTime}})
# --------------------------------------------------------------------------- #
TABLE_II: Dict[int, Dict[int, PaperTime]] = {  # Round-Robin, first move
    64: {3: PaperTime.of("10s", "1s"), 4: PaperTime.of("33m11s", "1m33s")},
    32: {3: PaperTime.of("20s", "2s"), 4: PaperTime.of("1h04m44s", "3m02s")},
    16: {3: PaperTime.of("37s", "5s"), 4: PaperTime.of("2h10m", single_run=True)},
    8: {3: PaperTime.of("01m11s", "8s")},
    4: {3: PaperTime.of("02m22s", "11s")},
    1: {3: PaperTime.of("09m07s", "28s"), 4: PaperTime.of("29h56m14s", single_run=True)},
}

TABLE_III: Dict[int, Dict[int, PaperTime]] = {  # Round-Robin, rollout
    64: {3: PaperTime.of("01m52s", "8s"), 4: PaperTime.of("5h09m16s", "5m40s")},
    32: {3: PaperTime.of("03m08s", "26s"), 4: PaperTime.of("6h31m", single_run=True)},
    16: {3: PaperTime.of("05m22s", "29s")},
    8: {3: PaperTime.of("10m18s", "1m21s")},
    4: {3: PaperTime.of("21m41s", "3m13s")},
    1: {3: PaperTime.of("1h26m28s")},
}

TABLE_IV: Dict[int, Dict[int, PaperTime]] = {  # Last-Minute, first move
    64: {3: PaperTime.of("09s", "2s"), 4: PaperTime.of("27m20s", "1m22s")},
    32: {3: PaperTime.of("19s", "1s"), 4: PaperTime.of("59m44s", "2m21s")},
    16: {3: PaperTime.of("37s", "4s"), 4: PaperTime.of("2h05m17s", single_run=True)},
    8: {3: PaperTime.of("01m12s", "5s")},
    4: {3: PaperTime.of("02m23s", "4s")},
    1: {3: PaperTime.of("09m30s", "21s"), 4: PaperTime.of("33h06m57s", single_run=True)},
}

TABLE_V: Dict[int, Dict[int, PaperTime]] = {  # Last-Minute, rollout
    64: {3: PaperTime.of("01m32s", "5s"), 4: PaperTime.of("4h10m09s", "24m04s")},
    32: {3: PaperTime.of("02m43s", "16s"), 4: PaperTime.of("6h58m21s", "52m42s")},
    16: {3: PaperTime.of("05m35s", "40s")},
    8: {3: PaperTime.of("11m33s", "1m34s")},
    4: {3: PaperTime.of("19m51s", "3m34s")},
    1: {3: PaperTime.of("1h31m40s")},
}

# --------------------------------------------------------------------------- #
# Table VI — heterogeneous repartitions, first move
#   keyed by (configuration, algorithm) -> {level: PaperTime}
# --------------------------------------------------------------------------- #
TABLE_VI: Dict[Tuple[str, str], Dict[int, PaperTime]] = {
    ("16x4+16x2", "LM"): {3: PaperTime.of("14s", "2s"), 4: PaperTime.of("28m37s", "1m30s")},
    ("16x4+16x2", "RR"): {3: PaperTime.of("16s", "2s"), 4: PaperTime.of("45m17s", "1m19s")},
    ("8x4+8x2", "LM"): {3: PaperTime.of("18s", "3s"), 4: PaperTime.of("58m21s", "2m44s")},
    ("8x4+8x2", "RR"): {3: PaperTime.of("25s", "2s"), 4: PaperTime.of("1h24m11s", "3m24s")},
}

# --------------------------------------------------------------------------- #
# Headline speedups quoted in the text of Section V.
# --------------------------------------------------------------------------- #
PAPER_SPEEDUPS: Dict[str, float] = {
    "rr_first_move_64_clients_level3": 56.0,
    "rr_first_move_64_clients_level3_frequency_corrected": 51.0,
    "rr_first_move_32_clients_level3": 29.8,
    "rr_first_move_32_clients_level4": 28.50,
    "rr_rollout_64_clients_level3": 44.0,
    "lm_first_move_32_clients_level4": 30.0,
    "lm_rollout_64_clients_level4": 56.0,
    "frequency_ratio_r": 1.09,
    "table1_level4_over_level3_first_move": 207.0,
    "table1_rollout_over_first_move_level3": 9.0,
}


def paper_speedup(table: Mapping[int, Dict[int, PaperTime]], clients: int, level: int) -> float:
    """Speedup implied by a paper table: time(1 client) / time(``clients``)."""
    baseline = table[1][level].seconds
    return baseline / table[clients][level].seconds
