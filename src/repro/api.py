"""Unified declarative API: one entry point for every algorithm × game × backend.

The paper's core claim is that the *same* nested search runs sequentially, on
Round-Robin or on Last-Minute dispatching, with different time/score
trade-offs.  This module makes that claim executable as a one-liner: describe
a scenario with a :class:`SearchSpec` (what to search, how, and on which
execution substrate) and hand it to an :class:`Engine`; every combination
returns the same :class:`RunReport` schema, so scenarios differ by *one field
of a spec*, never by which function you call.

>>> from repro.api import Engine, SearchSpec
>>> engine = Engine()
>>> seq = engine.run(SearchSpec(workload="morpion-small", max_steps=1))
>>> lm = engine.run(SearchSpec(workload="morpion-small", max_steps=1,
...                            backend="sim-cluster", dispatcher="lm", n_clients=8))
>>> seq.score == lm.score  # same search, different substrate
True

Extensibility is registry-based:

* :func:`register_algorithm` adds a sequential search conforming to the
  ``(state, level, seeds, counter, budget, params) -> SearchResult`` protocol
  (the six bundled searches — sample, flat, nmcs, reflexive, iterated,
  nrpa — are registered this way);
* :func:`register_backend` adds an execution substrate conforming to the
  ``(spec, algorithm, ctx) -> RunReport`` protocol (bundled: ``sequential``,
  ``sim-cluster`` on the discrete-event kernel, ``multiprocessing``,
  ``threads``).

Specs and reports serialise to/from dict and JSON (:meth:`SearchSpec.to_json`,
:meth:`SearchSpec.from_json`, :meth:`RunReport.to_json`), so sweeps can be
stored, shipped to workers, or diffed between sessions.

Batches are first-class: :meth:`Engine.stream` executes a list of specs or a
whole :class:`repro.lab.sweep.SweepSpec` as a lazy stream of
:class:`RunEvent`\\ s (started / cached / completed / failed per cell) with an
error policy, cancellation and an optional worker pool, and
:meth:`Engine.run_many` collects that stream into reports.  Attaching a
:class:`repro.lab.store.ResultStore` makes batches durable and resumable:
completed cells are persisted under their content address and skipped on
re-runs (see ``docs/SWEEPS.md``).
"""

from __future__ import annotations

import dataclasses
import enum
import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field, replace
from types import MappingProxyType
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.cluster.network import NetworkModel
from repro.cluster.topology import (
    ClusterSpec,
    heterogeneous_cluster,
    homogeneous_cluster,
    paper_cluster,
    single_machine,
)
from repro.core.counters import WorkCounter
from repro.core.flat import flat_monte_carlo
from repro.core.iterated import iterated_search
from repro.core.nested import nested_search
from repro.core.nrpa import nrpa_search
from repro.core.reflexive import reflexive_search
from repro.core.result import SearchResult
from repro.core.sample import sample
from repro.games.base import GameState, Move
from repro.parallel.config import DispatcherKind, ParallelConfig
from repro.parallel.driver import run_parallel_nmcs
from repro.parallel.jobs import CachingJobExecutor, JobExecutor
from repro.parallel.multiproc import multiprocessing_nmcs
from repro.parallel.threads import threaded_nmcs
from repro.obs import metrics as _obs_metrics
from repro.obs import span as _obs_span
from repro.obs import enabled as _obs_enabled
from repro.prng import SeedSequence
from repro.timemodel.cost import CostModel
from repro.workloads import Workload, get_workload

if TYPE_CHECKING:  # pragma: no cover - lab imports api; annotations only here
    from repro.lab.store import ResultStore
    from repro.lab.sweep import SweepSpec

__all__ = [
    "SearchSpec",
    "RunReport",
    "RunContext",
    "RunEvent",
    "Engine",
    "AlgorithmEntry",
    "BackendEntry",
    "register_algorithm",
    "register_backend",
    "list_algorithms",
    "list_backends",
    "build_cluster",
    "to_jsonable",
]


# --------------------------------------------------------------------------- #
# Telemetry (no-ops unless repro.obs is enabled)
# --------------------------------------------------------------------------- #
_RUNS_TOTAL = _obs_metrics.counter(
    "repro_engine_runs_total",
    "Engine.run calls completed, by execution backend",
    labelnames=("backend",),
)
_RUN_SECONDS = _obs_metrics.histogram(
    "repro_engine_run_seconds",
    "wall-clock seconds per Engine.run, by execution backend",
    labelnames=("backend",),
)
_CELLS_TOTAL = _obs_metrics.counter(
    "repro_engine_cells_total",
    "batch cells streamed by Engine.stream, by event kind",
    labelnames=("kind",),
)
#: Pre-bound children so the stream hot path pays one flag check per event.
_CELL_EVENTS = {
    kind: _CELLS_TOTAL.labels(kind=kind)
    for kind in ("started", "cached", "completed", "failed")
}


# --------------------------------------------------------------------------- #
# JSON support
# --------------------------------------------------------------------------- #
def to_jsonable(obj: Any) -> Any:
    """Best-effort conversion of experiment payloads into JSON-serialisable data.

    Handles the containers and dataclasses produced by this library; anything
    without an obvious JSON form (game moves, search results) falls back to
    ``repr``, which is stable for the bundled domains.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return to_jsonable(obj.value)
    if hasattr(obj, "to_dict") and callable(obj.to_dict):
        return to_jsonable(obj.to_dict())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: to_jsonable(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
    if isinstance(obj, Mapping):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in obj]
    if hasattr(obj, "item") and callable(obj.item):  # numpy scalars
        try:
            return to_jsonable(obj.item())
        except (TypeError, ValueError):
            pass
    return repr(obj)


# --------------------------------------------------------------------------- #
# The declarative spec
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SearchSpec:
    """A complete, serialisable description of one search scenario.

    Attributes
    ----------
    workload:
        Named workload (see :mod:`repro.workloads`).  Looked up lazily: the
        name is only resolved when the engine actually needs a state or a
        default level, so specs for programmatically supplied states may carry
        any label.
    algorithm / backend:
        Registry names (see :func:`list_algorithms` / :func:`list_backends`).
    level:
        Nesting level; ``None`` uses the workload's low level.
    seed:
        Master random seed (same derivation as the legacy entry points, so
        scores are comparable across backends and with the old functions).
    max_steps:
        Budget on root moves: ``1`` is the paper's "first move" experiment,
        ``None`` plays the full game ("one rollout").
    dispatcher:
        ``"rr"`` / ``"lm"`` (any :meth:`DispatcherKind.parse` alias); used by
        the ``sim-cluster`` backend, ignored elsewhere.
    cluster:
        Cluster descriptor for the simulated backend: ``"homogeneous"``,
        ``"paper"``, ``"paper-mix"`` (homogeneous up to 32 clients, the
        paper's mixed cluster above), ``"single"`` or
        ``"heterogeneous:<N>x<a>+<M>x<b>"`` (Table VI style).
    n_clients / n_medians:
        Simulated cluster sizing.
    n_workers:
        Local pool size for the ``multiprocessing`` / ``threads`` backends
        (``None`` = backend default).
    freq_ghz / units_per_ghz:
        Cost-model parameters mapping work units to simulated seconds.
    memorize_best_sequence:
        Keep the globally best sequence at root/median level (paper
        pseudo-code ablation switch).
    params:
        Algorithm-specific extras (e.g. ``{"iterations": 4}`` for NRPA,
        ``{"restarts": 8}`` for iterated NMCS, ``{"lm_fifo_jobs": true}`` for
        the Last-Minute FIFO ablation).
    """

    workload: str = "morpion-small"
    algorithm: str = "nmcs"
    backend: str = "sequential"
    level: Optional[int] = None
    seed: int = 0
    max_steps: Optional[int] = None
    dispatcher: Optional[str] = None
    cluster: str = "homogeneous"
    n_clients: int = 8
    n_medians: int = 40
    n_workers: Optional[int] = None
    freq_ghz: float = 1.86
    units_per_ghz: Optional[float] = None
    memorize_best_sequence: bool = True
    params: Mapping[str, Any] = field(default_factory=dict, hash=False)

    def __post_init__(self) -> None:
        # A read-only view keeps the frozen contract honest (no mutation via
        # spec.params) and excluding it from __hash__ keeps specs hashable.
        object.__setattr__(self, "params", MappingProxyType(dict(self.params)))
        if self.level is not None and self.level < 0:
            raise ValueError("level must be >= 0 when given")
        if self.max_steps is not None and self.max_steps < 1:
            raise ValueError("max_steps must be >= 1 when given")
        if self.n_clients < 1:
            raise ValueError("n_clients must be >= 1")
        if self.n_medians < 1:
            raise ValueError("n_medians must be >= 1")
        if self.n_workers is not None and self.n_workers < 1:
            raise ValueError("n_workers must be >= 1 when given")
        if self.freq_ghz <= 0:
            raise ValueError("freq_ghz must be positive")
        if self.units_per_ghz is not None and self.units_per_ghz <= 0:
            raise ValueError("units_per_ghz must be positive when given")
        if self.dispatcher is not None:
            DispatcherKind.parse(self.dispatcher)  # fail early on typos

    def replace(self, **changes: Any) -> "SearchSpec":
        """A copy of this spec with the given fields changed."""
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form; round-trips exactly via :meth:`from_dict`.

        Field values are kept verbatim (no lossy coercion); :meth:`to_json`
        therefore raises on ``params`` values that have no JSON form rather
        than silently stringifying them.  JSON itself has no tuple type, so a
        tuple-valued param survives the *dict* round-trip but comes back as a
        list from the *JSON* one.
        """
        data = {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}
        data["params"] = dict(self.params)
        return data

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SearchSpec":
        """Build a spec from a dict, rejecting unknown keys with a helpful message."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown SearchSpec fields: {', '.join(unknown)}; "
                f"known fields: {', '.join(sorted(known))}"
            )
        return cls(**dict(data))

    @classmethod
    def from_json(cls, text: str) -> "SearchSpec":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("a SearchSpec JSON document must be an object")
        return cls.from_dict(data)


# --------------------------------------------------------------------------- #
# The unified report
# --------------------------------------------------------------------------- #
@dataclass
class RunReport:
    """What every backend returns: one schema for all algorithm × backend pairs.

    ``raw`` keeps the backend-native result object (``SearchResult``,
    ``ParallelRunResult``, ``MultiprocessResult``, ...) for callers that need
    substrate-specific detail (e.g. the execution trace); it is excluded from
    the serialised form.
    """

    spec: SearchSpec
    algorithm: str
    backend: str
    level: int
    score: float
    sequence: Tuple[Move, ...] = ()
    work_units: Optional[float] = None
    simulated_seconds: Optional[float] = None
    wall_seconds: float = 0.0
    n_jobs: Optional[int] = None
    n_workers: Optional[int] = None
    comm: Optional[Dict[str, int]] = None
    client_utilisation: Optional[float] = None
    #: Event-loop diagnostics of simulated backends (see
    #: :class:`repro.cluster.simulator.KernelStats`; None for real substrates).
    kernel_stats: Optional[Dict[str, Any]] = None
    #: Span-summary cost breakdown of the run (see :mod:`repro.obs.tracing`);
    #: populated by :meth:`Engine.run` only while observability is enabled.
    telemetry: Optional[Dict[str, Any]] = None
    raw: Any = field(default=None, repr=False, compare=False)

    @property
    def sequence_length(self) -> int:
        return len(self.sequence)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (moves rendered with ``repr``, ``raw`` dropped).

        Strings pass through unrendered, so a report rebuilt with
        :meth:`from_dict` (whose sequence is already the rendered strings)
        re-serialises to the identical document instead of double-quoting.
        """
        return {
            "spec": self.spec.to_dict(),
            "algorithm": self.algorithm,
            "backend": self.backend,
            "level": self.level,
            "score": self.score,
            "sequence": [
                move if isinstance(move, str) else repr(move)
                for move in self.sequence
            ],
            "sequence_length": self.sequence_length,
            "work_units": self.work_units,
            "simulated_seconds": self.simulated_seconds,
            "wall_seconds": self.wall_seconds,
            "n_jobs": self.n_jobs,
            "n_workers": self.n_workers,
            "comm": to_jsonable(self.comm),
            "client_utilisation": self.client_utilisation,
            "kernel_stats": to_jsonable(self.kernel_stats),
            "telemetry": to_jsonable(self.telemetry),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], *, raw: Any = None) -> "RunReport":
        """Rebuild a report from its :meth:`to_dict` form.

        The round-trip is exact for every numeric/count field; ``sequence``
        comes back as the rendered move strings (``to_dict`` serialises moves
        with ``repr``), so callers needing replayable ``Move`` objects must
        re-run the spec instead.  ``raw`` attaches provenance (e.g. the store
        record or wire message the report was decoded from).
        """
        return cls(
            spec=SearchSpec.from_dict(data["spec"]),
            algorithm=data["algorithm"],
            backend=data["backend"],
            level=data["level"],
            score=data["score"],
            sequence=tuple(data.get("sequence", ())),
            work_units=data.get("work_units"),
            simulated_seconds=data.get("simulated_seconds"),
            wall_seconds=data.get("wall_seconds", 0.0),
            n_jobs=data.get("n_jobs"),
            n_workers=data.get("n_workers"),
            comm=data.get("comm"),
            client_utilisation=data.get("client_utilisation"),
            kernel_stats=data.get("kernel_stats"),
            telemetry=data.get("telemetry"),
            raw=raw,
        )


# --------------------------------------------------------------------------- #
# Registries
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class AlgorithmEntry:
    """A registered sequential search algorithm.

    ``fn`` follows the protocol
    ``(state, level, seeds, counter, budget, params) -> SearchResult`` where
    ``budget`` is the root-move cap (``None`` = play to the end) and
    ``params`` the spec's algorithm-specific extras.  Algorithms with no
    notion of a root-move cap register ``supports_budget=False``; the engine
    then rejects specs with ``max_steps`` set instead of silently running
    unbounded while the report claims otherwise.

    ``params`` declares the parameter names the algorithm reads, so the
    engine can reject typos (``playout_per_move``) loudly instead of
    silently ignoring them; ``None`` opts out of validation entirely (the
    algorithm accepts arbitrary keys).
    """

    name: str
    fn: Callable[..., SearchResult]
    description: str = ""
    seed_label: str = "nmcs"
    supports_budget: bool = True
    params: Optional[Tuple[str, ...]] = ()


@dataclass(frozen=True)
class BackendEntry:
    """A registered execution substrate.

    ``fn`` follows the protocol ``(spec, algorithm, ctx) -> RunReport``.
    ``algorithms`` restricts which registered algorithms the substrate can
    execute (``None`` = all); the three parallel substrates distribute the
    nested search specifically, so they declare ``("nmcs",)``.  ``params``
    declares substrate-level parameter names the backend reads from
    ``spec.params`` (e.g. ``lm_fifo_jobs``); they are accepted in addition
    to the algorithm's own declared params.
    """

    name: str
    fn: Callable[..., RunReport]
    description: str = ""
    algorithms: Optional[Tuple[str, ...]] = None
    needs_cluster: bool = False
    params: Optional[Tuple[str, ...]] = ()

    def supports(self, algorithm: str) -> bool:
        return self.algorithms is None or algorithm in self.algorithms


ALGORITHMS: Dict[str, AlgorithmEntry] = {}
BACKENDS: Dict[str, BackendEntry] = {}


def register_algorithm(
    name: str,
    *,
    description: str = "",
    seed_label: str = "nmcs",
    supports_budget: bool = True,
    params: Optional[Iterable[str]] = (),
) -> Callable[[Callable[..., SearchResult]], Callable[..., SearchResult]]:
    """Register the decorated function as the search algorithm named ``name``.

    ``params`` declares the accepted ``spec.params`` keys (the engine rejects
    any others loudly; pass ``None`` to accept arbitrary keys).  Raises
    ``ValueError`` if the name is already taken (registries are flat
    namespaces shared by the CLI, the benchmarks and the experiment runners).
    """

    def decorator(fn: Callable[..., SearchResult]) -> Callable[..., SearchResult]:
        if name in ALGORITHMS:
            raise ValueError(f"algorithm {name!r} is already registered")
        ALGORITHMS[name] = AlgorithmEntry(
            name=name,
            fn=fn,
            description=description,
            seed_label=seed_label,
            supports_budget=supports_budget,
            params=None if params is None else tuple(params),
        )
        return fn

    return decorator


def register_backend(
    name: str,
    *,
    description: str = "",
    algorithms: Optional[Iterable[str]] = None,
    needs_cluster: bool = False,
    params: Optional[Iterable[str]] = (),
) -> Callable[[Callable[..., RunReport]], Callable[..., RunReport]]:
    """Register the decorated function as the execution backend named ``name``."""

    def decorator(fn: Callable[..., RunReport]) -> Callable[..., RunReport]:
        if name in BACKENDS:
            raise ValueError(f"backend {name!r} is already registered")
        BACKENDS[name] = BackendEntry(
            name=name,
            fn=fn,
            description=description,
            algorithms=None if algorithms is None else tuple(algorithms),
            needs_cluster=needs_cluster,
            params=None if params is None else tuple(params),
        )
        return fn

    return decorator


def list_algorithms() -> Dict[str, str]:
    """Mapping of registered algorithm name to its one-line description."""
    return {name: entry.description for name, entry in sorted(ALGORITHMS.items())}


def list_backends() -> Dict[str, str]:
    """Mapping of registered backend name to its one-line description."""
    return {name: entry.description for name, entry in sorted(BACKENDS.items())}


def _algorithm(name: str) -> AlgorithmEntry:
    try:
        return ALGORITHMS[name]
    except KeyError:
        known = ", ".join(sorted(ALGORITHMS))
        raise ValueError(f"unknown algorithm {name!r}; registered algorithms: {known}") from None


def _backend(name: str) -> BackendEntry:
    try:
        return BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise ValueError(f"unknown backend {name!r}; registered backends: {known}") from None


def _validate_params(spec: SearchSpec, algorithm: AlgorithmEntry, backend: BackendEntry) -> None:
    """Reject ``spec.params`` keys neither the algorithm nor the backend declares.

    Either side may register ``params=None`` to accept arbitrary keys, which
    disables the check (an undeclared surface cannot be validated against).
    """
    if algorithm.params is None or backend.params is None:
        return
    allowed = set(algorithm.params) | set(backend.params)
    unknown = sorted(set(spec.params) - allowed)
    if not unknown:
        return
    accepted = ", ".join(sorted(allowed)) if allowed else "(none)"
    raise ValueError(
        f"unknown param(s) {', '.join(map(repr, unknown))} for algorithm "
        f"{spec.algorithm!r} on backend {spec.backend!r}; accepted params: {accepted}"
    )


# --------------------------------------------------------------------------- #
# Cluster descriptors
# --------------------------------------------------------------------------- #
def build_cluster(spec: SearchSpec) -> ClusterSpec:
    """Build the :class:`ClusterSpec` described by ``spec.cluster`` / ``spec.n_clients``."""
    kind, _, arg = spec.cluster.partition(":")
    kind = kind.strip().lower()
    if kind == "homogeneous":
        return homogeneous_cluster(spec.n_clients)
    if kind == "paper":
        return paper_cluster(spec.n_clients)
    if kind == "paper-mix":
        # Tables II-V policy: only 1.86 GHz PCs up to 32 clients, the paper's
        # mixed cluster beyond.
        if spec.n_clients > 32:
            return paper_cluster(spec.n_clients)
        return homogeneous_cluster(spec.n_clients)
    if kind == "single":
        return single_machine(spec.n_clients)
    if kind == "heterogeneous":
        try:
            groups = [part.split("x") for part in arg.split("+")]
            (n_over, c_over), (n_reg, c_reg) = [(int(a), int(b)) for a, b in groups]
        except (ValueError, TypeError):
            raise ValueError(
                f"bad heterogeneous cluster descriptor {spec.cluster!r}; "
                "expected 'heterogeneous:<N>x<a>+<M>x<b>' (e.g. 'heterogeneous:16x4+16x2')"
            ) from None
        return heterogeneous_cluster(
            n_over, n_reg, clients_on_oversubscribed=c_over, clients_on_regular=c_reg
        )
    known = "homogeneous, paper, paper-mix, single, heterogeneous:<N>x<a>+<M>x<b>"
    raise ValueError(f"unknown cluster descriptor {spec.cluster!r}; known kinds: {known}")


# --------------------------------------------------------------------------- #
# The engine
# --------------------------------------------------------------------------- #
@dataclass
class RunContext:
    """Resolved per-run resources handed to a backend."""

    state: GameState
    level: int
    executor: JobExecutor
    cost_model: CostModel
    network: Optional[NetworkModel] = None
    cluster: Optional[ClusterSpec] = None


@dataclass(frozen=True)
class RunEvent:
    """One lifecycle event of a batched run (see :meth:`Engine.stream`).

    ``kind`` is one of:

    * ``"started"`` — the cell is about to execute (not emitted for cache hits);
    * ``"cached"`` — the cell was satisfied from the :class:`ResultStore`
      without executing any search;
    * ``"completed"`` — the cell executed successfully (and was stored, when
      a store is attached);
    * ``"failed"`` — the cell raised; ``error`` carries the exception.

    ``done`` / ``total`` make every terminal event a progress report
    (``done`` counts cells finished so far, including this one).
    """

    kind: str
    index: int
    total: int
    spec: SearchSpec
    report: Optional[RunReport] = None
    error: Optional[BaseException] = None
    done: int = 0

    @property
    def terminal(self) -> bool:
        """Whether this event ends its cell (cached / completed / failed)."""
        return self.kind != "started"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (the service wire encoding).

        ``error`` is rendered as ``"TypeName: message"`` — exceptions have no
        faithful JSON form, so the round-trip through :meth:`from_dict` keeps
        the message but not the original type or traceback.
        """
        return {
            "kind": self.kind,
            "index": self.index,
            "total": self.total,
            "spec": self.spec.to_dict(),
            "report": None if self.report is None else self.report.to_dict(),
            "error": None if self.error is None else f"{type(self.error).__name__}: {self.error}",
            "done": self.done,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunEvent":
        """Rebuild an event from its :meth:`to_dict` form.

        A serialised ``error`` comes back as a ``RuntimeError`` carrying the
        rendered message (see :meth:`to_dict`); everything else round-trips
        exactly (``report`` via :meth:`RunReport.from_dict`).
        """
        report = data.get("report")
        error = data.get("error")
        return cls(
            kind=data["kind"],
            index=data["index"],
            total=data["total"],
            spec=SearchSpec.from_dict(data["spec"]),
            report=None if report is None else RunReport.from_dict(report),
            error=None if error is None else RuntimeError(error),
            done=data.get("done", 0),
        )


#: What the batch layer accepts: a SweepSpec, or any iterable of specs/dicts.
BatchInput = Union["SweepSpec", Iterable[Union[SearchSpec, Mapping[str, Any]]]]

#: Sentinel returned by pooled cells that observed the cancel flag before
#: starting; such cells emit no terminal event (mirrors the inline early-out).
_CELL_SKIPPED = object()


class Engine:
    """Executes :class:`SearchSpec` scenarios; shares caches across runs.

    By default every ``sim-cluster`` run shares one :class:`CachingJobExecutor`
    *per workload name*, so a sweep over client counts or dispatchers executes
    each search job exactly once while runs of different workloads can never
    alias each other's cache entries (job cache keys are seed paths, which
    repeat across workloads).  Passing ``executor`` disables that partitioning
    and uses the given executor for every run — only do this when all runs
    share one workload.  Callers that pass an explicit ``state`` to
    :meth:`run` must keep ``spec.workload`` an accurate label for it, since
    the label selects the cache partition.

    ``cost_model`` and ``network`` override the simulation defaults for all
    runs; a spec's ``units_per_ghz`` overrides the engine cost model for that
    run.
    """

    def __init__(
        self,
        executor: Optional[JobExecutor] = None,
        cost_model: Optional[CostModel] = None,
        network: Optional[NetworkModel] = None,
    ) -> None:
        self.executor = executor
        self.cost_model = cost_model
        self.network = network
        self._workload_executors: Dict[str, JobExecutor] = {}

    def _executor_for(self, workload_name: str) -> JobExecutor:
        if self.executor is not None:
            return self.executor
        cached = self._workload_executors.get(workload_name)
        if cached is None:
            cached = CachingJobExecutor()
            self._workload_executors[workload_name] = cached
        return cached

    def run(
        self,
        spec: "SearchSpec | Mapping[str, Any]",
        *,
        state: Optional[GameState] = None,
        cluster: Optional[ClusterSpec] = None,
    ) -> RunReport:
        """Execute one scenario and return its :class:`RunReport`.

        ``state`` / ``cluster`` override the spec's workload factory and
        cluster descriptor for programmatic callers (the legacy entry points
        delegate through these).
        """
        if isinstance(spec, Mapping):
            spec = SearchSpec.from_dict(spec)
        algorithm = _algorithm(spec.algorithm)
        backend = _backend(spec.backend)
        if not backend.supports(spec.algorithm):
            supported = ", ".join(backend.algorithms or ())
            raise ValueError(
                f"backend {spec.backend!r} cannot execute algorithm {spec.algorithm!r}; "
                f"it supports: {supported}. Use backend 'sequential' for the other algorithms."
            )
        if spec.max_steps is not None and not algorithm.supports_budget:
            raise ValueError(
                f"algorithm {spec.algorithm!r} has no root-move budget; "
                "leave max_steps unset (it would be silently ignored otherwise)"
            )
        _validate_params(spec, algorithm, backend)
        level = spec.level
        if state is None or level is None:
            workload = get_workload(spec.workload)
            if state is None:
                state = workload.state()
            if level is None:
                level = workload.low_level
        if spec.units_per_ghz is not None:
            cost_model = CostModel(units_per_ghz_per_second=spec.units_per_ghz)
        else:
            cost_model = self.cost_model if self.cost_model is not None else CostModel()
        if cluster is None and backend.needs_cluster:
            cluster = build_cluster(spec)
        ctx = RunContext(
            state=state,
            level=level,
            executor=self._executor_for(spec.workload),
            cost_model=cost_model,
            network=self.network,
            cluster=cluster,
        )
        with _obs_span(
            "engine.run",
            backend=spec.backend,
            algorithm=spec.algorithm,
            workload=spec.workload,
        ) as root_span:
            wall_start = time.perf_counter()
            report = backend.fn(spec, algorithm, ctx)
        if _obs_enabled():
            wall = time.perf_counter() - wall_start
            _RUNS_TOTAL.labels(backend=spec.backend).inc()
            _RUN_SECONDS.labels(backend=spec.backend).observe(wall)
            report.telemetry = root_span.summary()
        return report

    # ------------------------------------------------------------------ #
    # Batch layer
    # ------------------------------------------------------------------ #
    def _expand_batch(self, specs: BatchInput) -> List[SearchSpec]:
        """Normalise a batch input (SweepSpec / iterable of specs or dicts)."""
        if hasattr(specs, "cells") and hasattr(specs, "base"):  # SweepSpec, duck-typed
            expanded: Iterable[Any] = specs.specs()
        elif isinstance(specs, (SearchSpec, Mapping)):
            raise TypeError(
                "Engine.run_many/stream take a SweepSpec or an iterable of specs; "
                "for a single scenario use Engine.run(spec)"
            )
        else:
            expanded = specs
        return [
            spec if isinstance(spec, SearchSpec) else SearchSpec.from_dict(spec)
            for spec in expanded
        ]

    def _storable_spec(self, spec: SearchSpec) -> SearchSpec:
        """The spec whose content address identifies this run's *result*.

        ``simulated_seconds`` depends on the effective cost model, which for
        a spec with ``units_per_ghz=None`` is an engine-level setting the
        spec itself does not capture.  Pinning the engine's rate into the
        spec keeps the content address faithful: the same sweep run on an
        engine with a different calibration stores under different keys
        instead of silently reusing mismatched timings.  The batch layer
        *executes* the pinned spec too (it resolves to the identical cost
        model), so the reports it returns echo the exact spec their store
        records carry, fresh and cached runs alike.
        """
        if spec.units_per_ghz is None and self.cost_model is not None:
            return spec.replace(units_per_ghz=self.cost_model.units_per_ghz_per_second)
        return spec

    def _store_for(self, store: Optional["ResultStore"]) -> Optional["ResultStore"]:
        """The store view batched runs should use under this engine.

        An engine-level :class:`NetworkModel` changes what a spec evaluates
        to without being a spec field, so its content fingerprint is folded
        into the store salt — results simulated under different networks
        never alias each other's records.
        """
        if store is None or self.network is None:
            return store
        from repro.lab.store import ResultStore

        return ResultStore(store.root, salt=f"{store.salt}|network={self.network!r}")

    def stream(
        self,
        specs: BatchInput,
        *,
        store: Optional["ResultStore"] = None,
        error_policy: str = "raise",
        max_workers: Optional[int] = None,
        executor: str = "thread",
        chunk_size: Optional[int] = None,
        cancel: Optional[Union[threading.Event, Callable[[], bool]]] = None,
        refresh: bool = False,
    ) -> Iterator[RunEvent]:
        """Execute a batch lazily, yielding a :class:`RunEvent` stream.

        Parameters
        ----------
        specs:
            A :class:`~repro.lab.sweep.SweepSpec` or an iterable of
            :class:`SearchSpec` / spec dicts.
        store:
            Optional :class:`~repro.lab.store.ResultStore`: cells whose key
            is already present resolve to ``"cached"`` events without
            executing any search, and completed cells are persisted, so an
            interrupted batch resumes for free.
        error_policy:
            ``"raise"`` (default) re-raises a cell's exception after
            emitting its ``"failed"`` event; ``"skip"`` keeps going.
        max_workers:
            With ``executor="thread"``: ``None``/``1`` runs cells inline,
            ``> 1`` runs independent cells on a thread pool (events then
            arrive in completion order).  With ``executor="process"``: the
            worker-*process* count (``None`` = ``os.cpu_count()``).
            Simulated time is unaffected by either pool — only wall time is.
        executor:
            ``"thread"`` (default) keeps the historical behaviour;
            ``"process"`` ships cache-missing cells to the persistent
            worker-process pool (:mod:`repro.lab.procpool`), where each
            worker runs them through its own :class:`Engine` — CPU-bound
            cells then scale past the GIL.  Cache hits still short-circuit
            in the parent and results are written to the store exactly once,
            by the parent.  An engine constructed with a custom
            ``executor=`` :class:`~repro.parallel.jobs.JobExecutor` cannot
            use the process executor (executors don't cross processes).
        chunk_size:
            Cells per IPC round under ``executor="process"`` (``None`` =
            :func:`repro.lab.procpool.auto_chunk_size`); ignored by the
            thread executor.
        cancel:
            A :class:`threading.Event` or zero-argument callable; when set,
            no further cell starts (cells already running finish and their
            events are delivered).  The pooled paths honour this promptly
            too: cells already submitted to a pool but not yet running
            re-check the flag when their turn comes and are skipped without
            executing (they emit no terminal event, so the stream may end
            with ``done < total``, exactly like the inline path).
        refresh:
            Skip the store lookup (re-execute every cell) while still
            persisting results — a forced re-run against the same store.
        """
        if error_policy not in ("raise", "skip"):
            raise ValueError(f"unknown error_policy {error_policy!r}; use 'raise' or 'skip'")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1 when given")
        if executor not in ("thread", "process"):
            raise ValueError(f"unknown executor {executor!r}; use 'thread' or 'process'")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1 when given")
        if executor == "process" and self.executor is not None:
            raise ValueError(
                "executor='process' cannot ship a custom JobExecutor to worker "
                "processes; use the default per-workload executors or executor='thread'"
            )
        if cancel is None:
            cancelled = lambda: False  # noqa: E731 - tiny local predicate
        elif isinstance(cancel, threading.Event):
            cancelled = cancel.is_set
        else:
            cancelled = cancel
        batch = [self._storable_spec(spec) for spec in self._expand_batch(specs)]
        total = len(batch)
        store = self._store_for(store)
        if executor == "process":
            yield from self._stream_process(
                batch, total, store, error_policy, max_workers, cancelled, refresh,
                chunk_size,
            )
            return
        if max_workers is not None and max_workers > 1:
            yield from self._stream_pooled(
                batch, total, store, error_policy, max_workers, cancelled, refresh
            )
            return
        done = 0
        for index, spec in enumerate(batch):
            if cancelled():
                return
            if store is not None and not refresh:
                report = store.get(spec)
                if report is not None:
                    done += 1
                    _CELL_EVENTS["cached"].inc()
                    yield RunEvent("cached", index, total, spec, report=report, done=done)
                    continue
            _CELL_EVENTS["started"].inc()
            yield RunEvent("started", index, total, spec, done=done)
            try:
                report = self.run(spec)
            except Exception as exc:
                done += 1
                _CELL_EVENTS["failed"].inc()
                yield RunEvent("failed", index, total, spec, error=exc, done=done)
                if error_policy == "raise":
                    raise
                continue
            if store is not None:
                store.put(spec, report)
            done += 1
            _CELL_EVENTS["completed"].inc()
            yield RunEvent("completed", index, total, spec, report=report, done=done)

    def _stream_pooled(
        self,
        batch: List[SearchSpec],
        total: int,
        store: Optional["ResultStore"],
        error_policy: str,
        max_workers: int,
        cancelled: Callable[[], bool],
        refresh: bool,
    ) -> Iterator[RunEvent]:
        """Worker-pool variant of :meth:`stream` (completion-order events).

        Cache hits resolve up front; remaining cells are submitted to a
        thread pool (``"started"`` is emitted at submission).  Store writes
        stay on the consumer thread, so a store never sees concurrent
        writers from one batch.  Each pooled cell re-checks ``cancelled``
        the moment a worker picks it up, so setting the flag stops the
        batch after at most ``max_workers`` in-flight cells — submitted
        cells whose turn comes later are skipped without executing.  With
        ``error_policy="raise"`` the first failure cancels not-yet-started
        cells, drains the running ones, and re-raises.
        """
        done = 0
        pending: List[Tuple[int, SearchSpec]] = []
        for index, spec in enumerate(batch):
            if store is not None and not refresh:
                report = store.get(spec)
                if report is not None:
                    done += 1
                    _CELL_EVENTS["cached"].inc()
                    yield RunEvent("cached", index, total, spec, report=report, done=done)
                    continue
            pending.append((index, spec))
        first_error: Optional[BaseException] = None
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = {}
            for index, spec in pending:
                if cancelled():
                    break
                _CELL_EVENTS["started"].inc()
                yield RunEvent("started", index, total, spec, done=done)
                futures[pool.submit(self._run_unless_cancelled, spec, cancelled)] = (index, spec)
            for future in as_completed(futures):
                index, spec = futures[future]
                if future.cancelled():  # pragma: no cover - cancel() raced a start
                    continue
                try:
                    report = future.result()
                except Exception as exc:
                    done += 1
                    _CELL_EVENTS["failed"].inc()
                    yield RunEvent("failed", index, total, spec, error=exc, done=done)
                    if error_policy == "raise" and first_error is None:
                        first_error = exc
                        for other in futures:
                            other.cancel()
                    continue
                if report is _CELL_SKIPPED:
                    continue
                if store is not None:
                    store.put(spec, report)
                done += 1
                _CELL_EVENTS["completed"].inc()
                yield RunEvent("completed", index, total, spec, report=report, done=done)
        if first_error is not None:
            raise first_error

    def _run_unless_cancelled(self, spec: SearchSpec, cancelled: Callable[[], bool]) -> Any:
        """Pool task wrapper: skip cells whose cancel flag was set before they started."""
        if cancelled():
            return _CELL_SKIPPED
        return self.run(spec)

    def _stream_process(
        self,
        batch: List[SearchSpec],
        total: int,
        store: Optional["ResultStore"],
        error_policy: str,
        max_workers: Optional[int],
        cancelled: Callable[[], bool],
        refresh: bool,
        chunk_size: Optional[int],
    ) -> Iterator[RunEvent]:
        """Worker-*process* variant of :meth:`stream` (completion-order events).

        Cache hits resolve up front in the parent; remaining cells are
        serialised (``spec.to_dict()``) and shipped to the shared
        :class:`~repro.lab.procpool.SweepWorkerPool` in chunks of
        ``chunk_size`` (``"started"`` is emitted at submission, mirroring
        the thread pool).  Workers return report dicts; the *parent* decodes
        them, emits the terminal events, and writes the store — one writer
        per batch, so the event contract and the results-written-once
        guarantee are identical to the thread path.  Failures come back as
        :class:`~repro.lab.procpool.RemoteCellError`; with
        ``error_policy="raise"`` the first one cancels the rest of the
        batch, the stream drains fully, then re-raises.  Child obs
        snapshots are folded into the parent registry per chunk.
        """
        from repro.lab.procpool import (
            RemoteCellError,
            auto_chunk_size,
            shared_sweep_pool,
        )

        done = 0
        pending: List[Tuple[int, SearchSpec]] = []
        for index, spec in enumerate(batch):
            if store is not None and not refresh:
                report = store.get(spec)
                if report is not None:
                    done += 1
                    _CELL_EVENTS["cached"].inc()
                    yield RunEvent("cached", index, total, spec, report=report, done=done)
                    continue
            pending.append((index, spec))
        if not pending:
            return
        n_workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
        pool = shared_sweep_pool(n_workers)
        size = chunk_size if chunk_size is not None else auto_chunk_size(
            len(pending), pool.n_workers
        )
        obs_on = _obs_enabled()
        specs_by_index = dict(pending)
        first_error: Optional[BaseException] = None
        batch_id = pool.begin_batch()
        try:
            outstanding_cells: set = set()
            outstanding_chunks = 0
            for start in range(0, len(pending), size):
                if cancelled():
                    break
                chunk = pending[start : start + size]
                for index, spec in chunk:
                    _CELL_EVENTS["started"].inc()
                    yield RunEvent("started", index, total, spec, done=done)
                    outstanding_cells.add(index)
                pool.submit_chunk(
                    batch_id,
                    [(index, spec.to_dict()) for index, spec in chunk],
                    obs_on,
                    self.network,
                )
                outstanding_chunks += 1
            propagated = False
            while outstanding_cells or outstanding_chunks:
                if not propagated and (cancelled() or first_error is not None):
                    pool.cancel_batch()
                    propagated = True
                frame = pool.next_frame(batch_id)
                if frame is None:
                    continue
                if frame[0] == "chunk":
                    outstanding_chunks -= 1
                    if frame[2] is not None:
                        _obs_metrics.merge_snapshot(frame[2])
                    continue
                _, _, index, status, payload = frame
                outstanding_cells.discard(index)
                spec = specs_by_index[index]
                if status == "skip":
                    continue  # cancelled before starting: no terminal event
                if status == "err":
                    error: BaseException = RemoteCellError(payload)
                    done += 1
                    _CELL_EVENTS["failed"].inc()
                    yield RunEvent("failed", index, total, spec, error=error, done=done)
                    if error_policy == "raise" and first_error is None:
                        first_error = error
                    continue
                report = RunReport.from_dict(payload)
                if store is not None:
                    store.put(spec, report)
                done += 1
                _CELL_EVENTS["completed"].inc()
                yield RunEvent("completed", index, total, spec, report=report, done=done)
        finally:
            # An abandoned generator (consumer stopped iterating) leaves cells
            # in flight; cancel them so they drain as skips — their stale
            # frames are dropped by the next batch's next_frame guard.
            if outstanding_cells or outstanding_chunks:
                pool.cancel_batch()
            pool.end_batch()
        if first_error is not None:
            raise first_error

    def run_many(
        self,
        specs: BatchInput,
        *,
        store: Optional["ResultStore"] = None,
        on_event: Optional[Callable[[RunEvent], None]] = None,
        error_policy: str = "raise",
        max_workers: Optional[int] = None,
        executor: str = "thread",
        chunk_size: Optional[int] = None,
        cancel: Optional[Union[threading.Event, Callable[[], bool]]] = None,
        refresh: bool = False,
    ) -> List[RunReport]:
        """Execute a batch (or a whole :class:`SweepSpec`) and return its reports.

        A thin collector over :meth:`stream`: reports come back in cell
        order whatever ``max_workers``/``executor`` is, cells that failed
        under ``error_policy="skip"`` are absent, and ``on_event`` observes
        every :class:`RunEvent` as it happens (progress callbacks, logging,
        ...).  ``executor="process"`` runs cells on the persistent
        worker-process pool (see :meth:`stream`).
        """
        reports: Dict[int, RunReport] = {}
        for event in self.stream(
            specs,
            store=store,
            error_policy=error_policy,
            max_workers=max_workers,
            executor=executor,
            chunk_size=chunk_size,
            cancel=cancel,
            refresh=refresh,
        ):
            if on_event is not None:
                on_event(event)
            if event.report is not None:
                reports[event.index] = event.report
        return [reports[index] for index in sorted(reports)]


# --------------------------------------------------------------------------- #
# Built-in algorithms
# --------------------------------------------------------------------------- #
@register_algorithm(
    "sample",
    description="one uniformly random playout (level ignored)",
    supports_budget=False,
)
def _alg_sample(state, level, seeds, counter, budget, params) -> SearchResult:
    return sample(state, seeds=seeds, counter=counter)


@register_algorithm(
    "flat",
    description="flat Monte-Carlo move selection",
    seed_label="flat",
    params=("playouts_per_move", "aggregation"),
)
def _alg_flat(state, level, seeds, counter, budget, params) -> SearchResult:
    return flat_monte_carlo(
        state,
        playouts_per_move=int(params.get("playouts_per_move", 1)),
        seeds=seeds,
        aggregation=params.get("aggregation", "max"),
        counter=counter,
        max_steps=budget,
    )


@register_algorithm("nmcs", description="Nested Monte-Carlo Search (the paper's algorithm)")
def _alg_nmcs(state, level, seeds, counter, budget, params) -> SearchResult:
    return nested_search(state, level, seeds, counter=counter, max_steps=budget)


@register_algorithm(
    "reflexive",
    description="reflexive Monte-Carlo search (no best-sequence memorisation)",
    seed_label="reflexive",
)
def _alg_reflexive(state, level, seeds, counter, budget, params) -> SearchResult:
    return reflexive_search(state, level, seeds, counter=counter, max_steps=budget)


@register_algorithm(
    "iterated",
    description="multi-restart NMCS, keeps the best sequence",
    supports_budget=False,
    params=("restarts", "work_budget"),
)
def _alg_iterated(state, level, seeds, counter, budget, params) -> SearchResult:
    return iterated_search(
        state,
        level,
        seeds,
        restarts=int(params.get("restarts", 2)),
        work_budget=params.get("work_budget"),
        counter=counter,
    )


@register_algorithm(
    "nrpa",
    description="Nested Rollout Policy Adaptation (Rosin 2011)",
    seed_label="nrpa",
    supports_budget=False,
    params=("iterations", "alpha"),
)
def _alg_nrpa(state, level, seeds, counter, budget, params) -> SearchResult:
    return nrpa_search(
        state,
        level,
        seeds,
        iterations=int(params.get("iterations", 3)),
        alpha=float(params.get("alpha", 1.0)),
        counter=counter,
    )


# --------------------------------------------------------------------------- #
# Built-in backends
# --------------------------------------------------------------------------- #
@register_backend(
    "sequential",
    description="single simulated core; runs every registered algorithm",
)
def _backend_sequential(spec: SearchSpec, algorithm: AlgorithmEntry, ctx: RunContext) -> RunReport:
    counter = WorkCounter()
    seeds = SeedSequence(spec.seed, algorithm.seed_label)
    start = time.perf_counter()
    result = algorithm.fn(ctx.state, ctx.level, seeds, counter, spec.max_steps, spec.params)
    wall = time.perf_counter() - start
    work = float(counter.moves)
    return RunReport(
        spec=spec,
        algorithm=algorithm.name,
        backend=spec.backend,
        level=ctx.level,
        score=result.score,
        sequence=tuple(result.sequence),
        work_units=work,
        simulated_seconds=ctx.cost_model.seconds_for(work, spec.freq_ghz),
        wall_seconds=wall,
        raw=result,
    )


@register_backend(
    "sim-cluster",
    description="paper's root/median/dispatcher/client architecture on the discrete-event kernel",
    algorithms=("nmcs",),
    needs_cluster=True,
    params=("lm_fifo_jobs",),
)
def _backend_sim_cluster(spec: SearchSpec, algorithm: AlgorithmEntry, ctx: RunContext) -> RunReport:
    from repro.analysis.commpattern import analyze_communications

    config = ParallelConfig(
        level=ctx.level,
        dispatcher=DispatcherKind.parse(spec.dispatcher or "rr"),
        n_medians=spec.n_medians,
        max_root_steps=spec.max_steps,
        master_seed=spec.seed,
        memorize_best_sequence=spec.memorize_best_sequence,
        lm_fifo_jobs=bool(spec.params.get("lm_fifo_jobs", False)),
    )
    start = time.perf_counter()
    run = run_parallel_nmcs(
        ctx.state, config, ctx.cluster, ctx.executor, ctx.cost_model, ctx.network
    )
    wall = time.perf_counter() - start
    summary = analyze_communications(run.trace)
    return RunReport(
        spec=spec,
        algorithm=algorithm.name,
        backend=spec.backend,
        level=ctx.level,
        score=run.score,
        sequence=tuple(run.result.sequence),
        work_units=run.total_client_work,
        simulated_seconds=run.simulated_seconds,
        wall_seconds=wall,
        n_jobs=run.n_jobs,
        n_workers=ctx.cluster.n_clients,
        comm=dict(summary.counts),
        client_utilisation=run.client_utilisation(),
        kernel_stats=run.kernel_stats.to_dict() if run.kernel_stats is not None else None,
        raw=run,
    )


@register_backend(
    "multiprocessing",
    description="real root-level fan-out on a local process pool (GIL-free)",
    algorithms=("nmcs",),
    params=("start_method",),
)
def _backend_multiprocessing(
    spec: SearchSpec, algorithm: AlgorithmEntry, ctx: RunContext
) -> RunReport:
    if ctx.level < 1:
        raise ValueError("the multiprocessing backend needs level >= 1")
    run = multiprocessing_nmcs(
        ctx.state,
        ctx.level,
        master_seed=spec.seed,
        n_workers=spec.n_workers,
        max_steps=spec.max_steps,
        start_method=spec.params.get("start_method"),
    )
    return RunReport(
        spec=spec,
        algorithm=algorithm.name,
        backend=spec.backend,
        level=ctx.level,
        score=run.score,
        sequence=tuple(run.result.sequence),
        wall_seconds=run.wall_seconds,
        n_jobs=run.n_evaluations,
        n_workers=run.n_workers,
        raw=run,
    )


@register_backend(
    "threads",
    description="root-level fan-out on a thread pool (the GIL ablation)",
    algorithms=("nmcs",),
)
def _backend_threads(spec: SearchSpec, algorithm: AlgorithmEntry, ctx: RunContext) -> RunReport:
    if ctx.level < 1:
        raise ValueError("the threads backend needs level >= 1")
    run = threaded_nmcs(
        ctx.state,
        ctx.level,
        master_seed=spec.seed,
        n_workers=spec.n_workers if spec.n_workers is not None else 4,
        max_steps=spec.max_steps,
    )
    return RunReport(
        spec=spec,
        algorithm=algorithm.name,
        backend=spec.backend,
        level=ctx.level,
        score=run.score,
        sequence=tuple(run.result.sequence),
        wall_seconds=run.wall_seconds,
        n_jobs=run.n_evaluations,
        n_workers=run.n_workers,
        raw=run,
    )
