"""repro — reproduction of "Parallel Nested Monte-Carlo Search" (Cazenave & Jouandeau, 2009).

The library is organised as:

* :mod:`repro.api` — **the front door**: declarative :class:`SearchSpec` +
  :class:`Engine` running any registered algorithm on any registered backend
  with one :class:`RunReport` schema, plus the streaming batch layer
  (``Engine.stream`` / ``Engine.run_many``);
* :mod:`repro.lab` — declarative sweeps: :class:`SweepSpec` grids,
  content-addressed :class:`ResultStore` (resumable sweeps), JSON/CSV export;
* :mod:`repro.games` — search domains (Morpion Solitaire, SameGame, TSP, SOP,
  Weak Schur, toy games);
* :mod:`repro.core` — sequential search algorithms (random sampling, flat
  Monte-Carlo, Nested Monte-Carlo Search, reflexive search, iterated NMCS,
  NRPA);
* :mod:`repro.cluster` — the simulated heterogeneous cluster (discrete-event
  kernel, nodes, network, traces);
* :mod:`repro.parallel` — the paper's parallel algorithms (root / median /
  dispatcher / client roles, Round-Robin and Last-Minute dispatching) plus
  real local executors (multiprocessing / threads);
* :mod:`repro.timemodel`, :mod:`repro.analysis`, :mod:`repro.paperdata`,
  :mod:`repro.workloads` — cost model, reporting and the benchmark harness
  support code;
* :mod:`repro.service` — search-as-a-service: a job server multiplexing
  client submissions onto the Engine with queueing, dedup (store + in-flight),
  rate limiting and a JSONL socket protocol (``repro serve``);
* :mod:`repro.obs` — opt-in telemetry: process-wide metrics registry,
  tracing spans (``RunReport.telemetry``), the rollout profiler
  (``repro profile``) and live exposition (``repro stats``, the service's
  ``metrics`` verb); zero overhead while disabled;
* :mod:`repro.cli` — ``python -m repro`` command-line interface.

Quickstart
----------
Describe a scenario with a :class:`SearchSpec` and run it through an
:class:`Engine`; change *one field* to move the same search between the
sequential baseline, the simulated cluster (Round-Robin or Last-Minute) and
the local process pool (see ``docs/API.md`` for the full tour):

>>> from repro import Engine, SearchSpec
>>> from repro.experiments import calibrated_cost_model
>>> engine = Engine(cost_model=calibrated_cost_model("morpion-small"))
>>> spec = SearchSpec(workload="morpion-small", algorithm="nmcs", max_steps=1)
>>> sequential = engine.run(spec)
>>> cluster = engine.run(spec.replace(backend="sim-cluster", dispatcher="lm", n_clients=8))
>>> sequential.score == cluster.score  # same search, different substrate
True
>>> cluster.simulated_seconds < sequential.simulated_seconds  # but faster
True

The pre-API entry points (``nmcs``, ``run_parallel_nmcs``,
``first_move_experiment``, ...) remain importable; the experiment front-ends
are deprecated shims over the unified API.
"""

from repro.api import (
    Engine,
    RunEvent,
    RunReport,
    SearchSpec,
    list_algorithms,
    list_backends,
    register_algorithm,
    register_backend,
)
from repro.lab import ResultStore, SweepSpec, spec_key
from repro.prng import SeedSequence, derive_seed, spawn_rng
from repro.games import (
    GameState,
    LeftMoveState,
    MorpionState,
    MorpionVariant,
    SameGameState,
    SOPInstance,
    SOPState,
    TSPInstance,
    TSPState,
    WeakSchurState,
)
from repro.core import (
    SearchResult,
    WorkCounter,
    flat_monte_carlo,
    iterated_search,
    nested_search,
    nmcs,
    nrpa_search,
    reflexive_search,
    sample,
)
from repro.cluster import ClusterSpec, Kernel, NetworkModel, NodeSpec
from repro.cluster.topology import (
    heterogeneous_cluster,
    homogeneous_cluster,
    paper_cluster,
    single_machine,
)
from repro.parallel import (
    CachingJobExecutor,
    DispatcherKind,
    ParallelConfig,
    ParallelRunResult,
    first_move_experiment,
    multiprocessing_nmcs,
    rollout_experiment,
    run_last_minute,
    run_parallel_nmcs,
    run_round_robin,
    sequential_reference,
    threaded_nmcs,
)
from repro.service import (
    SearchService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceServer,
)
from repro.timemodel import CostModel
from repro.workloads import Workload, get_workload, list_workloads

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # unified API
    "Engine",
    "SearchSpec",
    "RunReport",
    "RunEvent",
    "register_algorithm",
    "register_backend",
    "list_algorithms",
    "list_backends",
    # sweeps / lab
    "SweepSpec",
    "ResultStore",
    "spec_key",
    # randomness
    "SeedSequence",
    "derive_seed",
    "spawn_rng",
    # games
    "GameState",
    "LeftMoveState",
    "MorpionState",
    "MorpionVariant",
    "SameGameState",
    "SOPInstance",
    "SOPState",
    "TSPInstance",
    "TSPState",
    "WeakSchurState",
    # sequential search
    "SearchResult",
    "WorkCounter",
    "sample",
    "nmcs",
    "nested_search",
    "flat_monte_carlo",
    "reflexive_search",
    "iterated_search",
    "nrpa_search",
    # cluster simulation
    "Kernel",
    "NodeSpec",
    "NetworkModel",
    "ClusterSpec",
    "homogeneous_cluster",
    "heterogeneous_cluster",
    "paper_cluster",
    "single_machine",
    # parallel search
    "DispatcherKind",
    "ParallelConfig",
    "ParallelRunResult",
    "CachingJobExecutor",
    "run_parallel_nmcs",
    "run_round_robin",
    "run_last_minute",
    "first_move_experiment",
    "rollout_experiment",
    "sequential_reference",
    "multiprocessing_nmcs",
    "threaded_nmcs",
    # service
    "SearchService",
    "ServiceConfig",
    "ServiceServer",
    "ServiceClient",
    "ServiceError",
    # support
    "CostModel",
    "Workload",
    "get_workload",
    "list_workloads",
]
