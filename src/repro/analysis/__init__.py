"""Analysis and reporting: paper-style time formatting, statistics, speedups,
table rendering and the communication-pattern queries behind Figures 2–5."""

from repro.analysis.timefmt import format_hms, parse_hms
from repro.analysis.stats import mean, std, summarize, Summary
from repro.analysis.speedup import speedup, efficiency, speedup_table
from repro.analysis.tables import Table, render_table
from repro.analysis.commpattern import CommunicationSummary, analyze_communications

__all__ = [
    "format_hms",
    "parse_hms",
    "mean",
    "std",
    "summarize",
    "Summary",
    "speedup",
    "efficiency",
    "speedup_table",
    "Table",
    "render_table",
    "CommunicationSummary",
    "analyze_communications",
]
