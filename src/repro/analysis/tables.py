"""Plain-text table rendering in the style of the paper's Tables I–VI.

The benchmark harness builds :class:`Table` objects (row label + one cell per
column) and renders them with :func:`render_table`; cells are typically the
``mean (std)`` strings produced by :class:`repro.analysis.stats.Summary`.

:func:`pivot_table` builds a :class:`Table` straight from the flat rows that
:mod:`repro.lab.export` produces, so sweep results render as paper-style
tables without any per-experiment assembly code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["Table", "render_table", "pivot_table"]


@dataclass
class Table:
    """A small column-oriented table with a title and ordered rows."""

    title: str
    columns: List[str]
    rows: List[Dict[str, str]] = field(default_factory=list)
    row_label: str = ""

    def add_row(self, label: str, **cells: str) -> None:
        """Append a row; missing columns render as ``—`` like the paper."""
        row = {"__label__": label}
        for column in self.columns:
            row[column] = cells.get(column, "—")
        unknown = set(cells) - set(self.columns)
        if unknown:
            raise ValueError(f"unknown column(s) {sorted(unknown)} for table {self.title!r}")
        self.rows.append(row)

    def cell(self, label: str, column: str) -> str:
        """The cell at (row ``label``, ``column``); raises ``KeyError`` if absent."""
        for row in self.rows:
            if row["__label__"] == label:
                return row[column]
        raise KeyError(label)

    def render(self) -> str:
        """Render as aligned plain text."""
        return render_table(self)


def pivot_table(
    rows: Iterable[Mapping[str, Any]],
    *,
    title: str,
    index: str,
    column: str,
    value: str,
    row_label: Optional[str] = None,
    fmt: Callable[[Any], str] = str,
    column_fmt: Callable[[Any], str] = str,
) -> Table:
    """Pivot flat result rows (see :mod:`repro.lab.export`) into a :class:`Table`.

    One table row per distinct ``index`` value, one column per distinct
    ``column`` value, cells holding ``fmt(row[value])``; both axes keep
    first-appearance order, so the caller's row ordering (e.g. clients
    descending, as in the paper's tables) carries through.  A (index,
    column) pair hit twice keeps the *last* value; pairs never hit render
    as ``—`` like the paper's missing entries.
    """
    rows = list(rows)
    index_order: List[Any] = []
    column_order: List[Any] = []
    cells: Dict[Any, Dict[str, str]] = {}
    for row in rows:
        idx, col = row[index], row[column]
        if idx not in cells:
            cells[idx] = {}
            index_order.append(idx)
        label = column_fmt(col)
        if label not in column_order:
            column_order.append(label)
        cells[idx][label] = fmt(row[value])
    table = Table(title=title, columns=column_order, row_label=row_label or index)
    for idx in index_order:
        table.add_row(str(idx), **cells[idx])
    return table


def render_table(table: Table) -> str:
    """Render a :class:`Table` as aligned plain text with a title line."""
    headers = [table.row_label or ""] + list(table.columns)
    body = [[row["__label__"]] + [row[c] for c in table.columns] for row in table.rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in body)) if body else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [table.title]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for r in body:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(r, widths)).rstrip())
    return "\n".join(lines)
