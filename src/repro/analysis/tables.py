"""Plain-text table rendering in the style of the paper's Tables I–VI.

The benchmark harness builds :class:`Table` objects (row label + one cell per
column) and renders them with :func:`render_table`; cells are typically the
``mean (std)`` strings produced by :class:`repro.analysis.stats.Summary`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["Table", "render_table"]


@dataclass
class Table:
    """A small column-oriented table with a title and ordered rows."""

    title: str
    columns: List[str]
    rows: List[Dict[str, str]] = field(default_factory=list)
    row_label: str = ""

    def add_row(self, label: str, **cells: str) -> None:
        """Append a row; missing columns render as ``—`` like the paper."""
        row = {"__label__": label}
        for column in self.columns:
            row[column] = cells.get(column, "—")
        unknown = set(cells) - set(self.columns)
        if unknown:
            raise ValueError(f"unknown column(s) {sorted(unknown)} for table {self.title!r}")
        self.rows.append(row)

    def cell(self, label: str, column: str) -> str:
        """The cell at (row ``label``, ``column``); raises ``KeyError`` if absent."""
        for row in self.rows:
            if row["__label__"] == label:
                return row[column]
        raise KeyError(label)

    def render(self) -> str:
        """Render as aligned plain text."""
        return render_table(self)


def render_table(table: Table) -> str:
    """Render a :class:`Table` as aligned plain text with a title line."""
    headers = [table.row_label or ""] + list(table.columns)
    body = [[row["__label__"]] + [row[c] for c in table.columns] for row in table.rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in body)) if body else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [table.title]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for r in body:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(r, widths)).rstrip())
    return "\n".join(lines)
