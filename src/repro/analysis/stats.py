"""Mean / standard deviation summaries over repeated runs.

The paper reports every time as "a mean over multiple runs" with "the
standard deviation given between parenthesis".  :func:`summarize` produces
the same presentation for our measurements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.analysis.timefmt import format_hms

__all__ = ["mean", "std", "Summary", "summarize"]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (raises on an empty sequence)."""
    values = list(values)
    if not values:
        raise ValueError("mean of an empty sequence")
    return sum(values) / len(values)


def std(values: Sequence[float]) -> float:
    """Population standard deviation (0 for a single value)."""
    values = list(values)
    if not values:
        raise ValueError("std of an empty sequence")
    if len(values) == 1:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / len(values))


@dataclass(frozen=True)
class Summary:
    """Mean and standard deviation of a set of duration measurements."""

    mean: float
    std: float
    n: int

    def paper_style(self) -> str:
        """Render like the paper: ``mean (std)``, e.g. ``"01m52s (8s)"``.

        Single measurements are parenthesised entirely, as the paper does for
        "results in parenthesis which were run only once".
        """
        if self.n == 1:
            return f"({format_hms(self.mean)})"
        return f"{format_hms(self.mean)} ({format_hms(self.std)})"


def summarize(values: Iterable[float]) -> Summary:
    """Mean/std summary of a collection of duration measurements (seconds)."""
    data: List[float] = list(values)
    return Summary(mean=mean(data), std=std(data), n=len(data))
