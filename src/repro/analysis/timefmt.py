"""Time formatting in the paper's style.

The paper reports durations as e.g. ``10s``, ``01m52s``, ``1h07m33s``,
``28h00m06s`` or ``(09d18h58m)``.  :func:`format_hms` renders seconds in that
style (days only when needed, no leading zero on the largest unit, two digits
elsewhere) and :func:`parse_hms` parses it back, which the paper-reference
data module uses to keep the quoted tables human-readable.
"""

from __future__ import annotations

import re

__all__ = ["format_hms", "parse_hms"]

_PATTERN = re.compile(
    r"^\(?\s*"
    r"(?:(?P<days>\d+)d)?"
    r"(?:(?P<hours>\d+)h)?"
    r"(?:(?P<minutes>\d+)m)?"
    r"(?:(?P<seconds>\d+(?:\.\d+)?)s)?"
    r"\s*\)?$"
)


def format_hms(seconds: float) -> str:
    """Format a duration in seconds the way the paper's tables do.

    >>> format_hms(10)
    '10s'
    >>> format_hms(112)
    '01m52s'
    >>> format_hms(4053)
    '1h07m33s'
    >>> format_hms(100806)
    '28h00m06s'
    """
    if seconds < 0:
        raise ValueError("durations cannot be negative")
    total = int(round(seconds))
    if total < 60:
        return f"{total:02d}s"
    minutes, secs = divmod(total, 60)
    if minutes < 60:
        return f"{minutes:02d}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    if hours < 100:
        return f"{hours}h{minutes:02d}m{secs:02d}s"
    days, hours = divmod(hours, 24)
    return f"{days:02d}d{hours:02d}h{minutes:02d}m"


def parse_hms(text: str) -> float:
    """Parse a duration in the paper's format back into seconds.

    Parenthesised values (single-run measurements in the paper) are accepted;
    the parentheses are ignored.

    >>> parse_hms("1h07m33s")
    4053.0
    >>> parse_hms("(09d18h58m)")
    845880.0
    """
    match = _PATTERN.match(text.strip())
    if not match or not any(match.groupdict().values()):
        raise ValueError(f"cannot parse duration {text!r}")
    days = int(match.group("days") or 0)
    hours = int(match.group("hours") or 0)
    minutes = int(match.group("minutes") or 0)
    seconds = float(match.group("seconds") or 0.0)
    return ((days * 24 + hours) * 60 + minutes) * 60 + seconds
