"""Speedup and efficiency computations.

The paper's headline numbers are speedups: "the speedup of the algorithm for
64 clients is 56", corrected for cluster heterogeneity by the mean-frequency
ratio ``r = 1.09`` (Section V).  These helpers compute the same quantities
from measured or simulated durations.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

__all__ = ["speedup", "efficiency", "frequency_corrected_speedup", "speedup_table"]


def speedup(baseline_seconds: float, parallel_seconds: float) -> float:
    """Classical speedup: baseline time divided by parallel time."""
    if baseline_seconds < 0 or parallel_seconds <= 0:
        raise ValueError("durations must be positive")
    return baseline_seconds / parallel_seconds


def efficiency(baseline_seconds: float, parallel_seconds: float, n_workers: int) -> float:
    """Parallel efficiency: speedup divided by the number of workers."""
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    return speedup(baseline_seconds, parallel_seconds) / n_workers


def frequency_corrected_speedup(
    baseline_seconds: float, parallel_seconds: float, frequency_ratio: float
) -> float:
    """Speedup divided by the heterogeneity ratio ``r`` (paper Section V).

    The paper's 64-client measurement mixes 1.86 GHz and 2.33 GHz PCs while
    the 1-client baseline ran on a 1.86 GHz PC, so the raw speedup of 56 is
    corrected to 56 / 1.09 ≈ 51.
    """
    if frequency_ratio <= 0:
        raise ValueError("frequency_ratio must be positive")
    return speedup(baseline_seconds, parallel_seconds) / frequency_ratio


def speedup_table(
    times_by_clients: Mapping[int, float], baseline_clients: int = 1
) -> Dict[int, float]:
    """Speedups relative to the ``baseline_clients`` entry of a sweep.

    ``times_by_clients`` maps a client count to the measured duration, like a
    column of Tables II–V.  The returned mapping contains a speedup for every
    client count present (including the baseline itself, whose speedup is 1).
    """
    if baseline_clients not in times_by_clients:
        raise ValueError(f"no baseline entry for {baseline_clients} client(s)")
    baseline = times_by_clients[baseline_clients]
    return {
        clients: speedup(baseline, seconds) for clients, seconds in sorted(times_by_clients.items())
    }
