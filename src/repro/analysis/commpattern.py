"""Communication-pattern analysis: the reproduction of Figures 2–5.

Figures 2 and 4 of the paper are diagrams of the message types exchanged by
the process roles; Figures 3 and 5 illustrate that those communications (and
the client computations they trigger) happen in parallel.  Instead of
diagrams, the reproduction derives the same information from the execution
trace of a simulated run:

* every traced message is classified into the paper's communication types
  (a) root→median task, (b) median→dispatcher request / dispatcher→median
  reply / median→client job, (c) client→median result, (c') client→dispatcher
  free notification (Last-Minute only) and (d) median→root result;
* the computation records quantify the overlap: how many client computations
  ran concurrently (Figures 3/5 "parallel communications").

``verify_pattern`` checks the structural properties the figures assert:
counts that must match (one reply per request, one result per job), and the
presence/absence of the (c') edge depending on the dispatcher.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.trace import Trace
from repro.parallel.config import DispatcherKind

__all__ = ["CommunicationSummary", "analyze_communications", "verify_pattern"]

#: Map from payload class name to the paper's communication label.
_PAYLOAD_TO_KIND = {
    "MedianTask": "a: root->median task",
    "DispatchRequest": "b1: median->dispatcher request",
    "DispatchReply": "b2: dispatcher->median reply",
    "ClientJob": "b3: median->client job",
    "ClientResult": "c: client->median result",
    "ClientFree": "c': client->dispatcher free",
    "MedianResult": "d: median->root result",
    "Shutdown": "control: shutdown",
}


@dataclass
class CommunicationSummary:
    """Counts and overlap statistics extracted from a run's trace."""

    counts: Dict[str, int] = field(default_factory=dict)
    max_client_concurrency: int = 0
    mean_client_concurrency: float = 0.0
    n_clients_used: int = 0
    makespan: float = 0.0

    def count(self, kind: str) -> int:
        """Number of messages of the given communication kind."""
        return self.counts.get(kind, 0)


def analyze_communications(trace: Trace) -> CommunicationSummary:
    """Classify every traced message and measure client-compute overlap."""
    counts: Dict[str, int] = {}
    for message in trace.messages:
        kind = _PAYLOAD_TO_KIND.get(message.payload_type, f"other: {message.payload_type}")
        counts[kind] = counts.get(kind, 0) + 1
    clients_used = {c.pid for c in trace.computes if c.pid.startswith("client")}
    return CommunicationSummary(
        counts=counts,
        max_client_concurrency=trace.max_concurrency("client"),
        mean_client_concurrency=trace.mean_concurrency("client"),
        n_clients_used=len(clients_used),
        makespan=trace.makespan(),
    )


def verify_pattern(
    summary: CommunicationSummary, dispatcher: DispatcherKind
) -> List[str]:
    """Check the structural properties asserted by Figures 2–5.

    Returns a list of human-readable violations (empty = the trace matches
    the paper's communication pattern).
    """
    problems: List[str] = []
    tasks = summary.count("a: root->median task")
    requests = summary.count("b1: median->dispatcher request")
    replies = summary.count("b2: dispatcher->median reply")
    jobs = summary.count("b3: median->client job")
    results = summary.count("c: client->median result")
    frees = summary.count("c': client->dispatcher free")
    median_results = summary.count("d: median->root result")

    if tasks == 0:
        problems.append("no root->median task was sent (communication a missing)")
    if median_results != tasks:
        problems.append(
            f"every root task must produce exactly one median result "
            f"(tasks={tasks}, results={median_results})"
        )
    if replies != requests:
        problems.append(
            f"every dispatcher request must get exactly one reply "
            f"(requests={requests}, replies={replies})"
        )
    if jobs != requests:
        problems.append(
            f"every dispatcher reply must be followed by exactly one client job "
            f"(requests={requests}, jobs={jobs})"
        )
    if results != jobs:
        problems.append(
            f"every client job must produce exactly one result (jobs={jobs}, results={results})"
        )
    if dispatcher is DispatcherKind.LAST_MINUTE:
        if frees != jobs:
            problems.append(
                f"Last-Minute clients must notify the dispatcher after every job "
                f"(jobs={jobs}, notifications={frees})"
            )
    else:
        if frees != 0:
            problems.append(
                f"Round-Robin clients never notify the dispatcher (found {frees} notifications)"
            )
    return problems
