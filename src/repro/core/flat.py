"""Flat (non-nested) Monte-Carlo search baseline.

The paper motivates Nested Monte-Carlo Search as an improvement over "simple
Monte-Carlo search" for problems with a large state space and no good
heuristic (Section I).  This module provides that simple baseline so that
examples and ablation benchmarks can quantify what the nesting buys: at each
step every legal move is evaluated with ``playouts_per_move`` random playouts
and the move with the best (maximum or mean) playout score is played.

Unlike NMCS, flat Monte-Carlo has no best-sequence memorisation — it commits
to the locally best move even when an earlier playout had already found a
better full sequence.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.core.counters import WorkCounter
from repro.core.result import SearchResult
from repro.core.sample import sample
from repro.games.base import GameState, Move
from repro.prng import SeedSequence

__all__ = ["Aggregation", "flat_monte_carlo"]


class Aggregation(str, enum.Enum):
    """How the playout scores of a candidate move are aggregated."""

    MAX = "max"
    MEAN = "mean"


def flat_monte_carlo(
    state: GameState,
    playouts_per_move: int,
    seeds: SeedSequence,
    aggregation: "Aggregation | str" = Aggregation.MAX,
    counter: Optional[WorkCounter] = None,
    max_steps: Optional[int] = None,
) -> SearchResult:
    """Play a full game with flat Monte-Carlo move selection.

    Parameters
    ----------
    state:
        Starting position (not modified).
    playouts_per_move:
        Number of random playouts used to evaluate each candidate move.
    seeds:
        Seed sequence controlling every playout.
    aggregation:
        ``MAX`` (default, comparable to NMCS level 1 when
        ``playouts_per_move=1``) or ``MEAN``.
    max_steps:
        Commit at most this many moves, as in the nested search.
    """
    if playouts_per_move < 1:
        raise ValueError("playouts_per_move must be >= 1")
    aggregation = Aggregation(aggregation)
    work = counter if counter is not None else WorkCounter()
    position = state.copy()
    played: List[Move] = []
    step = 0
    while True:
        moves = position.legal_moves()
        if not moves:
            break
        best_value = float("-inf")
        best_move = None
        for i, move in enumerate(moves):
            child = position.play(move)
            work.add_step()
            scores = []
            for k in range(playouts_per_move):
                result = sample(
                    child, seeds=seeds.child("flat", step, i, k), counter=work
                )
                scores.append(result.score)
            value = max(scores) if aggregation is Aggregation.MAX else sum(scores) / len(scores)
            if value > best_value:
                best_value = value
                best_move = move
        position.apply(best_move)
        work.add_step()
        played.append(best_move)
        step += 1
        if max_steps is not None and step >= max_steps:
            break
    return SearchResult(
        score=position.score(),
        sequence=tuple(played),
        work=work.snapshot(),
        level=1,
    )
