"""Search result containers.

Every search algorithm returns a :class:`SearchResult`: the score it reached,
the sequence of moves that reaches it from the *initial* position it was given,
and the amount of work spent.  The sequence always replays (this is verified
by the test suite), so callers can reconstruct the final position or render it
(e.g. the Figure 1 grid) without trusting anything but the move list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.counters import WorkCounter
from repro.games.base import GameState, Move, Sequence, play_sequence

__all__ = ["SearchResult", "BestTracker"]


@dataclass
class SearchResult:
    """Outcome of a search from a given position.

    Attributes
    ----------
    score:
        The best terminal score reached.
    sequence:
        The moves reaching that score, starting from the searched position.
    work:
        The work spent (move applications / playouts / nested calls).
    level:
        Nesting level of the search that produced the result (0 = playout).
    """

    score: float
    sequence: Tuple[Move, ...] = ()
    work: WorkCounter = field(default_factory=WorkCounter)
    level: int = 0

    def as_sequence(self) -> Sequence:
        """The result as a :class:`repro.games.base.Sequence`."""
        return Sequence(self.sequence, self.score)

    def final_state(self, initial: GameState) -> GameState:
        """Replay the result from ``initial`` and return the final state."""
        return play_sequence(initial, self.sequence)

    def verify(self, initial: GameState) -> bool:
        """True if replaying the sequence from ``initial`` yields ``score``."""
        return play_sequence(initial, self.sequence).score() == self.score


class BestTracker:
    """Keeps the best sequence seen so far ("best sequence" of the pseudo-code).

    The sequential nested search of the paper memorises, at each level, the
    best sequence found by any lower-level search so that it can keep
    following it when later samples are worse (lines 7–10 of the ``nested``
    pseudo-code).  This helper implements that bookkeeping once for both the
    sequential and the parallel implementations.
    """

    __slots__ = ("score", "moves")

    def __init__(self) -> None:
        self.score: float = float("-inf")
        self.moves: Tuple[Move, ...] = ()

    def offer(self, score: float, moves: Tuple[Move, ...]) -> bool:
        """Register a candidate; returns True if it became the new best.

        Ties are *not* replaced, matching the strict ``>`` of the paper's
        pseudo-code (line 7), which keeps the earliest best sequence.
        """
        if score > self.score:
            self.score = score
            self.moves = tuple(moves)
            return True
        return False

    def has_sequence(self) -> bool:
        """True once at least one candidate has been offered."""
        return self.score != float("-inf")

    def best(self) -> Tuple[float, Tuple[Move, ...]]:
        """The best (score, moves) pair seen so far."""
        return self.score, self.moves
