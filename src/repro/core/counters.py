"""Work counters: the bridge between executed search work and simulated time.

The paper measures wall-clock seconds of a C + MPI implementation on physical
hardware.  A pure-Python reproduction cannot reproduce those absolute numbers,
and a single host cannot reproduce 64-way scaling, so the cluster experiments
of this library run on a simulated cluster (see :mod:`repro.cluster`).  The
searches themselves are *really executed*; what is simulated is only the time
they take on a node of a given frequency.

The unit of work is the **primitive move application** (one ``apply`` on a
game state), because in Morpion Solitaire — and in the other domains — the
cost of a rollout is proportional to the number of moves it plays.  Every
search algorithm in :mod:`repro.core` threads a :class:`WorkCounter` through
its playouts; the cost model (:mod:`repro.timemodel`) converts the counter
into simulated seconds for the executing node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["WorkCounter", "NULL_COUNTER"]


@dataclass
class WorkCounter:
    """Accumulates the amount of search work performed.

    Attributes
    ----------
    moves:
        Number of primitive move applications (the cost unit).
    playouts:
        Number of random playouts completed.
    nested_calls:
        Number of nested-search invocations (any level).
    """

    moves: int = 0
    playouts: int = 0
    nested_calls: int = 0

    def add_moves(self, n: int) -> None:
        """Record ``n`` primitive move applications (and one playout)."""
        self.moves += int(n)
        self.playouts += 1

    def add_step(self, n: int = 1) -> None:
        """Record ``n`` move applications outside a playout (tree descent)."""
        self.moves += int(n)

    def add_nested_call(self) -> None:
        """Record one nested-search invocation."""
        self.nested_calls += 1

    def merge(self, other: "WorkCounter") -> None:
        """Fold another counter into this one."""
        self.moves += other.moves
        self.playouts += other.playouts
        self.nested_calls += other.nested_calls

    def snapshot(self) -> "WorkCounter":
        """An independent copy of the current totals."""
        return WorkCounter(self.moves, self.playouts, self.nested_calls)

    def reset(self) -> None:
        """Zero every counter."""
        self.moves = 0
        self.playouts = 0
        self.nested_calls = 0

    def __add__(self, other: "WorkCounter") -> "WorkCounter":
        return WorkCounter(
            self.moves + other.moves,
            self.playouts + other.playouts,
            self.nested_calls + other.nested_calls,
        )


class _NullCounter(WorkCounter):
    """A counter that ignores every update (used when work tracking is off)."""

    def add_moves(self, n: int) -> None:  # noqa: D102 - see base class
        pass

    def add_step(self, n: int = 1) -> None:  # noqa: D102
        pass

    def add_nested_call(self) -> None:  # noqa: D102
        pass

    def merge(self, other: WorkCounter) -> None:  # noqa: D102
        pass


#: Shared do-nothing counter for callers that do not care about work totals.
NULL_COUNTER = _NullCounter()
