"""Reflexive Monte-Carlo search (Cazenave 2007, reference [6] of the paper).

Reflexive Monte-Carlo search is the precursor of Nested Monte-Carlo Search
that was first shown effective on Morpion Solitaire.  The paper describes it
as "close in spirit to nested rollouts except that the base level plays random
games and does not follow a heuristic".  The practically relevant difference
with the ``nested`` function of Section III is that the reflexive search of
this formulation does **not** memorise the globally best sequence: at every
step it commits to the move whose lower-level search scored best *at that
step*, even if an earlier step had already discovered a better complete
sequence.

Keeping both algorithms in the library lets the ablation benchmarks measure
how much the best-sequence memorisation of NMCS contributes — one of the
design points highlighted in DESIGN.md.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.counters import WorkCounter
from repro.core.result import SearchResult
from repro.core.sample import sample
from repro.games.base import GameState, Move
from repro.prng import SeedSequence

__all__ = ["reflexive_search"]


def reflexive_search(
    state: GameState,
    level: int,
    seeds: SeedSequence,
    counter: Optional[WorkCounter] = None,
    max_steps: Optional[int] = None,
) -> SearchResult:
    """Reflexive Monte-Carlo search of the given meta-level.

    ``level == 0`` is a single random playout; ``level >= 1`` plays a game
    choosing each move by the best lower-level search over all legal moves,
    *without* best-sequence memorisation.
    """
    if level < 0:
        raise ValueError("level must be >= 0")
    work = counter if counter is not None else WorkCounter()
    if level == 0:
        return sample(state, seeds=seeds, counter=work)

    position = state.copy()
    played: List[Move] = []
    step = 0
    while True:
        moves = position.legal_moves()
        if not moves:
            break
        best_score = float("-inf")
        best_move = None
        for i, move in enumerate(moves):
            child = position.play(move)
            work.add_step()
            sub = reflexive_search(
                child, level - 1, seeds.child("reflexive", level, step, i), counter=work
            )
            if sub.score > best_score:
                best_score = sub.score
                best_move = move
        position.apply(best_move)
        work.add_step()
        played.append(best_move)
        step += 1
        if max_steps is not None and step >= max_steps:
            break
    return SearchResult(
        score=position.score(),
        sequence=tuple(played),
        work=work.snapshot(),
        level=level,
    )
