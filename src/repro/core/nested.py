"""Sequential Nested Monte-Carlo Search (Section III of the paper).

The ``nested`` function plays a game; at every step it evaluates every legal
move with a search one nesting level below (a random playout at level 1) and
follows the best *sequence* seen so far:

```
int nested (position, level)
 1  best score = -1
 2  while not end of game
 3    if level is 1
 4      move = argmax_m (sample (play (position, m)))
 5    else
 6      move = argmax_m (nested (play (position, m), level - 1))
 7    if score of move > best score
 8      best score = score of move
 9      best sequence = seq. after move
10    bestMove = move of best sequence
11    position = play (position, bestMove)
12  return score
```

The memorisation of the best sequence (lines 7–10) is essential: when every
lower-level search of the current step is worse than what a previous step
found, the algorithm keeps following the previously found sequence instead of
committing to a worse move.

Determinism / distribution
--------------------------
Every lower-level evaluation derives its random seed from a
:class:`repro.prng.SeedSequence` extended with ``(level, step, move_index)``.
This makes the search fully deterministic given the master seed, and — more
importantly for this reproduction — makes the *result* of each lower-level
evaluation independent of *where* it is executed.  The parallel algorithms
(:mod:`repro.parallel`) distribute exactly these evaluations over client
processes with the same seed derivation, so a parallel run returns the same
score and sequence as the sequential run it parallelises, whatever the
schedule.  The tests rely on this equivalence.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.counters import WorkCounter
from repro.core.result import BestTracker, SearchResult
from repro.core.sample import sample
from repro.games.base import GameState, Move
from repro.prng import SeedSequence

__all__ = ["nested_search", "nmcs", "evaluate_move", "candidate_evaluations"]


def evaluate_move(
    state: GameState,
    move: Move,
    level: int,
    seeds: SeedSequence,
    counter: Optional[WorkCounter] = None,
) -> SearchResult:
    """Evaluate one candidate ``move`` with a search at ``level`` below.

    This is the unit of work the parallel algorithms ship to client
    processes: play ``move`` and run ``nested_search`` (or a playout when
    ``level == 0``) from the resulting position.  The returned sequence
    *includes* ``move`` itself so that the caller can splice it directly into
    its own sequence.
    """
    work = counter if counter is not None else WorkCounter()
    child = state.play(move)
    work.add_step()
    if level <= 0:
        result = sample(child, seeds=seeds, counter=work)
    else:
        result = nested_search(child, level, seeds, counter=work)
    return SearchResult(
        score=result.score,
        sequence=(move,) + tuple(result.sequence),
        work=work.snapshot(),
        level=level,
    )


def candidate_evaluations(
    state: GameState,
    level: int,
    step: int,
    seeds: SeedSequence,
) -> List[Tuple[int, Move, SeedSequence]]:
    """The lower-level evaluations required at one step of a level-``level`` search.

    Returns ``(move_index, move, child_seeds)`` triples.  Both the sequential
    and the parallel implementations derive their per-candidate seeds through
    this single function, which is what guarantees that they perform the same
    evaluations and therefore obtain identical results.
    """
    moves = state.legal_moves()
    return [
        (i, move, seeds.child(level, step, i))
        for i, move in enumerate(moves)
    ]


def nested_search(
    state: GameState,
    level: int,
    seeds: SeedSequence,
    counter: Optional[WorkCounter] = None,
    max_steps: Optional[int] = None,
) -> SearchResult:
    """Nested Monte-Carlo Search of the given ``level`` from ``state``.

    Parameters
    ----------
    state:
        Starting position (not modified).
    level:
        Nesting level; level 0 is a single random playout, level 1 chooses
        each move by the best of one playout per candidate, etc.
    seeds:
        Seed sequence controlling every random decision below this call.
    counter:
        Optional shared :class:`WorkCounter`; a fresh one is used otherwise.
    max_steps:
        If given, commit at most this many moves at *this* level and then
        return the best sequence found so far.  ``max_steps=1`` reproduces the
        paper's "first move" experiments (Tables I, II, IV).

    Returns
    -------
    SearchResult
        Best score found and the move sequence (from ``state``) reaching it.
    """
    if level < 0:
        raise ValueError("level must be >= 0")
    work = counter if counter is not None else WorkCounter()
    work.add_nested_call()
    if level == 0:
        return sample(state, seeds=seeds, counter=work)

    position = state.copy()
    best = BestTracker()
    played: List[Move] = []
    step = 0
    while True:
        evaluations = candidate_evaluations(position, level, step, seeds)
        if not evaluations:
            break  # end of game
        for move_index, move, child_seeds in evaluations:
            result = evaluate_move(position, move, level - 1, child_seeds, counter=work)
            best.offer(result.score, tuple(played) + tuple(result.sequence))
        # Follow the memorised best sequence (lines 7-11 of the pseudo-code).
        best_move = best.moves[len(played)]
        position.apply(best_move)
        work.add_step()
        played.append(best_move)
        step += 1
        if max_steps is not None and step >= max_steps:
            break

    if best.has_sequence():
        score, moves = best.best()
    else:
        # The starting position was already terminal.
        score, moves = state.score(), ()
    return SearchResult(score=score, sequence=moves, work=work.snapshot(), level=level)


def nmcs(
    state: GameState,
    level: int,
    seed: int = 0,
    max_steps: Optional[int] = None,
) -> SearchResult:
    """Convenience front-end: run :func:`nested_search` from an integer seed."""
    return nested_search(state, level, SeedSequence(seed, "nmcs"), max_steps=max_steps)
