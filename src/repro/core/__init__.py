"""Search algorithms: the paper's primary contribution and its baselines.

* :func:`repro.core.sample.sample` — one random playout (Section III).
* :func:`repro.core.nested.nested_search` / :func:`repro.core.nested.nmcs` —
  sequential Nested Monte-Carlo Search (Section III).
* :func:`repro.core.flat.flat_monte_carlo` — flat Monte-Carlo baseline.
* :func:`repro.core.reflexive.reflexive_search` — reflexive Monte-Carlo search
  (reference [6]), i.e. nesting without best-sequence memorisation.
* :func:`repro.core.iterated.iterated_search` — multi-restart NMCS.
* :func:`repro.core.nrpa.nrpa_search` — Nested Rollout Policy Adaptation
  (extension beyond the paper).
"""

from repro.core.counters import WorkCounter, NULL_COUNTER
from repro.core.result import SearchResult, BestTracker
from repro.core.sample import sample, best_of_samples
from repro.core.nested import nested_search, nmcs, evaluate_move, candidate_evaluations
from repro.core.flat import flat_monte_carlo, Aggregation
from repro.core.reflexive import reflexive_search
from repro.core.iterated import iterated_search
from repro.core.nrpa import nrpa_search

__all__ = [
    "WorkCounter",
    "NULL_COUNTER",
    "SearchResult",
    "BestTracker",
    "sample",
    "best_of_samples",
    "nested_search",
    "nmcs",
    "evaluate_move",
    "candidate_evaluations",
    "flat_monte_carlo",
    "Aggregation",
    "reflexive_search",
    "iterated_search",
    "nrpa_search",
]
