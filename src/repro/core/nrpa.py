"""Nested Rollout Policy Adaptation (NRPA) — extension beyond the paper.

NRPA (Rosin, IJCAI 2011) is the natural successor of Nested Monte-Carlo
Search: instead of restarting from a uniform playout policy at every step, it
*learns* a softmax playout policy at each nesting level by gradient steps
towards the best sequence found so far.  It later improved the Morpion
Solitaire record beyond the paper's 80 moves.  It is included here as the
"future work" extension of the reproduction: it reuses the same
:class:`GameState` interface, the same seed-derivation scheme and the same
work counters, so it can be dropped into the examples and benchmarks next to
NMCS.

The policy maps a *move code* to a weight.  Move codes default to ``repr`` of
the move, which is stable for the move types used by the bundled domains;
domains can supply a more aggressive generalisation through ``code_fn``.
"""

from __future__ import annotations

import math
import random
from contextlib import nullcontext
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from repro.core.counters import WorkCounter
from repro.core.result import SearchResult
from repro.games.base import GameState, Move
from repro.obs import span as _obs_span
from repro.prng import SeedSequence

__all__ = ["nrpa_search", "Policy"]

#: Spans wrap NRPA iterations only at this nesting level and above — below it
#: an iteration is a handful of playouts and span bookkeeping would be
#: comparable to the work itself.
_SPAN_MIN_LEVEL = 2

#: A playout policy: move code -> log-weight.
Policy = Dict[Hashable, float]


def _default_code(move: Move) -> Hashable:
    return repr(move)


def _policy_playout(
    state: GameState,
    policy: Policy,
    rng: random.Random,
    code_fn: Callable[[Move], Hashable],
    counter: WorkCounter,
) -> Tuple[float, Tuple[Move, ...]]:
    """Softmax playout following ``policy`` (Gibbs sampling over legal moves)."""
    position = state.copy()
    played: List[Move] = []
    while True:
        moves = position.legal_moves()
        if not moves:
            break
        weights = [math.exp(policy.get(code_fn(m), 0.0)) for m in moves]
        total = sum(weights)
        r = rng.random() * total
        acc = 0.0
        chosen = moves[-1]
        for m, w in zip(moves, weights):
            acc += w
            if r <= acc:
                chosen = m
                break
        position.apply(chosen)
        played.append(chosen)
    counter.add_moves(len(played))
    return position.score(), tuple(played)


def _adapt(
    state: GameState,
    policy: Policy,
    sequence: Tuple[Move, ...],
    alpha: float,
    code_fn: Callable[[Move], Hashable],
) -> Policy:
    """One gradient step of the policy towards ``sequence`` (Rosin's Adapt)."""
    new_policy = dict(policy)
    position = state.copy()
    for move in sequence:
        moves = position.legal_moves()
        codes = [code_fn(m) for m in moves]
        weights = [math.exp(policy.get(c, 0.0)) for c in codes]
        total = sum(weights)
        target = code_fn(move)
        new_policy[target] = new_policy.get(target, 0.0) + alpha
        for c, w in zip(codes, weights):
            new_policy[c] = new_policy.get(c, 0.0) - alpha * (w / total)
        position.apply(move)
    return new_policy


def nrpa_search(
    state: GameState,
    level: int,
    seeds: SeedSequence,
    iterations: int = 10,
    alpha: float = 1.0,
    code_fn: Callable[[Move], Hashable] = _default_code,
    counter: Optional[WorkCounter] = None,
    policy: Optional[Policy] = None,
) -> SearchResult:
    """Nested Rollout Policy Adaptation of the given ``level``.

    ``level == 0`` is a single policy playout; ``level >= 1`` runs
    ``iterations`` searches of the level below, adapting its own copy of the
    policy towards the best sequence after each one.
    """
    if level < 0:
        raise ValueError("level must be >= 0")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    work = counter if counter is not None else WorkCounter()
    current_policy: Policy = dict(policy) if policy else {}

    if level == 0:
        rng = seeds.rng()
        score, moves = _policy_playout(state, current_policy, rng, code_fn, work)
        return SearchResult(score=score, sequence=moves, work=work.snapshot(), level=0)

    best_score = float("-inf")
    best_sequence: Tuple[Move, ...] = ()
    spanned = level >= _SPAN_MIN_LEVEL
    for i in range(iterations):
        with _obs_span("nrpa.iteration", level=level, iteration=i) if spanned else nullcontext():
            result = nrpa_search(
                state,
                level - 1,
                seeds.child("nrpa", level, i),
                iterations=iterations,
                alpha=alpha,
                code_fn=code_fn,
                counter=work,
                policy=current_policy,
            )
        if result.score >= best_score:
            best_score = result.score
            best_sequence = result.sequence
        if best_sequence:
            current_policy = _adapt(state, current_policy, best_sequence, alpha, code_fn)
    return SearchResult(
        score=best_score, sequence=best_sequence, work=work.snapshot(), level=level
    )
