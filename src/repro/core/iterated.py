"""Iterated / multi-restart Nested Monte-Carlo Search.

The record hunts of the paper (Section V: "Running the algorithm at level 4 on
our cluster, we have discovered two new sequences of 80 moves") repeat
independent nested searches and keep the best sequence ever found.  This
module provides that outer loop for the sequential case; the parallel driver
has its own distributed equivalent.

Two stopping criteria are supported and can be combined: a fixed number of
restarts and a work budget (in primitive move applications), whichever is hit
first.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.counters import WorkCounter
from repro.core.nested import nested_search
from repro.core.result import BestTracker, SearchResult
from repro.games.base import GameState
from repro.obs import span as _obs_span
from repro.prng import SeedSequence

__all__ = ["iterated_search"]


def iterated_search(
    state: GameState,
    level: int,
    seeds: SeedSequence,
    restarts: int = 1,
    work_budget: Optional[int] = None,
    counter: Optional[WorkCounter] = None,
    on_improvement: Optional[Callable[[int, SearchResult], None]] = None,
) -> SearchResult:
    """Run up to ``restarts`` independent nested searches, keep the best.

    Parameters
    ----------
    restarts:
        Maximum number of independent nested searches.
    work_budget:
        Optional cap on total primitive move applications; checked between
        restarts (a running search is never interrupted).
    on_improvement:
        Optional callback ``(restart_index, result)`` invoked whenever a
        restart improves on the best score so far — used by the record-hunt
        example to report progress.
    """
    if restarts < 1:
        raise ValueError("restarts must be >= 1")
    work = counter if counter is not None else WorkCounter()
    best = BestTracker()
    completed = 0
    for i in range(restarts):
        if work_budget is not None and work.moves >= work_budget and completed > 0:
            break
        # One span per restart: coarse enough to stay off the playout hot
        # path, fine enough to show where a record hunt's time goes.
        with _obs_span("iterated.restart", restart=i, level=level):
            result = nested_search(state, level, seeds.child("restart", i), counter=work)
        completed += 1
        if best.offer(result.score, result.sequence) and on_improvement is not None:
            on_improvement(i, result)
    score, moves = best.best()
    return SearchResult(score=score, sequence=moves, work=work.snapshot(), level=level)
