"""The ``sample`` primitive of the paper (Section III).

``sample(position)`` plays uniformly random moves until the end of the game
and returns the terminal score.  This module wraps the shared playout helper
of :mod:`repro.games.base` into the :class:`~repro.core.result.SearchResult`
convention used by every other algorithm, and adds the multi-sample helper
used by the flat Monte-Carlo baseline.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from repro.core.counters import WorkCounter
from repro.core.result import SearchResult
from repro.games.base import GameState, Move
from repro.prng import SeedSequence

__all__ = ["sample", "best_of_samples"]


def sample(
    state: GameState,
    rng: Optional[random.Random] = None,
    counter: Optional[WorkCounter] = None,
    seeds: Optional[SeedSequence] = None,
) -> SearchResult:
    """One random playout from ``state`` (the paper's ``sample`` function).

    Exactly one of ``rng`` and ``seeds`` may be given; with neither, a fresh
    unseeded generator is used (non-reproducible, for interactive use only).
    """
    if rng is not None and seeds is not None:
        raise ValueError("pass either rng or seeds, not both")
    if rng is None:
        rng = seeds.rng() if seeds is not None else random.Random()
    work = counter if counter is not None else WorkCounter()
    # Copy once, then run the state's in-place playout primitive directly
    # (equivalent to random_playout, minus one call layer on the hot path).
    score, moves = state.copy().playout(rng, work)
    return SearchResult(score=score, sequence=moves, work=work.snapshot(), level=0)


def best_of_samples(
    state: GameState,
    n_samples: int,
    seeds: SeedSequence,
    counter: Optional[WorkCounter] = None,
) -> SearchResult:
    """Best of ``n_samples`` independent random playouts from ``state``.

    Each playout gets its own derived seed so the result does not depend on
    the order in which playouts are executed (which matters when they are
    distributed over clients).
    """
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    work = counter if counter is not None else WorkCounter()
    best_score = float("-inf")
    best_moves: Tuple[Move, ...] = ()
    for i in range(n_samples):
        result = sample(state, seeds=seeds.child("sample", i), counter=work)
        if result.score > best_score:
            best_score = result.score
            best_moves = result.sequence
    return SearchResult(score=best_score, sequence=best_moves, work=work.snapshot(), level=0)
